//! Cross-crate accuracy tests: every sketch against the exact oracle on
//! every data set, with guarantee-specific assertions.

use quantile_sketches::{
    DataSet, DdSketch, ExactQuantiles, KllSketch, MomentsSketch, QuantileSketch, RankAccuracy,
    ReqSketch, UddSketch, ValueStream,
};

const N: usize = 60_000;
const QS: [f64; 8] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99];

fn materialise(ds: DataSet, seed: u64) -> (Vec<f64>, ExactQuantiles) {
    let mut gen = ds.generator(seed, 50);
    let values = gen.take_vec(N);
    let mut oracle = ExactQuantiles::with_capacity(N);
    oracle.extend(values.iter().copied());
    (values, oracle)
}

#[test]
fn ddsketch_guarantee_on_all_datasets() {
    for ds in DataSet::ALL {
        let (values, mut oracle) = materialise(ds, 7);
        let mut s = DdSketch::paper_configuration();
        for &v in &values {
            s.insert(v);
        }
        for q in QS {
            let truth = oracle.query(q).unwrap();
            let est = s.query(q).unwrap();
            let rel = ((est - truth) / truth).abs();
            assert!(
                rel <= 0.01 + 1e-9,
                "{} q={q}: relative error {rel} breaks the deterministic guarantee",
                ds.label()
            );
        }
    }
}

#[test]
fn uddsketch_guarantee_on_all_datasets() {
    for ds in DataSet::ALL {
        let (values, mut oracle) = materialise(ds, 11);
        let mut s = UddSketch::paper_configuration();
        for &v in &values {
            s.insert(v);
        }
        // The realised guarantee is the current alpha (<= 0.01 unless the
        // stream forces more than num_collapses collapses, which these
        // data sets do not).
        let alpha = s.current_alpha();
        assert!(alpha <= 0.01 + 1e-12, "{}: alpha {alpha}", ds.label());
        for q in QS {
            let truth = oracle.query(q).unwrap();
            let est = s.query(q).unwrap();
            let rel = ((est - truth) / truth).abs();
            assert!(rel <= alpha + 1e-9, "{} q={q}: {rel} > {alpha}", ds.label());
        }
    }
}

#[test]
fn kll_rank_error_on_all_datasets() {
    for ds in DataSet::ALL {
        let (values, mut oracle) = materialise(ds, 13);
        let mut s = KllSketch::paper_configuration();
        for &v in &values {
            s.insert(v);
        }
        let sorted: Vec<f64> = oracle.sorted_values().to_vec();
        let n = sorted.len() as f64;
        for q in QS {
            let est = s.query(q).unwrap();
            // Rank error (the guarantee KLL actually makes) within ~3x the
            // expected 0.97%. With repeated values (NYT fares) the
            // estimate's rank is an interval [P(< est), P(<= est)]; the
            // error is the distance from q to that interval.
            let lo = sorted.partition_point(|&v| v < est) as f64 / n;
            let hi = sorted.partition_point(|&v| v <= est) as f64 / n;
            let rank_err = if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            };
            assert!(
                rank_err <= 0.03,
                "{} q={q}: rank error {rank_err}",
                ds.label()
            );
        }
    }
}

#[test]
fn req_upper_quantiles_beat_kll_on_pareto() {
    // §4.5.1's headline: HRA ReqSketch is far more accurate than KLL at
    // the Pareto tail.
    let (values, mut oracle) = materialise(DataSet::Pareto, 17);
    let mut kll = KllSketch::with_seed(350, 1);
    let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 1);
    for &v in &values {
        kll.insert(v);
        req.insert(v);
    }
    let truth = oracle.query(0.99).unwrap();
    let kll_err = ((kll.query(0.99).unwrap() - truth) / truth).abs();
    let req_err = ((req.query(0.99).unwrap() - truth) / truth).abs();
    assert!(
        req_err <= kll_err,
        "REQ ({req_err}) should not lose to KLL ({kll_err}) at the Pareto p99"
    );
}

#[test]
fn moments_accurate_on_uniform_weak_on_nyt() {
    // §4.5.5: Moments holds the threshold on synthetic data but not on
    // real-world-shaped data.
    let (uniform, mut u_oracle) = materialise(DataSet::Uniform, 19);
    let mut on_uniform = MomentsSketch::paper_configuration();
    for &v in &uniform {
        on_uniform.insert(v);
    }
    let mut worst_uniform = 0.0f64;
    for q in QS {
        let truth = u_oracle.query(q).unwrap();
        let est = on_uniform.query(q).unwrap();
        worst_uniform = worst_uniform.max(((est - truth) / truth).abs());
    }
    assert!(worst_uniform < 0.01, "uniform worst error {worst_uniform}");

    let (nyt, mut n_oracle) = materialise(DataSet::Nyt, 19);
    let mut on_nyt = MomentsSketch::paper_configuration();
    for &v in &nyt {
        on_nyt.insert(v);
    }
    let mut worst_nyt = 0.0f64;
    for q in QS {
        let truth = n_oracle.query(q).unwrap();
        if let Ok(est) = on_nyt.query(q) {
            worst_nyt = worst_nyt.max(((est - truth) / truth).abs());
        }
    }
    assert!(
        worst_nyt > worst_uniform,
        "NYT ({worst_nyt}) should be harder than Uniform ({worst_uniform}) for Moments"
    );
}

#[test]
fn all_sketches_nail_the_nyt_98th_spike_region() {
    // §4.5.6: the NYT 0.98 quantile (57.3, heavily repeated) is easy for
    // sampling sketches and within guarantee for the histogram sketches.
    let (values, mut oracle) = materialise(DataSet::Nyt, 23);
    let truth = oracle.query(0.98).unwrap();
    assert_eq!(truth, 57.3, "stand-in data set must pin the paper's spike");

    let mut kll = KllSketch::with_seed(350, 5);
    let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 5);
    let mut dds = DdSketch::paper_configuration();
    for &v in &values {
        kll.insert(v);
        req.insert(v);
        dds.insert(v);
    }
    assert_eq!(req.query(0.98).unwrap(), 57.3, "REQ retains the exact spike");
    let kll_rel = ((kll.query(0.98).unwrap() - truth) / truth).abs();
    assert!(kll_rel < 0.02, "KLL near the spike: {kll_rel}");
    let dds_rel = ((dds.query(0.98).unwrap() - truth) / truth).abs();
    assert!(dds_rel <= 0.01 + 1e-9, "DDS guarantee at the spike: {dds_rel}");
}

//! Mergeability across crates (§2.4): for every mergeable sketch, merging
//! per-shard sketches must answer like a single sketch over the whole
//! stream — "without any change to the error guarantees".

use quantile_sketches::{
    DataSet, DdSketch, ExactQuantiles, KllSketch, MergeableSketch, MomentsSketch,
    QuantileSketch, RankAccuracy, ReqSketch, TDigest, UddSketch, ValueStream,
};

const SHARDS: usize = 8;
const PER_SHARD: usize = 10_000;
const QS: [f64; 5] = [0.25, 0.5, 0.9, 0.95, 0.99];

/// Build shard value-vectors from one dataset (different seeds per shard:
/// partitioned ingestion).
fn shard_values(ds: DataSet) -> (Vec<Vec<f64>>, ExactQuantiles) {
    let shards: Vec<Vec<f64>> = (0..SHARDS)
        .map(|i| ds.generator(100 + i as u64, 50).take_vec(PER_SHARD))
        .collect();
    let mut oracle = ExactQuantiles::with_capacity(SHARDS * PER_SHARD);
    for s in &shards {
        oracle.extend(s.iter().copied());
    }
    (shards, oracle)
}

/// Generic check: the merged sketch's worst relative error is within
/// `tolerance` of the whole-stream sketch's worst error + slack.
fn check_merge<S, FNew>(mut fresh: FNew, shards: &[Vec<f64>], oracle: &mut ExactQuantiles, tol: f64)
where
    S: MergeableSketch + Clone,
    FNew: FnMut(usize) -> S,
{
    let locals: Vec<S> = shards
        .iter()
        .enumerate()
        .map(|(i, shard)| {
            let mut s = fresh(i);
            for &v in shard {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut merged = locals[0].clone();
    for s in &locals[1..] {
        merged.merge(s).expect("same-parameter merge");
    }
    assert_eq!(merged.count(), (SHARDS * PER_SHARD) as u64);
    for q in QS {
        let truth = oracle.query(q).unwrap();
        if let Ok(est) = merged.query(q) {
            let rel = ((est - truth) / truth).abs();
            assert!(rel <= tol, "q={q}: merged error {rel} > {tol}");
        }
    }
}

#[test]
fn ddsketch_merge_keeps_guarantee() {
    for ds in DataSet::ALL {
        let (shards, mut oracle) = shard_values(ds);
        check_merge(
            |_| DdSketch::paper_configuration(),
            &shards,
            &mut oracle,
            0.0100001,
        );
    }
}

#[test]
fn uddsketch_merge_keeps_guarantee() {
    for ds in DataSet::ALL {
        let (shards, mut oracle) = shard_values(ds);
        check_merge(
            |_| UddSketch::paper_configuration(),
            &shards,
            &mut oracle,
            0.0100001,
        );
    }
}

#[test]
fn kll_merge_stays_in_error_regime() {
    let (shards, mut oracle) = shard_values(DataSet::Uniform);
    // Rank error ~1% on uniform translates to ~2-3% value error bands.
    check_merge(
        |i| KllSketch::with_seed(350, 40 + i as u64),
        &shards,
        &mut oracle,
        0.05,
    );
}

#[test]
fn req_merge_upper_quantiles_tight() {
    let (shards, mut oracle) = shard_values(DataSet::Pareto);
    let locals: Vec<ReqSketch> = shards
        .iter()
        .enumerate()
        .map(|(i, shard)| {
            let mut s = ReqSketch::with_seed(30, RankAccuracy::High, 60 + i as u64);
            for &v in shard {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut merged = locals[0].clone();
    for s in &locals[1..] {
        merged.merge(s).expect("merge");
    }
    let truth = oracle.query(0.99).unwrap();
    let est = merged.query(0.99).unwrap();
    let rel = ((est - truth) / truth).abs();
    assert!(rel < 0.05, "merged REQ p99 error {rel} on Pareto");
}

#[test]
fn moments_merge_equals_whole_stream_modulo_rounding() {
    let (shards, _) = shard_values(DataSet::Power);
    let mut whole = MomentsSketch::with_compression(12);
    let mut locals = Vec::new();
    for shard in &shards {
        let mut s = MomentsSketch::with_compression(12);
        for &v in shard {
            s.insert(v);
            whole.insert(v);
        }
        locals.push(s);
    }
    let mut merged = locals[0].clone();
    for s in &locals[1..] {
        merged.merge(s).expect("merge");
    }
    for q in QS {
        let m = merged.query(q).unwrap();
        let w = whole.query(q).unwrap();
        assert!(
            ((m - w) / w).abs() < 1e-5,
            "q={q}: merged {m} vs whole-stream {w}"
        );
    }
}

#[test]
fn tdigest_merge_reasonable() {
    let (shards, mut oracle) = shard_values(DataSet::Uniform);
    check_merge(|_| TDigest::new(200.0), &shards, &mut oracle, 0.05);
}

#[test]
fn merge_order_does_not_matter_for_histogram_sketches() {
    // Deterministic, count-additive sketches must be merge-order
    // independent.
    let (shards, _) = shard_values(DataSet::Nyt);
    let locals: Vec<DdSketch> = shards
        .iter()
        .map(|shard| {
            let mut s = DdSketch::paper_configuration();
            for &v in shard {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut forward = locals[0].clone();
    for s in &locals[1..] {
        forward.merge(s).unwrap();
    }
    let mut backward = locals[SHARDS - 1].clone();
    for s in locals[..SHARDS - 1].iter().rev() {
        backward.merge(s).unwrap();
    }
    for q in QS {
        assert_eq!(
            forward.query(q).unwrap(),
            backward.query(q).unwrap(),
            "q={q}"
        );
    }
}

//! The batch-insert contract, enforced: for every sketch,
//! `insert_batch(values)` (and `insert_n`) must leave the sketch in
//! **bit-identical** state to inserting the same values one at a time —
//! same serialized bytes, not just close answers. This is what lets the
//! sharded engine, the bench harness, and recovery replay route through
//! the batch kernels without changing a single result.
//!
//! Bytes are compared via [`SketchSerialize::encode`], which captures the
//! full state: retained items per level, compaction-coin state (KLL/REQ),
//! bucket maps and the current γ (UDDS), store layout (DDS), power sums
//! (Moments), plus count/min/max everywhere.

use proptest::prelude::*;
use quantile_sketches::{
    DataSet, DdSketch, KllSketch, MomentsSketch, QuantileSketch, RankAccuracy, ReqSketch,
    SketchSerialize, UddSketch, ValueStream,
};

/// Pre-generate `n` values from one paper data set.
fn stream(ds: DataSet, seed: u64, n: usize) -> Vec<f64> {
    let mut gen = ds.generator(seed, 50);
    (0..n).map(|_| gen.next_value()).collect()
}

/// Feed `values` to `scalar` one at a time and to `batch` in `chunks`,
/// then assert the serialized bytes agree.
fn assert_equivalent<S: QuantileSketch + SketchSerialize>(
    mut scalar: S,
    mut batch: S,
    values: &[f64],
    chunks: &[usize],
    context: &str,
) {
    for &v in values {
        scalar.insert(v);
    }
    let mut rest = values;
    let mut chunk_idx = 0;
    while !rest.is_empty() {
        let take = chunks[chunk_idx % chunks.len()].min(rest.len()).max(1);
        chunk_idx += 1;
        let (head, tail) = rest.split_at(take);
        batch.insert_batch(head);
        rest = tail;
    }
    assert_eq!(
        scalar.encode(),
        batch.encode(),
        "{context}: batch state diverged from scalar"
    );
}

/// Chunk-size schedule mixing tiny, engine-sized, and huge chunks so
/// batches repeatedly straddle compaction (KLL/REQ), collapse (UDDS),
/// and store-growth (DDS) boundaries.
const CHUNKS: [usize; 7] = [1, 3, 256, 7, 1024, 64, 5000];

#[test]
fn all_five_sketches_batch_bit_identically_on_all_four_datasets() {
    for ds in DataSet::ALL {
        let values = stream(ds, 42, 30_000);
        macro_rules! check {
            ($make:expr) => {
                assert_equivalent($make, $make, &values, &CHUNKS, &format!("{ds:?}"))
            };
        }
        check!(KllSketch::with_seed(350, 1));
        check!(ReqSketch::with_seed(30, RankAccuracy::High, 1));
        check!(DdSketch::paper_configuration());
        check!(UddSketch::paper_configuration());
        check!(MomentsSketch::with_compression(12));
    }
}

#[test]
fn one_giant_batch_straddles_many_compactions() {
    // A single insert_batch call far larger than any internal buffer:
    // KLL/REQ must compact repeatedly inside one call, UDDS (shrunk to a
    // 32-bucket budget) must collapse repeatedly, and all must match the
    // scalar replay bit for bit.
    let values = stream(DataSet::Pareto, 7, 60_000);
    let whole = [usize::MAX];
    assert_equivalent(
        KllSketch::with_seed(350, 9),
        KllSketch::with_seed(350, 9),
        &values,
        &whole,
        "KLL giant batch",
    );
    assert_equivalent(
        ReqSketch::with_seed(30, RankAccuracy::High, 9),
        ReqSketch::with_seed(30, RankAccuracy::High, 9),
        &values,
        &whole,
        "REQ giant batch",
    );
    assert_equivalent(
        UddSketch::new(0.01, 32),
        UddSketch::new(0.01, 32),
        &values,
        &whole,
        "UDDS tight-budget giant batch",
    );
    assert_equivalent(
        DdSketch::paper_configuration(),
        DdSketch::paper_configuration(),
        &values,
        &whole,
        "DDS giant batch",
    );
}

#[test]
fn nan_is_ignored_identically_by_scalar_and_batch_paths() {
    // Interleave NaNs through a real stream: the NaN-free scalar fill,
    // the NaN-laden scalar fill, and the NaN-laden batch fill must all
    // produce the same bytes — NaN is not recorded, does not perturb
    // min/max, and count does not advance.
    let clean = stream(DataSet::Nyt, 11, 5_000);
    let mut dirty = Vec::with_capacity(clean.len() + clean.len() / 3 + 2);
    dirty.push(f64::NAN); // leading NaN: min/max must stay untouched
    for (i, &v) in clean.iter().enumerate() {
        dirty.push(v);
        if i % 3 == 0 {
            dirty.push(f64::NAN);
        }
    }
    dirty.push(f64::NAN);

    macro_rules! check {
        ($make:expr) => {{
            let mut reference = $make;
            for &v in &clean {
                reference.insert(v);
            }
            let mut scalar_dirty = $make;
            for &v in &dirty {
                scalar_dirty.insert(v);
            }
            let mut batch_dirty = $make;
            for chunk in dirty.chunks(97) {
                batch_dirty.insert_batch(chunk);
            }
            assert_eq!(reference.count(), clean.len() as u64);
            assert_eq!(
                reference.encode(),
                scalar_dirty.encode(),
                "scalar insert must ignore NaN"
            );
            assert_eq!(
                reference.encode(),
                batch_dirty.encode(),
                "insert_batch must ignore NaN"
            );
        }};
    }
    check!(KllSketch::with_seed(350, 5));
    check!(ReqSketch::with_seed(30, RankAccuracy::High, 5));
    check!(DdSketch::paper_configuration());
    check!(UddSketch::paper_configuration());
    check!(MomentsSketch::with_compression(12));
}

#[test]
fn insert_n_matches_repeated_insert() {
    macro_rules! check {
        ($make:expr) => {{
            let mut repeated = $make;
            let mut bulk = $make;
            for (value, count) in [(2.5, 1u64), (1e-6, 1000), (42.0, 1), (-3.0, 17), (0.0, 5)] {
                for _ in 0..count {
                    repeated.insert(value);
                }
                bulk.insert_n(value, count);
            }
            bulk.insert_n(9.0, 0); // count 0 is a no-op
            bulk.insert_n(f64::NAN, 3); // NaN is ignored regardless of count
            assert_eq!(repeated.encode(), bulk.encode());
        }};
    }
    check!(KllSketch::with_seed(350, 2));
    check!(ReqSketch::with_seed(30, RankAccuracy::High, 2));
    check!(DdSketch::paper_configuration());
    check!(UddSketch::paper_configuration());
    check!(MomentsSketch::with_compression(12));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random chunk partitions of a random-length stream from a random
    /// paper data set: batch bytes == scalar bytes for every sketch.
    #[test]
    fn random_chunking_is_bit_identical(
        seed in 0u64..10_000,
        ds_idx in 0usize..4,
        n in 1usize..8_000,
        chunks in proptest::collection::vec(1usize..700, 1..12),
    ) {
        let ds = DataSet::ALL[ds_idx];
        let values = stream(ds, seed, n);
        let ctx = format!("{ds:?} seed={seed} n={n}");
        assert_equivalent(
            KllSketch::with_seed(350, seed),
            KllSketch::with_seed(350, seed),
            &values, &chunks, &ctx,
        );
        assert_equivalent(
            ReqSketch::with_seed(30, RankAccuracy::High, seed),
            ReqSketch::with_seed(30, RankAccuracy::High, seed),
            &values, &chunks, &ctx,
        );
        assert_equivalent(
            DdSketch::paper_configuration(),
            DdSketch::paper_configuration(),
            &values, &chunks, &ctx,
        );
        // A tight bucket budget makes collapses frequent enough for small
        // streams to straddle them.
        assert_equivalent(
            UddSketch::new(0.01, 64),
            UddSketch::new(0.01, 64),
            &values, &chunks, &ctx,
        );
        assert_equivalent(
            MomentsSketch::with_compression(12),
            MomentsSketch::with_compression(12),
            &values, &chunks, &ctx,
        );
    }
}

//! Integration tests for the multi-threaded sharded ingestion engine:
//! sharded estimates must stay in the same error regime as a
//! single-sketch run for all five paper sketches (§2.4: merging changes
//! nothing about the guarantees), routing must be deterministic, and
//! backpressure must block — not drop, not deadlock.

use std::time::{Duration, Instant};

use qsketch_bench::SketchKind;
use qsketch_core::codec::{DecodeError, SketchSerialize};
use quantile_sketches::{
    DataSet, ExactQuantiles, MergeError, MergeableSketch, MetricsRegistry, QuantileSketch,
    QueryError, ValueStream,
};
use qsketch_streamsim::EngineBuilder;

const N: usize = 40_000;
const SHARDS: usize = 4;
const QS: [f64; 5] = [0.25, 0.5, 0.9, 0.95, 0.99];

/// Worst rank error of a sketch's estimates over `QS` against the sorted
/// stream (rank error is the guarantee the sampling sketches actually
/// make; for the value-space sketches it is implied by the relative-value
/// guarantee on these data).
fn worst_rank_error(sketch: &impl QuantileSketch, sorted: &[f64]) -> f64 {
    let n = sorted.len() as f64;
    QS.iter()
        .map(|&q| {
            let est = sketch.query(q).expect("non-empty sketch");
            // With repeated values the estimate's rank is an interval;
            // measure distance from q to [P(< est), P(<= est)].
            let lo = sorted.partition_point(|&v| v < est) as f64 / n;
            let hi = sorted.partition_point(|&v| v <= est) as f64 / n;
            if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

fn pareto_stream(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let values = DataSet::Pareto.generator(seed, 50).take_vec(N);
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (values, sorted)
}

/// The ISSUE's acceptance test: for every paper sketch, the 4-shard
/// engine's estimates stay in the same error regime as a single sketch
/// fed the whole stream — within an additive slack (both runs are
/// estimates) and below an absolute regime ceiling.
#[test]
fn sharded_engine_matches_single_sketch_error_regime() {
    let (values, sorted) = pareto_stream(7);
    for kind in SketchKind::PAPER_FIVE {
        // Single-sketch reference run.
        let mut single = kind.build(100, true);
        for &v in &values {
            single.insert(v);
        }
        let single_err = worst_rank_error(&single, &sorted);

        // Sharded run over the same stream.
        let mut shard_seed = 200u64;
        let mut engine = EngineBuilder::sharded(SHARDS)
            .spawn(|| {
                shard_seed += 1;
                kind.build(shard_seed, true)
            })
            .unwrap();
        for &v in &values {
            engine.insert(v);
        }
        let merged = engine.finish().expect("same-parameter shards merge");
        assert_eq!(merged.count(), N as u64, "{}", kind.label());
        let sharded_err = worst_rank_error(&merged, &sorted);

        // Same regime: no more than the single run's worst error plus a
        // few percent of rank slack (independent randomness on both
        // sides), and under an absolute ceiling of 5% rank error.
        assert!(
            sharded_err <= single_err + 0.03,
            "{}: sharded rank error {sharded_err:.4} vs single {single_err:.4}",
            kind.label()
        );
        assert!(
            sharded_err <= 0.05,
            "{}: sharded rank error {sharded_err:.4} out of regime",
            kind.label()
        );
    }
}

/// The per-shard determinism contract (ARCHITECTURE.md): routing is a
/// deterministic function of the input order (round-robin batches over
/// per-shard rings, each drained by a single worker in FIFO order), so
/// two engines with the same seeds must hold bit-identical per-shard
/// states — and therefore bit-identical merged estimates — regardless
/// of thread scheduling. Concurrency only reorders work *between*
/// shards, never within one.
#[test]
fn sharded_engine_is_deterministic() {
    let (values, _) = pareto_stream(11);
    for kind in SketchKind::PAPER_FIVE {
        let run = || {
            let mut shard_seed = 300u64;
            let mut engine = EngineBuilder::sharded(SHARDS)
                .spawn(|| {
                    shard_seed += 1;
                    kind.build(shard_seed, true)
                })
                .unwrap();
            for &v in &values {
                engine.insert(v);
            }
            // Per-shard contract: the published wire bytes of every
            // shard must be bit-identical across runs, not just the
            // merged estimates.
            let handle = engine.query_fresh();
            let mut shard_bytes: Vec<(usize, Vec<u8>)> = handle
                .parts()
                .iter()
                .map(|p| (p.shard, p.bytes.clone()))
                .collect();
            shard_bytes.sort_by_key(|(shard, _)| *shard);
            let merged = engine.finish().unwrap();
            let estimates = QS
                .iter()
                .map(|&q| merged.query(q).unwrap())
                .collect::<Vec<f64>>();
            (shard_bytes, estimates)
        };
        let (bytes_a, est_a) = run();
        let (bytes_b, est_b) = run();
        assert_eq!(bytes_a, bytes_b, "{}: per-shard bytes diverged", kind.label());
        assert_eq!(est_a, est_b, "{}: non-deterministic estimates", kind.label());
    }
}

/// A deliberately slow sketch: each insert spins ~20 µs so a tiny queue
/// fills and the producer must block.
#[derive(Clone, Default)]
struct SlowSketch {
    values: Vec<f64>,
}

impl QuantileSketch for SlowSketch {
    fn insert(&mut self, v: f64) {
        let start = Instant::now();
        while start.elapsed() < Duration::from_micros(20) {
            std::hint::spin_loop();
        }
        self.values.push(v);
    }
    fn query(&self, q: f64) -> Result<f64, QueryError> {
        qsketch_core::sketch::check_quantile(q)?;
        if self.values.is_empty() {
            return Err(QueryError::Empty);
        }
        let mut s = self.values.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        Ok(s[rank - 1])
    }
    fn count(&self) -> u64 {
        self.values.len() as u64
    }
    fn memory_footprint(&self) -> usize {
        self.values.len() * 8
    }
    fn name(&self) -> &'static str {
        "slow"
    }
}

impl MergeableSketch for SlowSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.values.extend_from_slice(&other.values);
        Ok(())
    }
}

// The engine publishes shard snapshots in wire format, so even a test
// sketch needs a codec: count then raw little-endian values.
impl SketchSerialize for SlowSketch {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + self.values.len() * 8);
        buf.extend_from_slice(&(self.values.len() as u64).to_le_bytes());
        for v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }
    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let head = bytes.get(..8).ok_or(DecodeError::UnexpectedEnd)?;
        let n = u64::from_le_bytes(head.try_into().unwrap()) as usize;
        let mut values = Vec::with_capacity(n.min(1 << 20));
        for i in 0..n {
            let off = 8 + i * 8;
            let chunk = bytes.get(off..off + 8).ok_or(DecodeError::UnexpectedEnd)?;
            values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(Self { values })
    }
}

/// The ISSUE's backpressure test: with a 1-batch queue and a slow
/// consumer the producer must block (non-empty backpressure histogram),
/// nothing may be lost, and the run must complete (no deadlock).
#[test]
fn backpressure_blocks_producer_without_deadlock() {
    let registry = MetricsRegistry::new();
    let mut engine = EngineBuilder::sharded(2)
        .batch_size(4)
        .queue_capacity(1)
        .metrics(&registry, "engine")
        .spawn(SlowSketch::default)
        .unwrap();
    let n = 400u64;
    for i in 1..=n {
        engine.insert(i as f64);
    }
    let merged = engine.finish().unwrap();
    assert_eq!(merged.count(), n, "backpressure must not drop events");
    assert_eq!(merged.query(1.0).unwrap(), n as f64);

    let snap = registry.snapshot();
    let waits = snap
        .histogram("engine.backpressure_wait_ns")
        .expect("histogram registered");
    assert!(
        waits.count > 0,
        "producer never blocked: queue capacity 1 with a 20 µs/insert \
         consumer must exert backpressure"
    );
    assert!(waits.max > 0, "recorded waits must be non-zero");
    assert_eq!(snap.counter("engine.events"), Some(n));
    let inserted = snap.counter("engine.partition.0.events").unwrap()
        + snap.counter("engine.partition.1.events").unwrap();
    assert_eq!(inserted, n);
}

/// Cross-check against the exact oracle: the merged result of a sharded
/// DDSketch ingest keeps the deterministic ±1% value guarantee.
#[test]
fn sharded_ddsketch_keeps_deterministic_guarantee() {
    let (values, _) = pareto_stream(13);
    let mut oracle = ExactQuantiles::with_capacity(N);
    oracle.extend(values.iter().copied());
    let mut engine = EngineBuilder::sharded(SHARDS)
        .spawn(|| SketchKind::Dds.build(1, false))
        .unwrap();
    for &v in &values {
        engine.insert(v);
    }
    let merged = engine.finish().unwrap();
    for q in QS {
        let truth = oracle.query(q).unwrap();
        let est = merged.query(q).unwrap();
        let rel = ((est - truth) / truth).abs();
        assert!(rel <= 0.01 + 1e-9, "q={q}: {rel}");
    }
}

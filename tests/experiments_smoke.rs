//! Smoke tests running every paper experiment end-to-end at `--tiny`
//! scale: each must execute, produce its table, and mention every sketch.

use qsketch_bench::cli::{Args, Scale};
use qsketch_bench::experiments as e;

fn tiny() -> Args {
    Args {
        scale: Scale::Tiny,
        with_baselines: false,
        seed: 42,
        runs: Some(1),
        metrics: false,
        threads: None,
        sketch: None,
    }
}

fn assert_mentions_sketches(out: &str, name: &str) {
    for label in ["REQ", "KLL", "UDDS", "DDS", "Moments"] {
        assert!(out.contains(label), "{name}: output missing {label}\n{out}");
    }
}

#[test]
fn fig4_runs() {
    let out = e::fig4_datasets::run(&tiny());
    assert!(out.contains("Fig. 4"));
    for ds in ["Pareto", "Uniform", "NYT", "Power"] {
        assert!(out.contains(ds), "fig4 missing {ds}");
    }
    assert!(out.contains('#'), "histogram bars missing");
}

#[test]
fn table3_runs() {
    let out = e::table3_memory::run(&tiny());
    assert!(out.contains("Table 3"));
    assert_mentions_sketches(&out, "table3");
    assert!(out.contains("Pareto") && out.contains("Power"));
}

#[test]
fn fig5a_runs() {
    let out = e::fig5a_insertion::run(&tiny());
    assert!(out.contains("Fig. 5a"));
    assert_mentions_sketches(&out, "fig5a");
    assert!(out.contains("ns") || out.contains("µs"));
}

#[test]
fn fig5b_runs() {
    let out = e::fig5b_query::run(&tiny());
    assert!(out.contains("Fig. 5b"));
    assert_mentions_sketches(&out, "fig5b");
}

#[test]
fn fig5c_runs() {
    let out = e::fig5c_merge::run(&tiny());
    assert!(out.contains("Fig. 5c"));
    assert_mentions_sketches(&out, "fig5c");
}

#[test]
fn fig6_runs() {
    let out = e::fig6_accuracy::run(&tiny());
    assert!(out.contains("Fig. 6"));
    assert_mentions_sketches(&out, "fig6");
    for ds in ["Pareto", "Uniform", "NYT", "Power"] {
        assert!(out.contains(ds), "fig6 missing {ds}");
    }
    assert!(out.contains('%'));
}

#[test]
fn fig7_runs() {
    let out = e::fig7_kurtosis::run(&tiny());
    assert!(out.contains("Fig. 7"));
    assert!(out.contains("kurtosis"));
    assert_mentions_sketches(&out, "fig7");
}

#[test]
fn fig8_runs() {
    let out = e::fig8_adaptability::run(&tiny());
    assert!(out.contains("Fig. 8"));
    assert_mentions_sketches(&out, "fig8");
    assert!(out.contains("0.5"));
}

#[test]
fn sec46_runs() {
    let out = e::sec46_late_data::run(&tiny());
    assert!(out.contains("4.6"));
    assert_mentions_sketches(&out, "sec46");
    assert!(out.contains("loss"));
}

#[test]
fn sec47_runs() {
    let out = e::sec47_window_size::run(&tiny());
    assert!(out.contains("4.7"));
    assert_mentions_sketches(&out, "sec47");
    assert!(out.contains("5 s") && out.contains("20 s"));
}

#[test]
fn table4_runs() {
    let out = e::table4_summary::run(&tiny());
    assert!(out.contains("Table 4"));
    assert!(out.contains("Sketching approach"));
    assert!(out.contains("Sampling") && out.contains("Summary"));
}

#[test]
fn ext_watermark_lag_runs() {
    let out = e::ext_watermark_lag::run(&tiny());
    assert!(out.contains("watermark lag"));
    assert!(out.contains("loss"));
    assert_mentions_sketches(&out, "ext_watermark_lag");
}

#[test]
fn ext_parallel_scaling_runs() {
    let mut args = tiny();
    args.threads = Some(vec![1, 2]);
    let (out, json) = e::ext_parallel_scaling::run_with_json(&args);
    assert!(out.contains("parallel insert scaling"));
    assert_mentions_sketches(&out, "ext_parallel_scaling");
    assert!(out.contains("speedup") && out.contains("p99 ins (ns)"));
    assert!(json.starts_with("{\"experiment\":\"ext_parallel_scaling\""));
    assert!(json.contains("\"threads\":[1,2]"));
    assert!(json.contains("\"sketch\":\"KLL\",\"threads\":2"));
    assert!(json.contains("\"merged_count\":20000"));
}

#[test]
fn ext_checkpoint_runs_and_recovery_is_bit_identical() {
    let (out, json) = e::ext_checkpoint::run_with_json(&tiny());
    assert!(out.contains("checkpoint overhead"));
    // The table is keyed by canonical spec strings, not display labels.
    for spec in ["req:", "kll:", "udds:", "dds:", "moments:"] {
        assert!(out.contains(spec), "ext_checkpoint missing {spec}\n{out}");
    }
    assert!(out.contains("recovery"));
    // Every sketch's fault-injected recovery must verify bit-identical.
    assert!(!out.contains("FAIL"), "{out}");
    assert!(json.starts_with("{\"experiment\":\"ext_checkpoint\""));
    assert!(json.contains("\"recovery_ok\":true"));
    assert!(!json.contains("\"recovery_ok\":false"));
    // With a single --sketch override only that sketch runs.
    let mut args = tiny();
    args.sketch = Some("kll:200".parse().unwrap());
    let out = e::ext_checkpoint::run(&args);
    assert!(out.contains("kll:200") && !out.contains("dds:"));
}

#[test]
fn ext_parallel_scaling_metrics_expose_engine_health() {
    let mut args = tiny();
    args.threads = Some(vec![2]);
    args.metrics = true;
    let out = e::ext_parallel_scaling::run(&args);
    assert!(out.contains("Metrics snapshot"));
    assert!(out.contains("engine.kll.t2.partition.0.events"));
    assert!(out.contains("engine.kll.t2.shard.0.queue_depth"));
    assert!(out.contains("engine.kll.t2.backpressure_wait_ns"));
    assert!(out.contains("engine.kll.t2.merge_ns"));
}

#[test]
fn metrics_overhead_runs() {
    let out = e::metrics_overhead::run(&tiny());
    assert!(out.contains("insert overhead"));
    assert_mentions_sketches(&out, "metrics_overhead");
    assert!(out.contains("ns/insert"));
}

#[test]
fn metrics_flag_appends_snapshot() {
    let mut args = tiny();
    args.metrics = true;
    let out = e::ext_watermark_lag::run(&args);
    assert!(out.contains("Metrics snapshot"));
    assert!(out.contains("pipeline.late_dropped"));
    assert!(out.contains("sketch.KLL.inserts"));
}

#[test]
fn baselines_flag_extends_columns() {
    let mut args = tiny();
    args.with_baselines = true;
    let out = e::table3_memory::run(&args);
    assert!(out.contains("GK") && out.contains("t-digest"));
}

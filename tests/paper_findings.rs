//! Capstone assertions: the paper's headline findings, each reproduced
//! end-to-end at test scale. These are the sentences of the abstract and
//! §6 turned into executable checks.

use std::time::Instant;

use quantile_sketches::{
    DataSet, DdSketch, ExactQuantiles, KllSketch, MergeableSketch, MomentsSketch,
    QuantileSketch, RankAccuracy, ReqSketch, UddSketch, ValueStream,
};

const N: usize = 80_000;
const QS: [f64; 8] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99];

fn dataset(ds: DataSet, seed: u64) -> (Vec<f64>, ExactQuantiles) {
    let values = ds.generator(seed, 50).take_vec(N);
    let mut oracle = ExactQuantiles::with_capacity(N);
    oracle.extend(values.iter().copied());
    (values, oracle)
}

fn mean_error<S: QuantileSketch>(sketch: &S, oracle: &mut ExactQuantiles) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for q in QS {
        let truth = oracle.query(q).unwrap();
        if let Ok(est) = sketch.query(q) {
            sum += ((est - truth) / truth).abs();
            n += 1;
        }
    }
    sum / n as f64
}

/// Abstract: "UDDSketch has the best relative-error accuracy guarantees,
/// while DDSketch and ReqSketch also achieve consistently high accuracy,
/// particularly with long-tailed data distributions."
#[test]
fn uddsketch_has_best_overall_accuracy() {
    // The paper's claim is *consistency*: UDDSketch stays under the 1%
    // threshold on every data set and beats the sampling/summary
    // competitors on the hard (skewed, real-world-shaped) streams. On the
    // easy uniform stream Moments can edge it (the paper's own Fig. 6b
    // shows the same), so the dominance check covers the other three.
    let mut udd_wins = 0;
    for ds in DataSet::ALL {
        let (values, mut oracle) = dataset(ds, 21);
        let mut udd = UddSketch::paper_configuration();
        let mut kll = KllSketch::with_seed(350, 1);
        let mut moments = if ds.moments_needs_compression() {
            MomentsSketch::with_compression(12)
        } else {
            MomentsSketch::paper_configuration()
        };
        for &v in &values {
            udd.insert(v);
            kll.insert(v);
            moments.insert(v);
        }
        let udd_err = mean_error(&udd, &mut oracle);
        let kll_err = mean_error(&kll, &mut oracle);
        let mom_err = mean_error(&moments, &mut oracle);
        assert!(udd_err < 0.01, "{}: UDDS err {udd_err}", ds.label());
        assert!(
            udd_err <= kll_err + 1e-12,
            "{}: UDDS {udd_err} vs KLL {kll_err}",
            ds.label()
        );
        if udd_err <= mom_err {
            udd_wins += 1;
        }
    }
    assert!(udd_wins >= 3, "UDDS should beat Moments on >= 3 of 4 data sets");
}

/// §4.5.1 / Fig. 6a: KLL's accuracy collapses at the Pareto tail while the
/// relative-error sketches hold their guarantee there.
#[test]
fn kll_suffers_at_long_tails_where_histogram_sketches_hold() {
    let (values, mut oracle) = dataset(DataSet::Pareto, 23);
    let mut kll = KllSketch::with_seed(350, 2);
    let mut dds = DdSketch::paper_configuration();
    for &v in &values {
        kll.insert(v);
        dds.insert(v);
    }
    let truth = oracle.query(0.99).unwrap();
    let kll_err = ((kll.query(0.99).unwrap() - truth) / truth).abs();
    let dds_err = ((dds.query(0.99).unwrap() - truth) / truth).abs();
    assert!(dds_err <= 0.01 + 1e-9, "DDS guarantee: {dds_err}");
    assert!(
        kll_err > 2.0 * dds_err,
        "KLL ({kll_err}) should be far worse than DDS ({dds_err}) at the Pareto p99"
    );
}

/// Abstract: "Moments Sketch has the fastest merge times." Compare the
/// two extremes the paper singles out (Moments vs the sampling sketches).
#[test]
fn moments_merges_fastest_by_a_wide_margin() {
    let (values, _) = dataset(DataSet::Uniform, 25);
    let mut mom_a = MomentsSketch::paper_configuration();
    let mut mom_b = MomentsSketch::paper_configuration();
    let mut kll_a = KllSketch::with_seed(350, 3);
    let mut kll_b = KllSketch::with_seed(350, 4);
    for &v in &values {
        mom_a.insert(v);
        mom_b.insert(v);
        kll_a.insert(v);
        kll_b.insert(v);
    }
    // Amortise over repetitions so the comparison is stable in debug
    // builds too.
    let reps = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut m = mom_a.clone();
        m.merge(&mom_b).unwrap();
        std::hint::black_box(m.count());
    }
    let moments_ns = t0.elapsed().as_nanos();
    let t1 = Instant::now();
    for _ in 0..reps {
        let mut k = kll_a.clone();
        k.merge(&kll_b).unwrap();
        std::hint::black_box(k.count());
    }
    let kll_ns = t1.elapsed().as_nanos();
    // The paper reports >= an order of magnitude; demand at least 3x to
    // stay robust against scheduling noise (clone cost is included for
    // both).
    assert!(
        moments_ns * 3 < kll_ns,
        "Moments merge {moments_ns} ns should be far below KLL {kll_ns} ns"
    );
}

/// Abstract: "DDSketch has the fastest query and insertion times" —
/// checked against the slowest-inserting sampling sketch.
#[test]
fn ddsketch_inserts_faster_than_sampling_sketches() {
    let (values, _) = dataset(DataSet::Pareto, 27);
    let t0 = Instant::now();
    let mut dds = DdSketch::paper_configuration();
    for &v in &values {
        dds.insert(v);
    }
    let dds_ns = t0.elapsed().as_nanos();

    let t1 = Instant::now();
    let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 5);
    for &v in &values {
        req.insert(v);
    }
    let req_ns = t1.elapsed().as_nanos();
    assert!(
        dds_ns * 2 < req_ns,
        "DDS insert {dds_ns} ns should clearly beat REQ {req_ns} ns"
    );
}

/// §6: "If highly accurate estimates are required for upper or lower
/// quantiles, ReqSketch is ideal" — HRA beats everything randomized at
/// the very top of the distribution.
#[test]
fn req_hra_dominates_at_the_very_top() {
    for ds in [DataSet::Pareto, DataSet::Power] {
        let (values, mut oracle) = dataset(ds, 29);
        let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 6);
        let mut kll = KllSketch::with_seed(350, 6);
        for &v in &values {
            req.insert(v);
            kll.insert(v);
        }
        let truth = oracle.query(0.99).unwrap();
        let req_err = ((req.query(0.99).unwrap() - truth) / truth).abs();
        let kll_err = ((kll.query(0.99).unwrap() - truth) / truth).abs();
        assert!(
            req_err <= kll_err + 1e-12,
            "{}: REQ {req_err} vs KLL {kll_err}",
            ds.label()
        );
    }
}

/// §4.5.7 / Fig. 8: after a distribution switch, the histogram sketches
/// stay accurate at the boundary quantile while the sampling sketches
/// jump.
#[test]
fn adaptability_boundary_jump() {
    let mut stream = quantile_sketches::paper_adaptability_stream(31, 40_000);
    let values = stream.take_vec(80_000);
    let mut oracle = ExactQuantiles::with_capacity(values.len());
    oracle.extend(values.iter().copied());
    let truth = oracle.query(0.5).unwrap();

    let mut udd = UddSketch::paper_configuration();
    let mut kll = KllSketch::with_seed(350, 7);
    for &v in &values {
        udd.insert(v);
        kll.insert(v);
    }
    let udd_err = ((udd.query(0.5).unwrap() - truth) / truth).abs();
    let kll_err = ((kll.query(0.5).unwrap() - truth) / truth).abs();
    assert!(udd_err < 0.01, "UDDS boundary error {udd_err}");
    assert!(
        kll_err > 0.05,
        "KLL should jump at the fragment boundary, got {kll_err}"
    );
}

/// §6: "all of the algorithms are comparably fast with an average
/// insertion time that is well below a microsecond" (release scale; in
/// debug we only bound the ratio between fastest and slowest).
#[test]
fn all_sketches_insert_within_three_orders_of_magnitude() {
    let (values, _) = dataset(DataSet::Uniform, 33);
    let mut times = Vec::new();
    macro_rules! timed {
        ($make:expr) => {{
            let mut s = $make;
            let t = Instant::now();
            for &v in &values {
                s.insert(v);
            }
            std::hint::black_box(s.count());
            times.push(t.elapsed().as_nanos());
        }};
    }
    timed!(KllSketch::with_seed(350, 8));
    timed!(MomentsSketch::paper_configuration());
    timed!(DdSketch::paper_configuration());
    timed!(UddSketch::paper_configuration());
    timed!(ReqSketch::with_seed(30, RankAccuracy::High, 8));
    let fastest = *times.iter().min().unwrap();
    let slowest = *times.iter().max().unwrap();
    assert!(
        slowest < fastest * 1000,
        "insertion spread too wide: {times:?}"
    );
}

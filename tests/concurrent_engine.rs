//! Stress and scheduled-interleaving tests for the lock-free ingest
//! substrate: the MPSC `HandoffRing` (CAS-claimed slots, blocking
//! backpressure), the `EpochCell` snapshot publication path, and the
//! engines built on them. These are the ISSUE's concurrency acceptance
//! tests: no event lost, no deadlock, wait-free queries, and per-shard
//! (resp. per-key) determinism under real thread interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use qsketch_kll::KllSketch;
use qsketch_streamsim::{EngineBuilder, EpochCell, HandoffRing, PopState};

/// Every batch pushed by any producer arrives exactly once, and each
/// producer's own batches arrive in its program order (the ring is
/// FIFO per claim ticket, and one producer's tickets are ordered).
#[test]
fn handoff_ring_mpsc_stress_loses_and_reorders_nothing() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 5_000;
    let ring = Arc::new(HandoffRing::<(u64, u64)>::new(8));

    let consumer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let mut last_seen = vec![0u64; PRODUCERS as usize];
            let mut total = 0u64;
            let mut sum = 0u64;
            loop {
                match ring.pop_wait() {
                    PopState::Item((producer, seq), _) => {
                        assert!(
                            seq > last_seen[producer as usize],
                            "producer {producer} reordered: {seq} after {}",
                            last_seen[producer as usize]
                        );
                        last_seen[producer as usize] = seq;
                        total += 1;
                        sum += seq;
                        ring.mark_done(1);
                    }
                    PopState::Idle => {}
                    PopState::Closed => return (total, sum),
                }
            }
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for seq in 1..=PER_PRODUCER {
                    let report = ring.push((p, seq), 1);
                    assert!(!report.dropped, "live ring must never drop");
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    ring.close();
    let (total, sum) = consumer.join().unwrap();
    assert_eq!(total, PRODUCERS * PER_PRODUCER);
    assert_eq!(sum, PRODUCERS * (PER_PRODUCER * (PER_PRODUCER + 1) / 2));
}

/// Deterministic single-thread interleaving of the slot state machine:
/// fill to capacity, drain to empty, and wrap the ring through several
/// laps, checking the full/empty boundaries at every step. This is the
/// scheduled counterpart of the stress test above — each transition of
/// the Vyukov `seq` protocol is exercised at a known point.
#[test]
fn scheduled_interleaving_walks_full_empty_and_wraparound() {
    let ring = HandoffRing::<u32>::new(2);
    assert_eq!(ring.capacity(), 2);
    assert!(ring.try_pop().is_none(), "new ring is empty");

    for lap in 0..5u32 {
        let base = lap * 10;
        // Fill to capacity; the next push must bounce with its payload.
        assert!(ring.try_push(base, 1).is_ok());
        assert!(ring.try_push(base + 1, 1).is_ok());
        assert_eq!(ring.try_push(base + 2, 1), Err(base + 2));

        // Drain one: exactly one slot frees, in FIFO order.
        assert_eq!(ring.try_pop().map(|(v, _)| v), Some(base));
        ring.mark_done(1);
        assert!(ring.try_push(base + 3, 1).is_ok());
        assert_eq!(ring.try_push(base + 4, 1), Err(base + 4));

        // Drain to empty; an extra pop must report empty, not stall.
        assert_eq!(ring.try_pop().map(|(v, _)| v), Some(base + 1));
        ring.mark_done(1);
        assert_eq!(ring.try_pop().map(|(v, _)| v), Some(base + 3));
        ring.mark_done(1);
        assert!(ring.try_pop().is_none());
    }
    assert_eq!(ring.sent_batches(), 15);
    assert_eq!(ring.done_values(), 15);
}

/// The capacity-1 degenerate ring (one lap = one slot) under two real
/// producers: the logical-capacity gate must serialize them without
/// ever overwriting an unconsumed payload.
#[test]
fn capacity_one_ring_survives_two_producers() {
    let ring = Arc::new(HandoffRing::<u64>::new(1));
    let consumer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let mut sum = 0u64;
            loop {
                match ring.pop_wait() {
                    PopState::Item(v, _) => {
                        sum += v;
                        ring.mark_done(1);
                    }
                    PopState::Idle => {}
                    PopState::Closed => return sum,
                }
            }
        })
    };
    let producers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for v in 1..=2_000u64 {
                    assert!(!ring.push(v, 1).dropped);
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    ring.close();
    assert_eq!(consumer.join().unwrap(), 2 * (2_000 * 2_001 / 2));
}

/// Epoch publication vs. concurrent readers: readers must always see a
/// fully formed value whose embedded epoch matches the cell's, and the
/// epoch sequence each reader observes must be monotone (a reader can
/// lag, never travel back in time).
#[test]
fn epoch_cell_readers_see_monotone_complete_snapshots() {
    const EPOCHS: u64 = 2_000;
    let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
    let stop = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last = 0u64;
                let mut reads = 0u64;
                loop {
                    let done = stop.load(Ordering::Acquire) != 0;
                    let snap = cell.load();
                    let (epoch, payload) = *snap;
                    assert_eq!(payload, epoch * 3, "torn or stale-mixed snapshot");
                    assert!(epoch >= last, "epoch went backwards: {epoch} < {last}");
                    last = epoch;
                    reads += 1;
                    // On a single CPU the writer may finish before this
                    // thread is first scheduled; the post-stop load above
                    // still verifies the final published snapshot.
                    if done {
                        return reads;
                    }
                }
            })
        })
        .collect();

    for epoch in 1..=EPOCHS {
        cell.publish(Arc::new((epoch, epoch * 3)));
    }
    stop.store(1, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    assert_eq!(cell.epoch(), EPOCHS);
    assert_eq!(cell.load().0, EPOCHS);
}

/// Two producers hammering a keyed engine with a capacity-1 ring: the
/// blocking push ladder must exert backpressure without deadlocking,
/// and nothing may be lost (ported from the sharded engine's
/// backpressure acceptance test to the concurrent keyed substrate).
#[test]
fn keyed_tiny_ring_two_producers_no_deadlock_no_loss() {
    let engine = Arc::new(
        EngineBuilder::keyed(1)
            .queue_capacity(1)
            .spawn(|| KllSketch::with_seed(200, 3))
            .unwrap(),
    );
    const PER_PRODUCER: usize = 500;
    let threads: Vec<_> = (0..2)
        .map(|p| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let tenant = format!("tenant-{p}");
                for chunk in 0..PER_PRODUCER / 50 {
                    let values: Vec<f64> =
                        (0..50).map(|i| (chunk * 50 + i) as f64 + 1.0).collect();
                    assert_eq!(engine.ingest(&tenant, "metric", &values).unwrap(), 50);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    engine.drain();
    for p in 0..2 {
        let handle = engine
            .query(&format!("tenant-{p}"), "metric")
            .expect("ingested key is queryable");
        assert_eq!(handle.count().unwrap(), PER_PRODUCER as u64);
    }
}

/// Per-key determinism under concurrent producers: two runs with the
/// same per-key data but racing producer threads must answer every
/// per-key quantile with the same bits. This is the documented
/// determinism contract of the concurrent engine — keys are partitioned
/// to one home shard and drained FIFO, so scheduling can only reorder
/// *between* keys, never within one.
#[test]
fn per_key_determinism_holds_under_two_producers() {
    let run = || {
        let engine = Arc::new(
            EngineBuilder::keyed(2)
                .spawn(|| KllSketch::with_seed(200, 0xBEEF))
                .unwrap(),
        );
        let threads: Vec<_> = (0..2)
            .map(|p| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    // Each producer owns its own keys; values are a
                    // fixed per-key sequence, delivered in order.
                    for k in 0..4 {
                        let key = format!("key-{p}-{k}");
                        for chunk in 0..10 {
                            let values: Vec<f64> = (0..100)
                                .map(|i| ((chunk * 100 + i) as f64).sin() * 1e3)
                                .collect();
                            engine.ingest("t", &key, &values).unwrap();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        engine.drain();
        let mut answers = Vec::new();
        for p in 0..2 {
            for k in 0..4 {
                let key = format!("key-{p}-{k}");
                let handle = engine.query("t", &key).unwrap();
                assert_eq!(handle.count().unwrap(), 1_000);
                for q in [0.1, 0.5, 0.99] {
                    answers.push((key.clone(), q, handle.quantile(q).unwrap().to_bits()));
                }
            }
        }
        answers
    };
    assert_eq!(run(), run(), "per-key answers must be bit-identical");
}

/// A `SnapshotHandle` is fully detached: it keeps answering after the
/// engine that published it is gone, and concurrent ingest neither
/// blocks on nor invalidates an outstanding handle.
#[test]
fn snapshot_handles_outlive_the_engine() {
    let mut engine = EngineBuilder::sharded(2)
        .spawn(|| KllSketch::with_seed(200, 11))
        .unwrap();
    engine.extend((1..=10_000).map(f64::from));
    let handle = engine.query_fresh();
    assert_eq!(handle.count().unwrap(), 10_000);

    // Keep ingesting after taking the handle, then drop the engine.
    engine.extend((1..=5_000).map(f64::from));
    let final_handle = engine.query_fresh();
    drop(engine);

    assert_eq!(handle.count().unwrap(), 10_000, "old handle is frozen");
    assert_eq!(final_handle.count().unwrap(), 15_000);
    let mid = handle.quantile(0.5).unwrap();
    assert!((mid - 5_000.0).abs() < 500.0, "median {mid}");
}

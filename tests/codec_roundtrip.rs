//! Wire-format tests across crates: the distributed scenario of §2.4 —
//! encode on the worker, ship bytes, decode and merge on the coordinator —
//! plus robustness of every decoder against mangled payloads.

use proptest::prelude::*;
use quantile_sketches::{
    DataSet, DdSketch, DecodeError, KllSketch, MergeableSketch, MomentsSketch, QuantileSketch,
    RankAccuracy, ReqSketch, SketchSerialize, UddSketch, ValueStream,
};

/// Simulated worker: fill a sketch from a shard and return its payload.
fn worker_payload<S: QuantileSketch + SketchSerialize>(
    mut sketch: S,
    ds: DataSet,
    seed: u64,
) -> Vec<u8> {
    let mut gen = ds.generator(seed, 50);
    for _ in 0..20_000 {
        sketch.insert(gen.next_value());
    }
    sketch.encode()
}

#[test]
fn coordinator_merges_shipped_ddsketches() {
    let payloads: Vec<Vec<u8>> = (0..4)
        .map(|i| worker_payload(DdSketch::paper_configuration(), DataSet::Nyt, 100 + i))
        .collect();
    let mut global = DdSketch::decode(&payloads[0]).unwrap();
    for p in &payloads[1..] {
        let shard = DdSketch::decode(p).unwrap();
        global.merge(&shard).unwrap();
    }
    assert_eq!(global.count(), 80_000);
    let p99 = global.query(0.99).unwrap();
    assert!(p99 > 40.0 && p99 < 200.0, "p99 {p99}");
}

#[test]
fn coordinator_merges_shipped_moments() {
    let payloads: Vec<Vec<u8>> = (0..4)
        .map(|i| worker_payload(MomentsSketch::with_compression(12), DataSet::Power, 200 + i))
        .collect();
    let mut global = MomentsSketch::decode(&payloads[0]).unwrap();
    for p in &payloads[1..] {
        global.merge(&MomentsSketch::decode(p).unwrap()).unwrap();
    }
    assert_eq!(global.count(), 80_000);
    assert!(global.query(0.5).unwrap() > 0.0);
    // The whole point (§4.4.3): a Moments payload is ~100 bytes.
    assert!(payloads[0].len() < 200, "payload {}", payloads[0].len());
}

#[test]
fn all_five_sketches_round_trip_bit_identically_on_all_four_datasets() {
    // For every paper distribution (§4.1) and every sketch: decode(encode(s))
    // answers every query with the *same bits* as the original.
    for ds in DataSet::ALL {
        macro_rules! check {
            ($sketch:expr, $ty:ty) => {{
                let mut s = $sketch;
                let mut gen = ds.generator(42, 50);
                for _ in 0..30_000 {
                    s.insert(gen.next_value());
                }
                let restored = <$ty>::decode(&s.encode()).expect("decode");
                assert_eq!(restored.count(), s.count());
                for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
                    // Identical outcome: the same bits on success, the
                    // same error when the estimator (Moments at extreme
                    // ranks) legitimately refuses.
                    match (s.query(q), restored.query(q)) {
                        (Ok(a), Ok(b)) => assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} {:?} q={q}: {a} vs {b}",
                            s.name(),
                            ds
                        ),
                        (Err(a), Err(b)) => {
                            assert_eq!(format!("{a}"), format!("{b}"), "{} {:?} q={q}", s.name(), ds)
                        }
                        (a, b) => panic!("{} {:?} q={q}: {a:?} vs {b:?}", s.name(), ds),
                    }
                }
            }};
        }
        check!(KllSketch::with_seed(350, 1), KllSketch);
        check!(ReqSketch::with_seed(30, RankAccuracy::High, 1), ReqSketch);
        check!(DdSketch::paper_configuration(), DdSketch);
        check!(UddSketch::paper_configuration(), UddSketch);
        check!(MomentsSketch::with_compression(12), MomentsSketch);
    }
}

#[test]
fn randomized_sketches_replay_future_compactions_after_round_trip() {
    // The v2 KLL/REQ payloads carry the compaction-coin state, so a
    // restored sketch and the original stay bit-identical even after
    // inserting *more* data — the property engine recovery relies on.
    macro_rules! check {
        ($sketch:expr, $ty:ty) => {{
            let mut original = $sketch;
            let mut gen = DataSet::Nyt.generator(7, 50);
            for _ in 0..25_000 {
                original.insert(gen.next_value());
            }
            let mut restored = <$ty>::decode(&original.encode()).expect("decode");
            for _ in 0..25_000 {
                let v = gen.next_value();
                original.insert(v);
                restored.insert(v);
            }
            for q in [0.1, 0.5, 0.9, 0.99] {
                assert_eq!(
                    original.query(q).unwrap().to_bits(),
                    restored.query(q).unwrap().to_bits(),
                    "{} q={q}",
                    original.name()
                );
            }
        }};
    }
    check!(KllSketch::with_seed(350, 3), KllSketch);
    check!(ReqSketch::with_seed(30, RankAccuracy::High, 3), ReqSketch);
}

#[test]
fn cross_sketch_payloads_rejected() {
    let mut dd = DdSketch::paper_configuration();
    dd.insert(1.0);
    let bytes = dd.encode();
    assert!(KllSketch::decode(&bytes).is_err());
    assert!(ReqSketch::decode(&bytes).is_err());
    assert!(UddSketch::decode(&bytes).is_err());
    assert!(MomentsSketch::decode(&bytes).is_err());
}

#[test]
fn every_truncation_of_a_valid_payload_is_a_typed_decode_error() {
    macro_rules! check {
        ($sketch:expr, $ty:ty) => {{
            let mut s = $sketch;
            for i in 1..=2_000 {
                s.insert(i as f64);
            }
            let bytes = s.encode();
            for cut in 0..bytes.len() {
                let err: DecodeError = <$ty>::decode(&bytes[..cut])
                    .err()
                    .unwrap_or_else(|| panic!("{} decoded a {cut}-byte prefix", s.name()));
                // Rendering must not panic either (the error carries
                // context for operators, not just a discriminant).
                let _ = err.to_string();
            }
        }};
    }
    check!(KllSketch::with_seed(128, 1), KllSketch);
    check!(ReqSketch::with_seed(12, RankAccuracy::High, 1), ReqSketch);
    check!(DdSketch::paper_configuration(), DdSketch);
    check!(UddSketch::paper_configuration(), UddSketch);
    check!(MomentsSketch::with_compression(12), MomentsSketch);
}

#[test]
fn empty_payload_rejected_everywhere() {
    assert!(DdSketch::decode(&[]).is_err());
    assert!(KllSketch::decode(&[]).is_err());
    assert!(ReqSketch::decode(&[]).is_err());
    assert!(UddSketch::decode(&[]).is_err());
    assert!(MomentsSketch::decode(&[]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decoders must never panic on arbitrary bytes — they either parse or
    /// return an error.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = DdSketch::decode(&bytes);
        let _ = KllSketch::decode(&bytes);
        let _ = ReqSketch::decode(&bytes);
        let _ = UddSketch::decode(&bytes);
        let _ = MomentsSketch::decode(&bytes);
    }

    /// Single-byte corruption of a valid payload must never panic (it may
    /// decode to a different-but-valid sketch or error out) — for every
    /// sketch's decoder.
    #[test]
    fn decoders_never_panic_on_bit_flips(
        flip_at in 0usize..100_000,
        xor in 1u8..=255,
    ) {
        macro_rules! flip_and_decode {
            ($make:expr, $ty:ty) => {{
                let mut s = $make;
                for i in 1..=500 {
                    s.insert(i as f64);
                }
                let mut bytes = s.encode();
                let idx = flip_at % bytes.len();
                bytes[idx] ^= xor;
                let _ = <$ty>::decode(&bytes);
            }};
        }
        flip_and_decode!(DdSketch::paper_configuration(), DdSketch);
        flip_and_decode!(UddSketch::paper_configuration(), UddSketch);
        flip_and_decode!(MomentsSketch::new(8), MomentsSketch);
        flip_and_decode!(KllSketch::with_seed(64, 1), KllSketch);
        flip_and_decode!(ReqSketch::with_seed(8, RankAccuracy::High, 1), ReqSketch);
    }
}

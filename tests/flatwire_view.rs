//! Cross-crate contract tests for the v3 flat wire layout (FORMATS.md):
//! every sketch's [`SketchView`] answers **bit-for-bit** identically to
//! decode-then-query, across all four paper data sets; version sniffing
//! keeps every prior payload generation decodable; and mangled bytes are
//! rejected with a typed error, never a panic.

use quantile_sketches::flatwire::wire_header;
use quantile_sketches::{
    DataSet, DdSketch, KllSketch, MomentsSketch, QuantileSketch, RankAccuracy, ReqSketch,
    SketchSerialize, SketchView, UddSketch,
};

const QS: [f64; 9] = [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
const N: usize = 20_000;

fn fill<S: QuantileSketch>(sketch: &mut S, ds: DataSet, seed: u64) {
    let mut gen = ds.generator(seed, 50);
    for _ in 0..N {
        sketch.insert(gen.next_value());
    }
}

/// The core acceptance criterion: for a filled sketch, queries evaluated
/// over its encoded bytes equal queries on the decoded sketch, bit for
/// bit, and the decoded sketch itself answers exactly like the original.
fn assert_view_matches<S>(mut sketch: S, ds: DataSet, seed: u64)
where
    S: QuantileSketch + SketchSerialize + SketchView,
{
    fill(&mut sketch, ds, seed);
    let bytes = sketch.encode();
    let decoded = S::decode(&bytes).expect("own encoding decodes");
    assert_eq!(
        S::count_from_bytes(&bytes).expect("count from bytes"),
        sketch.count(),
        "{} on {ds:?}: count_from_bytes",
        sketch.name()
    );
    let (lo, hi) = S::bounds_from_bytes(&bytes).expect("bounds from bytes");
    assert!(lo <= hi, "{} on {ds:?}: bounds inverted", sketch.name());
    for q in QS {
        // The Moments max-entropy solver can legitimately fail on some
        // (distribution, q) combinations — the contract is that the view
        // and decode-then-query agree on the *outcome*, bit for bit when
        // it is a value.
        let from_bytes = S::quantile_from_bytes(&bytes, q);
        let from_decoded = decoded.query(q);
        let from_live = sketch.query(q);
        match (&from_bytes, &from_decoded, &from_live) {
            (Ok(b), Ok(d), Ok(l)) => {
                assert_eq!(
                    b.to_bits(),
                    d.to_bits(),
                    "{} on {ds:?} q={q}: view vs decode-then-query",
                    sketch.name()
                );
                assert_eq!(
                    d.to_bits(),
                    l.to_bits(),
                    "{} on {ds:?} q={q}: decode round-trip drift",
                    sketch.name()
                );
            }
            (Err(_), Err(_), Err(_)) => {}
            _ => panic!(
                "{} on {ds:?} q={q}: view and decode paths disagree on success \
                 ({from_bytes:?} vs {from_decoded:?} vs {from_live:?})",
                sketch.name()
            ),
        }
    }
}

#[test]
fn view_matches_decode_then_query_for_all_sketches_and_datasets() {
    for (i, ds) in DataSet::ALL.into_iter().enumerate() {
        let seed = 4_000 + i as u64;
        assert_view_matches(KllSketch::with_seed(350, seed), ds, seed);
        assert_view_matches(ReqSketch::with_seed(30, RankAccuracy::High, seed), ds, seed);
        assert_view_matches(DdSketch::unbounded(0.01), ds, seed);
        assert_view_matches(UddSketch::new(0.001, 256), ds, seed);
        assert_view_matches(MomentsSketch::with_compression(12), ds, seed);
    }
}

/// Version sniffing: current encoders emit the v3 flat layout (Moments
/// deliberately stays at v1 — see FORMATS.md § Compatibility), while the
/// `encode_legacy` constructors emit the previous generation that the
/// same `decode` must keep accepting.
#[test]
fn version_matrix_current_and_legacy() {
    let ds = DataSet::Nyt;

    let mut kll = KllSketch::with_seed(350, 1);
    fill(&mut kll, ds, 1);
    assert_eq!(wire_header(&kll.encode()).unwrap(), (0xA1, 3));
    assert_eq!(wire_header(&kll.encode_legacy()).unwrap(), (0xA1, 2));

    let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 2);
    fill(&mut req, ds, 2);
    assert_eq!(wire_header(&req.encode()).unwrap(), (0xE0, 3));
    assert_eq!(wire_header(&req.encode_legacy()).unwrap(), (0xE0, 2));

    // DDSketch never had a v2: its history is v1 → v3.
    let mut dds = DdSketch::unbounded(0.01);
    fill(&mut dds, ds, 3);
    assert_eq!(wire_header(&dds.encode()).unwrap(), (0xD0, 3));
    assert_eq!(wire_header(&dds.encode_legacy()).unwrap(), (0xD0, 1));

    let mut udds = UddSketch::new(0.001, 256);
    fill(&mut udds, ds, 4);
    assert_eq!(wire_header(&udds.encode()).unwrap(), (0xDD, 3));
    let legacy = udds.encode_legacy();
    let (magic, version) = wire_header(&legacy).unwrap();
    assert_eq!(magic, 0xDD);
    assert!(version == 1 || version == 2, "legacy UDDS is v1 or v2");

    // Moments has nothing to flatten: a handful of f64 power sums. It
    // stays at v1 and its legacy encoding *is* its current encoding.
    let mut moments = MomentsSketch::with_compression(12);
    fill(&mut moments, ds, 5);
    assert_eq!(wire_header(&moments.encode()).unwrap(), (0x30, 1));
    assert_eq!(moments.encode_legacy(), moments.encode());

    // Every legacy payload decodes to a sketch answering identically.
    let back = KllSketch::decode(&kll.encode_legacy()).unwrap();
    assert_eq!(
        back.query(0.5).unwrap().to_bits(),
        kll.query(0.5).unwrap().to_bits()
    );
    let back = UddSketch::decode(&legacy).unwrap();
    assert_eq!(
        back.query(0.5).unwrap().to_bits(),
        udds.query(0.5).unwrap().to_bits()
    );
}

/// Legacy payloads flow through the same [`SketchView`] entry points as
/// v3 — the view sniffs the version and falls back to decode-then-query
/// where it must, with identical answers either way.
#[test]
fn view_accepts_legacy_payloads() {
    let ds = DataSet::Power;
    let mut kll = KllSketch::with_seed(350, 6);
    fill(&mut kll, ds, 6);
    let legacy = kll.encode_legacy();
    for q in QS {
        assert_eq!(
            KllSketch::quantile_from_bytes(&legacy, q).unwrap().to_bits(),
            kll.query(q).unwrap().to_bits()
        );
    }
    assert_eq!(KllSketch::count_from_bytes(&legacy).unwrap(), kll.count());

    let mut dds = DdSketch::unbounded(0.01);
    fill(&mut dds, ds, 7);
    let legacy = dds.encode_legacy();
    for q in QS {
        assert_eq!(
            DdSketch::quantile_from_bytes(&legacy, q).unwrap().to_bits(),
            dds.query(q).unwrap().to_bits()
        );
    }
}

/// Mangled bytes — every truncation and a flipped byte at every offset —
/// must yield `Err`, an alternate-but-valid decode, or a clean query
/// result. Never a panic. (Release builds are exercised by CI; debug
/// builds additionally catch arithmetic overflow on hostile lengths.)
fn assert_mangling_never_panics<S>(mut sketch: S, seed: u64)
where
    S: QuantileSketch + SketchSerialize + SketchView,
{
    fill(&mut sketch, DataSet::Pareto, seed);
    let bytes = sketch.encode();
    for cut in 0..bytes.len() {
        let _ = S::quantile_from_bytes(&bytes[..cut], 0.5);
        let _ = S::count_from_bytes(&bytes[..cut]);
        let _ = S::bounds_from_bytes(&bytes[..cut]);
        let _ = S::decode(&bytes[..cut]);
    }
    let stride = (bytes.len() / 256).max(1);
    for i in (0..bytes.len()).step_by(stride) {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0xA5;
        let _ = S::quantile_from_bytes(&flipped, 0.5);
        let _ = S::count_from_bytes(&flipped);
        let _ = S::bounds_from_bytes(&flipped);
        let _ = S::decode(&flipped);
    }
}

#[test]
fn corruption_never_panics_any_sketch() {
    assert_mangling_never_panics(KllSketch::with_seed(350, 11), 11);
    assert_mangling_never_panics(ReqSketch::with_seed(30, RankAccuracy::High, 12), 12);
    assert_mangling_never_panics(DdSketch::unbounded(0.01), 13);
    assert_mangling_never_panics(UddSketch::new(0.001, 256), 14);
    assert_mangling_never_panics(MomentsSketch::with_compression(12), 15);
}

//! The zero-allocation gate: proves the server data plane's steady-state
//! claim with a counting `#[global_allocator]` instead of asserting it in
//! prose.
//!
//! This binary installs [`CountingAlloc`] and drives
//! [`ServerCore::serve_frame`] directly on the test thread. After a
//! warmup pass (which grows the reusable buffers and fills the engine's
//! batch pool), every served ingest frame — single-op and pipelined
//! batch envelope — must perform **zero** heap allocations on the
//! serving thread. `ci/check.sh` runs this test on every change; a new
//! allocation on the hot path fails it with the exact frame index.
//!
//! The engine is drained between measured frames so each pooled batch
//! has returned to the free list before the next `serve_frame` asks for
//! one (workers drop their batch *before* `mark_done`, so a completed
//! drain implies the pool got its buffers back).

use qsketch_core::alloccount::{self, CountingAlloc};
use qsketch_ddsketch::DdSketch;
use qsketch_server::protocol::{batch_header_into, push_batch_op, F64s, RequestView};
use qsketch_server::server::{FrameOutcome, ServerCore};
use qsketch_streamsim::builder::EngineBuilder;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP_FRAMES: usize = 32;
const MEASURED_FRAMES: usize = 64;
const BATCH_VALUES: usize = 512;

fn core() -> ServerCore<DdSketch> {
    let engine = EngineBuilder::keyed(2)
        .spawn(|| DdSketch::unbounded(0.01))
        .expect("spawn keyed engine");
    ServerCore::new(engine, false)
}

fn ingest_payload(tenant: &str, key: &str, values: &[f64]) -> Vec<u8> {
    let mut payload = Vec::new();
    RequestView::Ingest {
        tenant,
        key,
        values: F64s::Slice(values),
    }
    .encode_into(&mut payload);
    payload
}

/// Single-op ingest frames allocate nothing after warmup.
#[test]
fn ingest_frame_is_zero_alloc_after_warmup() {
    let core = core();
    let values: Vec<f64> = (0..BATCH_VALUES).map(|i| i as f64).collect();
    let payload = ingest_payload("acme", "checkout.latency", &values);
    let mut out = Vec::new();
    let mut scratch = Vec::new();

    for _ in 0..WARMUP_FRAMES {
        out.clear();
        assert_eq!(
            core.serve_frame(&payload, &mut out, &mut scratch),
            FrameOutcome::Continue
        );
        core.engine().drain();
    }

    for frame in 0..MEASURED_FRAMES {
        out.clear();
        let before = alloccount::thread_allocs();
        let outcome = core.serve_frame(&payload, &mut out, &mut scratch);
        let allocs = alloccount::thread_allocs() - before;
        assert_eq!(outcome, FrameOutcome::Continue);
        assert_eq!(
            allocs, 0,
            "steady-state ingest frame {frame} performed {allocs} heap \
             allocation(s); the data plane must serve warmed ingest frames \
             without touching the allocator"
        );
        assert!(!out.is_empty(), "frame {frame} produced no response bytes");
        core.engine().drain();
    }
}

/// A pipelined batch envelope of ingest ops allocates nothing after
/// warmup either — the per-op scratch buffer and the response envelope
/// reuse their capacity.
#[test]
fn batch_envelope_is_zero_alloc_after_warmup() {
    const OPS: usize = 8;
    let core = core();
    let values: Vec<f64> = (0..BATCH_VALUES).map(|i| i as f64 * 0.5).collect();

    let mut inner = Vec::new();
    RequestView::Ingest {
        tenant: "acme",
        key: "checkout.latency",
        values: F64s::Slice(&values),
    }
    .encode_into(&mut inner);
    let mut payload = Vec::new();
    batch_header_into(OPS, false, &mut payload);
    for _ in 0..OPS {
        push_batch_op(&inner, &mut payload);
    }

    let mut out = Vec::new();
    let mut scratch = Vec::new();
    for _ in 0..WARMUP_FRAMES {
        out.clear();
        assert_eq!(
            core.serve_frame(&payload, &mut out, &mut scratch),
            FrameOutcome::Continue
        );
        core.engine().drain();
    }

    for frame in 0..MEASURED_FRAMES {
        out.clear();
        let before = alloccount::thread_allocs();
        let outcome = core.serve_frame(&payload, &mut out, &mut scratch);
        let allocs = alloccount::thread_allocs() - before;
        assert_eq!(outcome, FrameOutcome::Continue);
        assert_eq!(
            allocs, 0,
            "steady-state batch envelope frame {frame} ({OPS} ingest ops) \
             performed {allocs} heap allocation(s)"
        );
        core.engine().drain();
    }
}

/// Control-plane sanity: a warmed `Ping` frame is also allocation-free
/// (unit request, unit response), so the cork/encode plumbing itself is
/// clean.
#[test]
fn ping_frame_is_zero_alloc_after_warmup() {
    let core = core();
    let mut payload = Vec::new();
    RequestView::Ping.encode_into(&mut payload);
    let mut out = Vec::new();
    let mut scratch = Vec::new();

    for _ in 0..WARMUP_FRAMES {
        out.clear();
        core.serve_frame(&payload, &mut out, &mut scratch);
    }
    for frame in 0..MEASURED_FRAMES {
        out.clear();
        let before = alloccount::thread_allocs();
        core.serve_frame(&payload, &mut out, &mut scratch);
        let allocs = alloccount::thread_allocs() - before;
        assert_eq!(allocs, 0, "warmed ping frame {frame} allocated");
    }
}

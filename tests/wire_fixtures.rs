//! Back-compat canary: the committed golden fixtures under
//! `tests/fixtures/wire/` are payloads of the **previous** format
//! generation (v1/v2 sketches, checkpoint envelopes embedding them).
//! This test decodes them with the current readers and compares the
//! answers bit-for-bit against `expected.txt`, which was recorded when
//! the fixtures were cut.
//!
//! A failure here means a format compatibility break: either a legacy
//! decoder changed behaviour, or the fixtures were regenerated with
//! drifted `encode_legacy` implementations (see
//! `crates/bench/src/bin/make_wire_fixtures.rs` and FORMATS.md
//! § Compatibility).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use quantile_sketches::streamsim::checkpoint::{RegistryCheckpoint, ShardCheckpoint};
use quantile_sketches::{
    DdSketch, KllSketch, MomentsSketch, QuantileSketch, ReqSketch, SketchSerialize, SketchView,
    UddSketch,
};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wire")
}

fn load(name: &str) -> Vec<u8> {
    std::fs::read(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("committed fixture {name} is readable: {e}"))
}

/// `expected.txt` line: `<file> count=<n> q<q>=<bits:016x> ...`
struct Expected {
    count: u64,
    quantiles: Vec<(f64, u64)>,
}

fn expectations() -> HashMap<String, Expected> {
    let text = std::fs::read_to_string(fixture_dir().join("expected.txt"))
        .expect("expected.txt is readable");
    let mut out = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let mut fields = line.split_whitespace();
        let name = fields.next().expect("fixture name").to_string();
        let count = fields
            .next()
            .and_then(|f| f.strip_prefix("count="))
            .and_then(|v| v.parse().ok())
            .expect("count field");
        let quantiles = fields
            .map(|f| {
                let (q, bits) = f
                    .strip_prefix('q')
                    .and_then(|f| f.split_once('='))
                    .expect("q<q>=<bits> field");
                (
                    q.parse().expect("quantile parses"),
                    u64::from_str_radix(bits, 16).expect("bits parse"),
                )
            })
            .collect();
        out.insert(name, Expected { count, quantiles });
    }
    assert_eq!(out.len(), 6, "expected.txt covers all six sketch fixtures");
    out
}

/// Decode one legacy fixture and check every pinned answer, through both
/// the decode path and the zero-copy view path.
fn check_fixture<S>(name: &str, expected: &Expected)
where
    S: QuantileSketch + SketchSerialize + SketchView,
{
    let bytes = load(name);
    let sketch = S::decode(&bytes).unwrap_or_else(|e| panic!("{name} decodes: {e}"));
    assert_eq!(sketch.count(), expected.count, "{name}: count");
    assert_eq!(
        S::count_from_bytes(&bytes).expect("count from bytes"),
        expected.count,
        "{name}: count_from_bytes"
    );
    for &(q, bits) in &expected.quantiles {
        assert_eq!(
            sketch.query(q).expect("fixture answers").to_bits(),
            bits,
            "{name}: decode-then-query q={q}"
        );
        assert_eq!(
            S::quantile_from_bytes(&bytes, q)
                .expect("view answers")
                .to_bits(),
            bits,
            "{name}: quantile_from_bytes q={q}"
        );
    }
}

#[test]
fn legacy_sketch_fixtures_answer_bit_identically() {
    let expected = expectations();
    check_fixture::<KllSketch>("kll.bin", &expected["kll.bin"]);
    check_fixture::<ReqSketch>("req.bin", &expected["req.bin"]);
    check_fixture::<DdSketch>("dds.bin", &expected["dds.bin"]);
    check_fixture::<UddSketch>("udds.bin", &expected["udds.bin"]);
    check_fixture::<UddSketch>("udds_fused.bin", &expected["udds_fused.bin"]);
    check_fixture::<MomentsSketch>("moments.bin", &expected["moments.bin"]);
}

#[test]
fn legacy_checkpoint_envelope_still_decodes() {
    let expected = expectations();
    let ckpt = ShardCheckpoint::decode(&load("checkpoint.ckpt")).expect("0xC5 envelope decodes");
    assert_eq!(ckpt.shard, 1);
    assert_eq!(ckpt.num_shards, 4);
    assert_eq!(ckpt.batch_size, 256);
    assert_eq!(ckpt.values_done, 42_000);
    // The embedded payload is the KLL fixture: same pinned answers.
    let sketch: KllSketch = ckpt.sketch().expect("embedded sketch decodes");
    let exp = &expected["kll.bin"];
    assert_eq!(sketch.count(), exp.count);
    for &(q, bits) in &exp.quantiles {
        assert_eq!(sketch.query(q).unwrap().to_bits(), bits, "embedded KLL q={q}");
    }
}

#[test]
fn legacy_registry_envelope_still_decodes() {
    let expected = expectations();
    let reg = RegistryCheckpoint::decode(&load("registry.ckpt")).expect("0xC6 envelope decodes");
    assert_eq!(reg.shard, 0);
    assert_eq!(reg.num_shards, 2);
    assert_eq!(reg.values_done, 120_000);
    assert_eq!(reg.entries.len(), 2);
    assert_eq!(reg.entries[0].tenant, "acme");
    assert_eq!(reg.entries[0].key, "checkout.latency");
    let dds = DdSketch::decode(&reg.entries[0].payload).expect("DDS payload decodes");
    let exp = &expected["dds.bin"];
    for &(q, bits) in &exp.quantiles {
        assert_eq!(dds.query(q).unwrap().to_bits(), bits, "registry DDS q={q}");
    }
    assert_eq!(reg.entries[1].tenant, "globex");
    assert_eq!(reg.entries[1].key, "api.p99");
    let udds = UddSketch::decode(&reg.entries[1].payload).expect("UDDS payload decodes");
    let exp = &expected["udds.bin"];
    for &(q, bits) in &exp.quantiles {
        assert_eq!(udds.query(q).unwrap().to_bits(), bits, "registry UDDS q={q}");
    }
}

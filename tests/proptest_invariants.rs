//! Property-based invariants across all sketches (proptest).

use proptest::prelude::*;
use quantile_sketches::{
    DdSketch, GkSketch, KllSketch, MomentsSketch, QuantileSketch, RankAccuracy, ReqSketch,
    TDigest, UddSketch,
};

/// Streams of positive, finite, non-pathological values.
fn value_stream() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..1e9, 16..400)
}

/// Run a closure against every sketch type, boxed behind the trait.
fn all_sketches() -> Vec<Box<dyn QuantileSketch>> {
    vec![
        Box::new(KllSketch::with_seed(128, 7)),
        Box::new(MomentsSketch::with_compression(10)),
        Box::new(DdSketch::unbounded(0.01)),
        Box::new(UddSketch::new(0.01, 1024)),
        Box::new(ReqSketch::with_seed(12, RankAccuracy::High, 7)),
        Box::new(GkSketch::new(0.01)),
        Box::new(TDigest::new(100.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn count_matches_inserts(values in value_stream()) {
        for mut s in all_sketches() {
            for &v in &values {
                s.insert(v);
            }
            prop_assert_eq!(s.count(), values.len() as u64, "{}", s.name());
        }
    }

    #[test]
    fn estimates_within_min_max(values in value_stream()) {
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        let hi = values.iter().cloned().fold(f64::MIN, f64::max);
        for mut s in all_sketches() {
            for &v in &values {
                s.insert(v);
            }
            for q in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
                if let Ok(est) = s.query(q) {
                    // Histogram sketches answer with bucket midpoints: allow
                    // their alpha-slack around the true extremes.
                    prop_assert!(
                        est >= lo * 0.98 && est <= hi * 1.02,
                        "{}: q={q} est {est} outside [{lo}, {hi}]",
                        s.name()
                    );
                }
            }
        }
    }

    #[test]
    fn quantiles_monotone_in_q(values in value_stream()) {
        for mut s in all_sketches() {
            for &v in &values {
                s.insert(v);
            }
            let mut prev = f64::NEG_INFINITY;
            for i in 1..=20 {
                let q = i as f64 / 20.0;
                if let Ok(est) = s.query(q) {
                    // Moments' maxent fit can wiggle by a hair; everything
                    // else must be exactly monotone.
                    let slack = if s.name() == "Moments" { 1e-6 * est.abs().max(1.0) } else { 0.0 };
                    prop_assert!(
                        est >= prev - slack,
                        "{}: quantiles not monotone at q={q} ({est} < {prev})",
                        s.name()
                    );
                    prev = est;
                }
            }
        }
    }

    #[test]
    fn ddsketch_guarantee_holds_on_arbitrary_positive_data(values in value_stream()) {
        let mut sketch = DdSketch::unbounded(0.01);
        let mut sorted = values.clone();
        for &v in &values {
            sketch.insert(v);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = sketch.query(q).unwrap();
            prop_assert!(
                ((est - truth) / truth).abs() <= 0.01 + 1e-9,
                "q={q}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn sampling_sketches_return_stream_values(values in value_stream()) {
        let mut kll = KllSketch::with_seed(64, 3);
        let mut req = ReqSketch::with_seed(8, RankAccuracy::High, 3);
        for &v in &values {
            kll.insert(v);
            req.insert(v);
        }
        for q in [0.2, 0.5, 0.8, 1.0] {
            let k = kll.query(q).unwrap();
            prop_assert!(values.contains(&k), "KLL estimate {k} not in stream");
            let r = req.query(q).unwrap();
            prop_assert!(values.contains(&r), "REQ estimate {r} not in stream");
        }
    }

    #[test]
    fn merge_conserves_count(
        a in value_stream(),
        b in value_stream(),
    ) {
        use quantile_sketches::MergeableSketch;
        macro_rules! check {
            ($make:expr) => {{
                let mut x = $make;
                let mut y = $make;
                for &v in &a { x.insert(v); }
                for &v in &b { y.insert(v); }
                x.merge(&y).expect("merge");
                prop_assert_eq!(x.count(), (a.len() + b.len()) as u64);
            }};
        }
        check!(KllSketch::with_seed(64, 5));
        check!(DdSketch::unbounded(0.02));
        check!(UddSketch::new(0.02, 512));
        check!(ReqSketch::with_seed(8, RankAccuracy::High, 5));
        check!(MomentsSketch::with_compression(8));
        check!(TDigest::new(100.0));
    }

    #[test]
    fn uddsketch_deterioration_law(alpha0 in 1e-6f64..0.05) {
        // alpha' = 2a/(1+a^2) == gamma squaring, for arbitrary alpha.
        let gamma = (1.0 + alpha0) / (1.0 - alpha0);
        let gamma2 = gamma * gamma;
        let alpha_from_gamma = (gamma2 - 1.0) / (gamma2 + 1.0);
        let alpha_from_law = 2.0 * alpha0 / (1.0 + alpha0 * alpha0);
        prop_assert!((alpha_from_gamma - alpha_from_law).abs() < 1e-12);
    }

    #[test]
    fn exact_oracle_matches_sort_definition(values in value_stream(), qi in 1usize..=100) {
        let q = qi as f64 / 100.0;
        let mut oracle = quantile_sketches::ExactQuantiles::new();
        oracle.extend(values.iter().copied());
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(oracle.query(q).unwrap(), sorted[rank - 1]);
    }

    #[test]
    fn gk_rank_error_bounded(values in proptest::collection::vec(0.001f64..1e6, 200..2000)) {
        let mut gk = GkSketch::new(0.02);
        for &v in &values {
            gk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.25, 0.5, 0.75] {
            let est = gk.query(q).unwrap();
            let est_rank = sorted.partition_point(|&v| v <= est) as f64 / sorted.len() as f64;
            prop_assert!((est_rank - q).abs() <= 0.05, "q={q} est rank {est_rank}");
        }
    }
}

//! End-to-end pipeline tests: data generators → event source → delays →
//! tumbling windows → sketches, i.e. the paper's §4.2/§4.6 setup in
//! miniature.

use quantile_sketches::streamsim::harness::{
    run_accuracy, run_accuracy_instrumented, AccuracyConfig,
};
use quantile_sketches::{DataSet, DdSketch, KllSketch, MetricsRegistry, NetworkDelay, UddSketch};

fn tiny_cfg(delay: NetworkDelay) -> AccuracyConfig {
    AccuracyConfig {
        events_per_sec: 1_000,
        window_secs: 2,
        num_windows: 5,
        discard_first: true,
        delay,
        quantiles: vec![0.5, 0.9, 0.95, 0.99],
        watermark_lag_ms: 0,
    }
}

#[test]
fn windows_hold_the_ddsketch_guarantee_on_every_dataset() {
    for ds in DataSet::ALL {
        let summary = run_accuracy(
            DdSketch::paper_configuration,
            ds.generator(5, 50),
            &tiny_cfg(NetworkDelay::None),
            5,
        );
        assert_eq!(summary.windows.len(), 4, "{}", ds.label());
        for w in &summary.windows {
            for &(q, err) in &w.errors {
                assert!(
                    err <= 0.01 + 1e-9,
                    "{} window {} q={q}: {err}",
                    ds.label(),
                    w.window_index
                );
            }
        }
    }
}

#[test]
fn late_drops_scale_with_mean_delay() {
    // Heavier delays => more late drops (monotone in the mean).
    let mut losses = Vec::new();
    for mean_ms in [10.0, 100.0, 400.0] {
        let summary = run_accuracy(
            DdSketch::paper_configuration,
            DataSet::Uniform.generator(9, 50),
            &tiny_cfg(NetworkDelay::ExponentialMs(mean_ms)),
            9,
        );
        losses.push(summary.loss_fraction());
    }
    assert!(losses[0] < losses[1] && losses[1] < losses[2], "{losses:?}");
    assert!(losses[0] > 0.0);
}

#[test]
fn paper_late_loss_regime() {
    // The §4.6 configuration shape: exp(150 ms) delays against 20 s
    // windows lose a small, low-single-digit percentage of events.
    let cfg = AccuracyConfig {
        events_per_sec: 500,
        window_secs: 20,
        num_windows: 3,
        discard_first: true,
        delay: NetworkDelay::ExponentialMs(150.0),
        quantiles: vec![0.5],
        watermark_lag_ms: 0,
    };
    let summary = run_accuracy(
        DdSketch::paper_configuration,
        DataSet::Nyt.generator(11, 50),
        &cfg,
        11,
    );
    let loss = summary.loss_fraction();
    assert!(loss > 0.0 && loss < 0.05, "loss {loss}");
}

#[test]
fn accuracy_survives_late_drops() {
    // §4.6's core finding: the error with late drops stays in the same
    // regime as without.
    let clean = run_accuracy(
        UddSketch::paper_configuration,
        DataSet::Power.generator(13, 50),
        &tiny_cfg(NetworkDelay::None),
        13,
    );
    let late = run_accuracy(
        UddSketch::paper_configuration,
        DataSet::Power.generator(13, 50),
        &tiny_cfg(NetworkDelay::ExponentialMs(150.0)),
        13,
    );
    for q in [0.5, 0.95, 0.99] {
        let c = clean.mean_error(q);
        let l = late.mean_error(q);
        assert!(
            l <= c + 0.02,
            "q={q}: late error {l} blew past clean error {c}"
        );
    }
}

#[test]
fn randomized_sketches_work_in_windows() {
    let mut seed_cursor = 100;
    let summary = run_accuracy(
        move || {
            seed_cursor += 1;
            KllSketch::with_seed(350, seed_cursor)
        },
        DataSet::Uniform.generator(15, 50),
        &tiny_cfg(NetworkDelay::None),
        15,
    );
    for w in &summary.windows {
        assert_eq!(w.count, 2_000);
        for &(q, err) in &w.errors {
            assert!(err < 0.05, "q={q}: {err}");
        }
    }
}

#[test]
fn pipeline_metrics_agree_with_run_summary() {
    // The observability layer must report exactly what the engine did:
    // every event counted, the late-drop counter equal to the events the
    // summary says were dropped, and every admitted event inserted into
    // exactly one window sketch.
    let registry = MetricsRegistry::new();
    let cfg = tiny_cfg(NetworkDelay::ExponentialMs(150.0));
    let summary = run_accuracy_instrumented(
        DdSketch::paper_configuration,
        DataSet::Nyt.generator(21, 50),
        &cfg,
        21,
        &registry,
    );
    assert!(summary.dropped_late > 0, "config should drop some events");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("pipeline.events"), Some(summary.total_events));
    assert_eq!(
        snap.counter("pipeline.late_dropped"),
        Some(summary.dropped_late)
    );
    assert_eq!(
        snap.counter("sketch.DDS.inserts"),
        Some(summary.total_events - summary.dropped_late)
    );
    // One batched quantile query per measured window.
    assert_eq!(
        snap.counter("sketch.DDS.queries"),
        Some(summary.windows.len() as u64)
    );
    let lag = snap.histogram("pipeline.watermark_lag_us").unwrap();
    assert_eq!(lag.count, summary.total_events);
    let emit = snap.histogram("pipeline.emit_latency_us").unwrap();
    assert!(emit.count > 0, "watermark-fired windows record emit latency");
}

#[test]
fn window_counts_add_up() {
    let cfg = tiny_cfg(NetworkDelay::ExponentialMs(50.0));
    let summary = run_accuracy(
        DdSketch::paper_configuration,
        DataSet::Uniform.generator(17, 50),
        &cfg,
        17,
    );
    let window_total: u64 = summary.windows.iter().map(|w| w.count).sum();
    // measured windows + discarded first window + dropped = total
    assert!(window_total + summary.dropped_late <= summary.total_events);
    assert!(window_total > 0);
    assert_eq!(summary.total_events, cfg.total_events());
}

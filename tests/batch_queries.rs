//! `query_many` batch queries: must agree with per-quantile `query` for
//! every sketch, and actually save work for the batch-optimised ones.

use quantile_sketches::{
    DataSet, DdSketch, GkSketch, KllSketch, MomentsSketch, QuantileSketch, RankAccuracy,
    ReqSketch, TDigest, UddSketch, ValueStream,
};

const QS: [f64; 8] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99];

fn sketches_filled(n: usize) -> Vec<Box<dyn QuantileSketch>> {
    let values = DataSet::Nyt.generator(77, 50).take_vec(n);
    let mut out: Vec<Box<dyn QuantileSketch>> = vec![
        Box::new(KllSketch::with_seed(350, 1)),
        Box::new(ReqSketch::with_seed(30, RankAccuracy::High, 1)),
        Box::new(DdSketch::paper_configuration()),
        Box::new(UddSketch::paper_configuration()),
        Box::new(MomentsSketch::paper_configuration()),
        Box::new(GkSketch::new(0.01)),
        Box::new(TDigest::new(200.0)),
    ];
    for s in &mut out {
        for &v in &values {
            s.insert(v);
        }
    }
    out
}

#[test]
fn batch_agrees_with_individual_queries() {
    for sketch in sketches_filled(30_000) {
        let batch = sketch.query_many(&QS).expect("batch query");
        assert_eq!(batch.len(), QS.len());
        for (&q, &b) in QS.iter().zip(&batch) {
            let single = sketch.query(q).expect("single query");
            assert_eq!(b, single, "{} q={q}", sketch.name());
        }
    }
}

#[test]
fn batch_rejects_invalid_quantile_atomically() {
    for sketch in sketches_filled(1_000) {
        assert!(
            sketch.query_many(&[0.5, 1.5]).is_err(),
            "{} accepted an invalid batch",
            sketch.name()
        );
    }
}

#[test]
fn batch_on_empty_sketch_errors() {
    let empty: Vec<Box<dyn QuantileSketch>> = vec![
        Box::new(KllSketch::with_seed(64, 1)),
        Box::new(ReqSketch::with_seed(8, RankAccuracy::High, 1)),
        Box::new(DdSketch::unbounded(0.01)),
        Box::new(MomentsSketch::new(8)),
    ];
    for s in empty {
        assert!(s.query_many(&QS).is_err(), "{}", s.name());
    }
}

#[test]
fn batch_results_monotone() {
    for sketch in sketches_filled(30_000) {
        let batch = sketch.query_many(&QS).expect("batch query");
        for pair in batch.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "{}: batch results must be monotone ({pair:?})",
                sketch.name()
            );
        }
    }
}

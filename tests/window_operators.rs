//! Integration tests for the window-operator suite: sliding and session
//! windows and partitioned aggregation carrying real sketches, fed by the
//! real event source and delay models.

use quantile_sketches::streamsim::session::Mergeable;
use quantile_sketches::streamsim::window::WindowState;
use quantile_sketches::{
    DataSet, DdSketch, Event, EventSource, MergeableSketch, NetworkDelay, PartitionedWindow,
    QuantileSketch, SessionWindows, SlidingWindows, TumblingWindows, UddSketch,
};

struct SketchState(DdSketch);

impl WindowState for SketchState {
    fn observe(&mut self, value: f64) {
        self.0.insert(value);
    }
}

impl Mergeable for SketchState {
    fn merge_from(&mut self, other: Self) {
        self.0.merge(&other.0).expect("same gamma");
    }
}

fn new_state() -> SketchState {
    SketchState(DdSketch::unbounded(0.01))
}

#[test]
fn sliding_windows_answer_quantiles_per_slide() {
    // 2 s windows sliding by 1 s over 10 s of NYT fares.
    let mut src = EventSource::new(DataSet::Nyt.generator(3, 50), 2_000, NetworkDelay::None, 3);
    let mut op = SlidingWindows::new(2_000_000, 1_000_000, new_state);
    for e in src.take_events(20_000) {
        op.observe(e);
    }
    let fired = op.close();
    assert!(fired.results.len() >= 9, "windows: {}", fired.results.len());
    // Interior windows hold two slides' worth of events.
    let full: Vec<_> = fired
        .results
        .iter()
        .filter(|w| w.start_us >= 1_000_000 && w.end_us <= 9_000_000)
        .collect();
    assert!(!full.is_empty());
    for w in full {
        assert_eq!(w.count, 4_000, "window at {}", w.start_us);
        let median = w.items.0.query(0.5).unwrap();
        assert!((5.0..15.0).contains(&median), "NYT median {median}");
    }
}

#[test]
fn consecutive_sliding_windows_share_half_their_events() {
    let mut src = EventSource::new(
        DataSet::Uniform.generator(5, 50),
        1_000,
        NetworkDelay::None,
        5,
    );
    let mut op = SlidingWindows::new(2_000_000, 1_000_000, Vec::new);
    for e in src.take_events(10_000) {
        op.observe(e);
    }
    let fired = op.close();
    for pair in fired.results.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.end_us <= b.start_us || a.count != 2_000 || b.count != 2_000 {
            continue; // not overlapping, or a partial edge window
        }
        // The second half of `a` is the first half of `b`.
        let shared_a: Vec<f64> = a.items[a.items.len() / 2..].to_vec();
        let shared_b: Vec<f64> = b.items[..b.items.len() / 2].to_vec();
        assert_eq!(shared_a, shared_b, "overlap mismatch at {}", a.start_us);
    }
}

#[test]
fn session_windows_with_sketches_follow_activity() {
    let mut op = SessionWindows::new(1_000_000, new_state);
    // Two bursts 5 s apart.
    for burst_start in [0u64, 5_000_000] {
        for i in 0..1_000u64 {
            let t = burst_start + i * 500; // 0.5 ms apart
            let v = if burst_start == 0 { 10.0 } else { 100.0 };
            op.observe(Event::new(v + (i % 10) as f64, t, 0));
        }
    }
    let fired = op.close();
    assert_eq!(fired.results.len(), 2);
    let m0 = fired.results[0].items.0.query(0.5).unwrap();
    let m1 = fired.results[1].items.0.query(0.5).unwrap();
    assert!(m0 < 20.0 && m1 > 90.0, "session medians {m0} / {m1}");
}

#[test]
fn partitioned_windows_match_single_sketch_guarantee() {
    // Partitioned tumbling aggregation over a delayed stream: merged
    // per-window results must still honour the DDSketch guarantee.
    let mut src = EventSource::new(
        DataSet::Power.generator(7, 50),
        2_000,
        NetworkDelay::ExponentialMs(50.0),
        7,
    );
    let mut op = TumblingWindows::new(2_000_000, || {
        PartitionedWindow::new(4, || DdSketch::unbounded(0.01))
    });
    for e in src.take_events(20_000) {
        op.observe(e);
    }
    let fired = op.close();
    for w in fired.results {
        let count = w.count;
        if count == 0 {
            continue;
        }
        let merged = w.items.merge_partitions().unwrap();
        assert_eq!(merged.count(), count);
        let p95 = merged.query(0.95).unwrap();
        assert!((0.0..=11.0).contains(&p95), "power p95 {p95}");
    }
}

#[test]
fn udd_sketch_as_session_state() {
    struct Udd(UddSketch);
    impl WindowState for Udd {
        fn observe(&mut self, value: f64) {
            self.0.insert(value);
        }
    }
    impl Mergeable for Udd {
        fn merge_from(&mut self, other: Self) {
            self.0.merge(&other.0).expect("same alpha");
        }
    }
    let mut op = SessionWindows::with_watermark_lag(500_000, 1_000_000, || {
        Udd(UddSketch::paper_configuration())
    });
    for i in 0..5_000u64 {
        op.observe(Event::new((i % 100) as f64 + 1.0, i * 100, 0));
    }
    let fired = op.close();
    assert_eq!(fired.results.len(), 1, "continuous activity = one session");
    let s = &fired.results[0].items.0;
    assert_eq!(s.count(), 5_000);
    let median = s.query(0.5).unwrap();
    assert!((45.0..56.0).contains(&median), "median {median}");
}

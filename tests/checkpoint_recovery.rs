//! End-to-end checkpoint/recovery through the facade crate: a sharded
//! engine checkpointing to disk, a fault-injected worker death
//! mid-stream, and a recovery + replay that lands bit-identical to an
//! uninterrupted run — the §2.4 fault-tolerance story (Flink's
//! checkpoint barrier) on top of the sketch wire formats.

use quantile_sketches::{
    CheckpointConfig, DataSet, EngineBuilder, EngineError, KllSketch, QuantileSketch, ValueStream,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qsketch-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The engine factories must be identical across runs: same parameters,
/// same per-shard seeds, assigned in shard order.
fn factory() -> impl FnMut() -> KllSketch {
    let mut shard = 0u64;
    move || {
        shard += 1;
        KllSketch::with_seed(200, 0xFACADE ^ shard)
    }
}

fn paper_stream(n: usize) -> Vec<f64> {
    let mut gen = DataSet::Pareto.generator(11, 50);
    (0..n).map(|_| gen.next_value()).collect()
}

#[test]
fn kill_one_shard_then_recover_bit_identical() {
    let n = 40_000;
    let input = paper_stream(n);

    // Uninterrupted reference run.
    let mut reference = EngineBuilder::sharded(4)
        .batch_size(128)
        .spawn(factory())
        .unwrap();
    reference.extend(input.iter().copied());
    let reference = reference.finish().unwrap();
    assert_eq!(reference.count(), n as u64);

    // Checkpointing run in which shard 2 dies after 20 batches.
    let dir = temp_dir("kill-recover");
    let ckpt = CheckpointConfig::new(&dir, 2_000);
    let mut crashed = EngineBuilder::sharded(4)
        .batch_size(128)
        .fault_injection(2, 20)
        .checkpoints(ckpt.clone())
        .spawn(factory())
        .unwrap();
    crashed.extend(input.iter().copied());
    crashed.drain();
    assert_eq!(crashed.failed_shards(), vec![2]);
    drop(crashed);

    // Recover from the surviving checkpoints and replay the input from
    // the start; the router skips everything each shard already counted.
    let mut recovered = EngineBuilder::sharded(4)
        .batch_size(128)
        .checkpoints(ckpt)
        .recover(factory())
        .unwrap();
    recovered.extend(input.iter().copied());
    let recovered = recovered.finish().unwrap();

    assert_eq!(recovered.count(), reference.count());
    for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(
            recovered.query(q).unwrap().to_bits(),
            reference.query(q).unwrap().to_bits(),
            "q={q}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_refuses_a_resharded_topology() {
    let dir = temp_dir("reshard");
    let ckpt = CheckpointConfig::new(&dir, 500);
    let mut engine = EngineBuilder::sharded(2)
        .batch_size(64)
        .checkpoints(ckpt.clone())
        .spawn(factory())
        .unwrap();
    engine.extend(paper_stream(5_000));
    engine.drain();
    drop(engine);

    let err = EngineBuilder::sharded(4)
        .batch_size(64)
        .checkpoints(ckpt)
        .recover(factory())
        .err()
        .expect("resharded recovery must be refused");
    assert!(matches!(err, EngineError::TopologyMismatch(_)), "{err:?}");
    assert!(err.to_string().contains("shards"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn type_erased_bench_sketches_survive_the_envelope() {
    // The bench harness's AnySketch rides the same wire format through a
    // type-erased envelope, so experiment state is checkpointable too.
    use qsketch_bench::{AnySketch, SketchSpec};
    use quantile_sketches::SketchSerialize;

    for spec in ["kll:350", "req:30", "dds:0.02", "udds:0.01:1024", "moments:12:compressed"] {
        let spec: SketchSpec = spec.parse().unwrap();
        let mut sketch = spec.build(99);
        let mut gen = DataSet::Nyt.generator(5, 50);
        for _ in 0..10_000 {
            sketch.insert(gen.next_value());
        }
        let restored = AnySketch::decode(&sketch.encode()).unwrap();
        assert_eq!(restored.count(), sketch.count());
        assert_eq!(restored.spec(), sketch.spec());
        for q in [0.25, 0.5, 0.99] {
            assert_eq!(
                restored.query(q).unwrap().to_bits(),
                sketch.query(q).unwrap().to_bits(),
                "{spec} q={q}"
            );
        }
    }
}

//! The old constructor surface must keep *working* for one release —
//! deprecation means warnings, not breakage. This file opts into the
//! deprecated API wholesale and exercises every shim end-to-end; CI
//! compiles it as part of the suite, so a shim that rots into a hard
//! error fails the build here first.

#![allow(deprecated)]

use quantile_sketches::streamsim::keyed_engine::{KeyedEngine, KeyedEngineConfig, TenantQuota};
use quantile_sketches::{
    CheckpointConfig, EngineConfig, KllSketch, QuantileSketch, ShardedEngine,
};

fn kll() -> KllSketch {
    KllSketch::with_seed(200, 42)
}

#[test]
fn sharded_spawn_and_config_chain_still_work() {
    let config = EngineConfig::new(2).with_batch_size(64).with_queue_capacity(4);
    let mut engine = ShardedEngine::spawn(config, kll);
    engine.extend((1..=1_000).map(f64::from));
    let merged = engine.finish().unwrap();
    assert_eq!(merged.count(), 1_000);
}

#[test]
fn sharded_checkpoint_shims_still_roundtrip() {
    let dir = std::env::temp_dir().join(format!("qsketch-shim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = CheckpointConfig::new(&dir, 100);

    let mut engine =
        ShardedEngine::spawn_with_checkpoints(EngineConfig::new(2), kll, ckpt.clone()).unwrap();
    engine.extend((1..=2_000).map(f64::from));
    engine.drain();
    drop(engine);

    let mut recovered = ShardedEngine::recover(EngineConfig::new(2), kll, ckpt).unwrap();
    recovered.extend((1..=2_000).map(f64::from));
    let merged = recovered.finish().unwrap();
    assert_eq!(merged.count(), 2_000);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn keyed_spawn_quota_and_query_shims_still_work() {
    let engine = KeyedEngine::spawn(
        KeyedEngineConfig::new(2)
            .with_queue_capacity(8)
            .with_tenant_quota("noisy", TenantQuota::per_sec(10.0).with_burst(10.0)),
        kll,
    )
    .unwrap();
    engine.ingest("acme", "lat", (1..=500).map(f64::from).collect()).unwrap();
    engine.ingest("acme", "err", (1..=500).map(f64::from).collect()).unwrap();
    engine.drain();

    // Old query surface: snapshot / quantile / merged_prefix.
    let snap = engine.snapshot("acme", "lat").expect("known key");
    assert_eq!(snap.count(), 500);
    let q = engine.quantile("acme", "lat", 0.5).unwrap();
    assert!((q - 250.0).abs() < 25.0, "{q}");
    let merged = engine.merged_prefix("acme", "").unwrap().expect("keys exist");
    assert_eq!(merged.count(), 1_000);
    engine.finish();
}

#[test]
fn deprecated_and_builder_paths_agree_bit_for_bit() {
    use quantile_sketches::EngineBuilder;
    let values: Vec<f64> = (1..=4_000).map(|i| f64::from(i).sqrt()).collect();

    let mut old = ShardedEngine::spawn(EngineConfig::new(2), kll);
    old.extend(values.iter().copied());
    let old = old.finish().unwrap();

    let mut new = EngineBuilder::sharded(2).spawn(kll).unwrap();
    new.extend(values.iter().copied());
    let new = new.finish().unwrap();

    for q in [0.25, 0.5, 0.9, 1.0] {
        assert_eq!(
            old.query(q).unwrap().to_bits(),
            new.query(q).unwrap().to_bits(),
            "q={q}: shim and builder must drive the identical engine"
        );
    }
}

//! # quantile-sketches
//!
//! A from-scratch Rust reproduction of *"An Experimental Analysis of
//! Quantile Sketches over Data Streams"* (Fernando, Bindra, Daudjee;
//! EDBT 2023): the five streaming quantile sketches the paper evaluates,
//! the workload generators, a deterministic stream-processing simulator
//! with event-time windows and late-data semantics, and the full
//! experiment harness regenerating every table and figure.
//!
//! ## The five sketches
//!
//! | Sketch | Crate | Guarantee |
//! |---|---|---|
//! | [`KllSketch`] | `qsketch-kll` | additive rank error (randomized) |
//! | [`MomentsSketch`] | `qsketch-moments` | average-error bound via max-entropy fit |
//! | [`DdSketch`] | `qsketch-ddsketch` | relative error α (deterministic) |
//! | [`UddSketch`] | `qsketch-uddsketch` | relative error with deterministic decay |
//! | [`ReqSketch`] | `qsketch-req` | multiplicative rank error (randomized) |
//!
//! All implement [`QuantileSketch`], and all but GK implement
//! [`MergeableSketch`].
//!
//! ## Quickstart
//!
//! ```
//! use quantile_sketches::{DdSketch, QuantileSketch};
//!
//! let mut sketch = DdSketch::unbounded(0.01); // ≤1% relative error
//! for i in 1..=1_000_000u64 {
//!     sketch.insert(i as f64);
//! }
//! let p99 = sketch.query(0.99).unwrap();
//! assert!((p99 - 990_000.0).abs() / 990_000.0 <= 0.01);
//! ```
//!
//! ## Observability
//!
//! Wrap any sketch in [`Instrumented`] to record per-op counts,
//! latencies and memory into a [`MetricsRegistry`]; attach
//! [`PipelineMetrics`] to a windowed pipeline for watermark lag,
//! late-drop and emit-latency metrics. Snapshots render as plain text
//! or JSON.
//!
//! ## Persistence
//!
//! Every sketch implements [`SketchSerialize`] — a versioned, std-only
//! binary wire format (`magic | version | params | state`) whose
//! decoder rejects corrupt, truncated or foreign payloads with a typed
//! [`DecodeError`], never a panic. The current v3 generation is the
//! [`flatwire`] flat layout: delta + prefix-varint compressed payloads
//! that [`SketchView`] queries **zero-copy** — quantile/count/bounds
//! straight off the borrowed bytes, bit-identical to decode-then-query
//! — while every earlier payload generation still decodes. The
//! lock-free sharded ingestion engine (built through
//! [`EngineBuilder`]; queries return wait-free [`SnapshotHandle`]s
//! over epoch-published bytes) layers periodic per-shard checkpoints
//! and deterministic crash recovery on top of it
//! (`EngineBuilder::sharded(n).checkpoints(ckpt).recover(f)`,
//! [`CheckpointConfig`], plus the lazy
//! `streamsim::checkpoint::LazyEngineRecovery` that serves queries
//! from checkpoint bytes without rebuilding); `FORMATS.md` is the
//! normative byte-level spec, `ARCHITECTURE.md` the recovery
//! contracts.
//!
//! See `examples/` for streaming-window, latency-monitoring and
//! distributed-merge scenarios, and `crates/bench` for the paper's
//! experiments.

pub use qsketch_baselines::{DyadicCountSketch, GkSketch, HdrHistogram, RandomSketch, TDigest};
pub use qsketch_core::codec::{DecodeError, SketchSerialize};
pub use qsketch_core::flatwire::{self, SketchView};
pub use qsketch_core::error::{rank_error, relative_error, ErrorStats};
pub use qsketch_core::exact::{ExactQuantiles, ExactSketch};
pub use qsketch_core::metrics::{Instrumented, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use qsketch_core::profile::Profile;
pub use qsketch_core::quantiles;
pub use qsketch_core::pool::{BufferPool, Pooled, Recycle};
pub use qsketch_core::sketch::{
    merge_tree, MergeError, MergeableSketch, QuantileSketch, QueryError, SketchError,
};
pub use qsketch_core::stats::{kurtosis, MomentsAccumulator};
pub use qsketch_datagen::{
    paper_adaptability_stream, BinomialGen, DataSet, DriftingPareto, DriftingUniform,
    FixedPareto, FixedUniform, NytFares, PowerBimodal, SwitchingStream, ValueStream, ZipfGen,
};
pub use qsketch_ddsketch::{DdSketch, LogarithmicMapping};
pub use qsketch_kll::{KllPlusMinus, KllSketch};
pub use qsketch_moments::MomentsSketch;
pub use qsketch_req::{RankAccuracy, ReqSketch};
pub use qsketch_streamsim::{
    AccuracyConfig, CheckpointConfig, EngineBuilder, EngineConfig, EngineError, EngineMetrics,
    Event, EventSource, FaultInjection, KeyedEvent, KeyedTumblingWindows, NetworkDelay,
    PartitionMetrics, PartitionedWindow, PipelineMetrics, SessionWindows, ShardSnapshot,
    ShardedEngine, SlidingWindows, SnapshotHandle, TumblingWindows,
};
pub use qsketch_uddsketch::UddSketch;

/// Re-export of the stream-simulator crate for windowed-pipeline use.
pub use qsketch_streamsim as streamsim;

/// Re-export of the DDSketch store module (ablation experiments swap
/// stores).
pub use qsketch_ddsketch::store;

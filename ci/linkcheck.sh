#!/usr/bin/env bash
# Markdown link/anchor checker for the repo-root doc set. Verifies that
# every relative link in the checked files points at a file that exists,
# and that every `#anchor` (same-file or cross-file) matches a heading
# in its target, using GitHub's slug rules (lowercase, strip punctuation,
# spaces to dashes). External links (http/https/mailto) are skipped —
# the CI gate runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=(README.md ARCHITECTURE.md FORMATS.md PROTOCOL.md OPERATIONS.md EXPERIMENTS.md DESIGN.md ROADMAP.md)

# GitHub heading slug: lowercase, drop everything but alphanumerics,
# spaces and hyphens, then spaces become hyphens.
slugify() {
    printf '%s\n' "$1" \
        | tr '[:upper:]' '[:lower:]' \
        | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

# All heading slugs of one file, one per line.
anchors_of() {
    local file="$1"
    grep -E '^#{1,6} ' "$file" | sed -E 's/^#{1,6} //' | while IFS= read -r h; do
        slugify "$h"
    done
}

fail=0
for file in "${FILES[@]}"; do
    [ -f "$file" ] || continue
    # Pull out every inline-link target: ](...)
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        path="${target%%#*}"
        anchor=""
        case "$target" in
            *'#'*) anchor="${target#*#}" ;;
        esac
        if [ -n "$path" ] && [ ! -e "$path" ]; then
            echo "$file: broken link target: $target (no such file: $path)" >&2
            fail=1
            continue
        fi
        if [ -n "$anchor" ]; then
            anchor_file="${path:-$file}"
            case "$anchor_file" in
                *.md) ;;
                *) continue ;;  # anchors into non-markdown are not checked
            esac
            # grep -c (not -q): -q exits at first match and SIGPIPEs the
            # upstream, which pipefail would misreport as a miss.
            hits=$(anchors_of "$anchor_file" | grep -cx -- "$anchor" || true)
            if [ "$hits" -eq 0 ]; then
                echo "$file: broken anchor: $target (no heading slugs to '$anchor' in $anchor_file)" >&2
                fail=1
            fi
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "link check FAILED" >&2
    exit 1
fi
echo "link check passed (${FILES[*]})"

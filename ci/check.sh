#!/usr/bin/env bash
# Full offline CI gate: build, tests, docs, lints. Everything runs with
# --offline — the build environment has no registry access (see
# vendor/README.md), so a network fetch attempt is itself a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build (release)"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --release --offline -q

echo "==> cargo doc (no warnings allowed)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "==> cargo clippy (no warnings allowed)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> sharded-engine smoke run (tiny, 1 and 2 threads)"
cargo run --release --offline -p qsketch-bench --bin ext_parallel_scaling -- \
    --tiny --threads 1,2 --metrics

echo "==> concurrent-ingest stress suite (ring handoff, epoch publication, per-key determinism)"
cargo test --release --offline -q --test concurrent_engine
cargo test --release --offline -q --test parallel_engine

echo "==> zero-allocation gate (counting allocator proves 0 allocs per warmed ingest frame)"
cargo test --release --offline -q --test alloc_gate

echo "==> wire-format round-trip smoke (all sketches, all datasets)"
cargo test --release --offline -q --test codec_roundtrip

echo "==> zero-copy view contract (quantile_from_bytes ≡ decode-then-query, corruption fuzz)"
cargo test --release --offline -q --test flatwire_view

echo "==> golden wire fixtures (committed legacy payloads still answer pinned bits)"
# tests/fixtures/wire/ holds one payload per frozen format generation
# plus expected.txt with the exact answer bits (FORMATS.md § Golden
# fixtures). A failure is a format compatibility break.
cargo test --release --offline -q --test wire_fixtures

echo "==> batch-insert equivalence (bit-identical scalar vs batch state)"
cargo test --release --offline -q --test batch_insert_equivalence

echo "==> insert-throughput baseline (quick; fails on batch regression)"
# The bin exits non-zero and prints REGRESSION if any sketch's batch
# path falls >5% below its scalar path. It writes BENCH_insert.json to
# its cwd, so run it from a scratch dir inside the workspace — the
# committed full-scale BENCH_insert.json at the repo root is the
# durable baseline and must not be clobbered by the quick CI run.
scratch="target/ci-insert-bench"
mkdir -p "$scratch"
rm -f "$scratch/BENCH_insert.json"
(cd "$scratch" && cargo run --release --offline -p qsketch-bench --bin bench_insert_throughput -- --quick)
if [ ! -s "$scratch/BENCH_insert.json" ]; then
    echo "BENCH_insert.json missing or empty" >&2
    exit 1
fi
for key in ext_insert_throughput scalar_mvps batch_mvps speedup REQ KLL UDDS DDS Moments; do
    if ! grep -q "$key" "$scratch/BENCH_insert.json"; then
        echo "BENCH_insert.json malformed: missing $key" >&2
        exit 1
    fi
done

echo "==> concurrent-ingest baseline (quick; 2-producer smoke, fails on malformed JSON)"
# Exercises the lock-free handoff vs a mutex queue, wait-free queries
# under live ingest, and a 2-producer MPSC run. Quick-scale from a
# scratch dir so the committed BENCH_concurrent.json at the repo root
# (with its single-CPU caveat) stays the durable baseline.
scratch="target/ci-concurrent-bench"
mkdir -p "$scratch"
rm -f "$scratch/BENCH_concurrent.json"
(cd "$scratch" && cargo run --release --offline -p qsketch-bench --bin ext_concurrent_ingest -- --quick)
if [ ! -s "$scratch/BENCH_concurrent.json" ]; then
    echo "BENCH_concurrent.json missing or empty" >&2
    exit 1
fi
for key in ext_concurrent_ingest caveat mutex_ns_per_value ring_ns_per_value query_under_ingest p99_us epochs_observed one_meps two_meps; do
    if ! grep -q "$key" "$scratch/BENCH_concurrent.json"; then
        echo "BENCH_concurrent.json malformed: missing $key" >&2
        exit 1
    fi
done

echo "==> checkpoint smoke run (tiny: kill one shard, recover, verify bit-identical)"
out=$(cargo run --release --offline -p qsketch-bench --bin ext_checkpoint -- --tiny)
echo "$out"
if echo "$out" | grep -q FAIL; then
    echo "checkpoint recovery verification FAILED" >&2
    exit 1
fi

echo "==> query-from-bytes regression gate (view must not regress past decode-then-query)"
# The table's `q bytes µs` column (field 11 of each 13-field data row)
# is the zero-copy SketchView quantile; `q dec µs` (field 12) decodes
# first. The flat layout's whole point is that the view path wins, so a
# view slower than 1.10 × decode is a regression — except Moments,
# whose view deliberately routes through decode (FORMATS.md), so it
# only has to stay within noise (1.5 ×) of the decode path.
echo "$out" | awk '
    NF == 13 && $1 ~ /:/ && ($13 == "ok" || $13 == "FAIL") {
        limit = ($1 ~ /^moments/) ? 1.5 : 1.10
        if ($11 + 0 > ($12 + 0) * limit) {
            printf "REGRESSION: %s quantile_from_bytes %sus > %.2f x decode-then-query %sus\n", $1, $11, limit, $12
            bad = 1
        }
        rows++
    }
    END {
        if (rows < 5) { print "query-latency gate parsed " rows " rows, expected 5"; exit 1 }
        exit bad
    }
' || { echo "query-from-bytes latency regression" >&2; exit 1; }

echo "==> server smoke (ingest, checkpoint, kill -9, recover, bit-identical re-query)"
# Drives the real binaries over real TCP: start durable, ingest, take a
# synchronous checkpoint, query (capturing exact result bits), kill -9,
# restart with --recover, and require the recovered answers bit-for-bit.
SERVER=./target/release/qsketch_server
CLIENT=./target/release/qsketch_client
ckpt_dir="target/ci-server-smoke/ckpt"
server_log="target/ci-server-smoke/server.log"
rm -rf "target/ci-server-smoke"
mkdir -p "$ckpt_dir"

wait_ready() { # $1 = logfile; prints the listen address
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on \([^ ]*\) .*/\1/p' "$1")
        if [ -n "$addr" ]; then echo "$addr"; return 0; fi
        sleep 0.1
    done
    echo "server never became ready; log:" >&2; cat "$1" >&2; return 1
}

rollup_dir="target/ci-server-smoke/rollup"
"$SERVER" --addr 127.0.0.1:0 --shards 2 --ckpt-dir "$ckpt_dir" \
    --rollup-window 1000 --rollup-dir "$rollup_dir" > "$server_log" 2>&1 &
server_pid=$!
addr=$(wait_ready "$server_log")
"$CLIENT" "$addr" ingest-seq acme api.latency 0 50000
"$CLIENT" "$addr" flush
"$CLIENT" "$addr" checkpoint
before=$("$CLIENT" "$addr" query acme api.latency 0.01 0.5 0.99)
echo "$before"
range_before=$("$CLIENT" "$addr" range acme api.latency 0 32 0.5 0.99)
echo "$range_before"
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true

echo "==> lazy recovery probe (pre-crash bits straight from checkpoint bytes, no rebuild)"
# Before restarting anything, prove the checkpoint directory alone can
# answer the same query: ckpt_probe opens it with LazyRegistryRecovery
# (payloads stay serialized, queries run zero-copy via SketchView),
# must print the same q=/count= lines the live server answered before
# the kill -9, and exits non-zero if any sketch had to be rebuilt.
probe_out=$(./target/release/ckpt_probe "$ckpt_dir" 2 acme api.latency 0.01 0.5 0.99)
echo "$probe_out"
if [ "$(echo "$probe_out" | grep -v '^lazy ok')" != "$before" ]; then
    echo "lazy probe answers differ from pre-crash answers:" >&2
    diff <(echo "$before") <(echo "$probe_out" | grep -v '^lazy ok') >&2 || true
    exit 1
fi
if ! echo "$probe_out" | grep -q '^lazy ok'; then
    echo "lazy probe did not confirm zero rebuilds" >&2
    exit 1
fi

"$SERVER" --addr 127.0.0.1:0 --shards 2 --ckpt-dir "$ckpt_dir" --recover \
    --rollup-window 1000 --rollup-dir "$rollup_dir" > "$server_log" 2>&1 &
server_pid=$!
addr=$(wait_ready "$server_log")
after=$("$CLIENT" "$addr" query acme api.latency 0.01 0.5 0.99)
if [ "$before" != "$after" ]; then
    echo "recovered answers differ from pre-crash answers:" >&2
    diff <(echo "$before") <(echo "$after") >&2 || true
    exit 1
fi
range_after=$("$CLIENT" "$addr" range acme api.latency 0 32 0.5 0.99)
if [ "$range_before" != "$range_after" ]; then
    echo "recovered rollup range answers differ from pre-crash answers:" >&2
    diff <(echo "$range_before") <(echo "$range_after") >&2 || true
    exit 1
fi
echo "recovered answers bit-identical (point query and rollup range query)"
# The recovered engine must keep ingesting: land another 10k values and
# require the count to grow exactly — recovery that serves stale reads
# but drops writes would pass the bit-identity check above.
"$CLIENT" "$addr" ingest-seq acme api.latency 50000 10000
"$CLIENT" "$addr" flush
post=$("$CLIENT" "$addr" query acme api.latency 0.5)
echo "$post"
if ! echo "$post" | grep -q "count=60000"; then
    echo "post-recovery ingest did not land (want count=60000): $post" >&2
    exit 1
fi
echo "post-recovery ingest round accepted (count grew to 60000)"
"$CLIENT" "$addr" shutdown
wait "$server_pid" 2>/dev/null || true
if ! grep -q "shutdown complete" "$server_log"; then
    echo "server did not report a clean shutdown; log:" >&2
    cat "$server_log" >&2
    exit 1
fi

echo "==> server load gate (quick; throughput regression + allocs/frame budget)"
# Quick-scale runs from a scratch dir so the committed BENCH_server.json
# at the repo root stays the durable baseline. Two gates against it.
#
# Throughput: the target is "fail on >5% regression", but quick-scale
# loopback shares one CPU between client and server and swings ±25%
# with the host's credit-throttle state (measured 11.9–16.0 M
# single-op events/s across runs of the same binary), so the floor
# grants that spread on top of the 5%: the best of up to three
# attempts must reach 70% of the committed number on BOTH the
# single-op and the pipelined path. The precise regression gate for
# the zero-allocation claim is the deterministic allocs/frame budget
# below (and tests/alloc_gate.rs above) — those do not move with
# machine speed.
scratch="target/ci-server-bench"
mkdir -p "$scratch"
json_field() { # $1 = file, $2 = field name; FIRST occurrence wins
    # (the top-level single-op events_per_sec precedes the pipelined
    # one in the JSON)
    grep -o "\"$2\":[0-9.]*" "$1" | head -n 1 | cut -d: -f2
}
pipelined_field() { # events_per_sec inside the "pipelined" object
    grep -o '"pipelined":{"depth":[0-9]*,"events_per_sec":[0-9.]*' "$1" \
        | grep -o '[0-9.]*$'
}
baseline_eps=$(json_field BENCH_server.json events_per_sec)
baseline_pipe=$(pipelined_field BENCH_server.json)
budget_p50=$(json_field BENCH_server.json budget_p50)
if [ -z "$baseline_eps" ] || [ -z "$baseline_pipe" ] || [ -z "$budget_p50" ]; then
    echo "committed BENCH_server.json is missing baseline fields" >&2
    exit 1
fi
throughput_ok=""
fresh_p50=""
for attempt in 1 2 3; do
    rm -f "$scratch/BENCH_server.json"
    (cd "$scratch" && cargo run --release --offline -p qsketch-bench --bin bench_server_load -- --quick)
    if [ ! -s "$scratch/BENCH_server.json" ]; then
        echo "BENCH_server.json missing or empty" >&2
        exit 1
    fi
    for key in ext_server_load events_per_sec pipelined allocs_per_frame isolation quiet_ack_us; do
        if ! grep -q "$key" "$scratch/BENCH_server.json"; then
            echo "BENCH_server.json malformed: missing $key" >&2
            exit 1
        fi
    done
    fresh_eps=$(json_field "$scratch/BENCH_server.json" events_per_sec)
    fresh_pipe=$(pipelined_field "$scratch/BENCH_server.json")
    fresh_p50=$(sed -n 's/.*"allocs_per_frame":{[^}]*"p50":\([0-9]*\).*/\1/p' "$scratch/BENCH_server.json")
    if [ -z "$fresh_p50" ]; then
        echo "allocs_per_frame p50 missing from fresh JSON" >&2
        exit 1
    fi
    if [ "$fresh_p50" -gt "$budget_p50" ]; then
        echo "REGRESSION: allocs/frame p50 = $fresh_p50 exceeds committed budget $budget_p50" >&2
        exit 1
    fi
    if awk -v base="$baseline_eps" -v fresh="$fresh_eps" \
           -v pbase="$baseline_pipe" -v pfresh="$fresh_pipe" 'BEGIN {
        if (base + 0 <= 0 || fresh + 0 <= 0 || pbase + 0 <= 0 || pfresh + 0 <= 0) exit 1
        if (fresh < base * 0.70) exit 1
        if (pfresh < pbase * 0.70) exit 1
        printf "throughput ok: %.2f M single-op / %.2f M pipelined events/s (baseline %.2f / %.2f M)\n", \
            fresh / 1e6, pfresh / 1e6, base / 1e6, pbase / 1e6
    }'; then
        throughput_ok=1
        break
    fi
    echo "attempt $attempt below floor: ${fresh_eps:-?} single-op / ${fresh_pipe:-?} pipelined (need 70% of $baseline_eps / $baseline_pipe)"
done
if [ -z "$throughput_ok" ]; then
    echo "REGRESSION: throughput below 70% of committed baseline on 3 attempts" >&2
    exit 1
fi
echo "allocs/frame ok: p50 = $fresh_p50 (budget $budget_p50)"

echo "==> rollup smoke (ingest, cascade, age-out, range query, kill -9, recover, bit-identical)"
SMOKE=./target/release/rollup_smoke
smoke_dir="target/ci-rollup-smoke/tiers"
smoke_log="target/ci-rollup-smoke/serve.log"
rm -rf "target/ci-rollup-smoke"
mkdir -p "$smoke_dir"
"$SMOKE" --dir "$smoke_dir" --windows 32 --serve > "$smoke_log" 2>&1 &
smoke_pid=$!
for _ in $(seq 1 100); do
    grep -q "^ready$" "$smoke_log" 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "^ready$" "$smoke_log"; then
    echo "rollup_smoke never became ready; log:" >&2; cat "$smoke_log" >&2; exit 1
fi
kill -9 "$smoke_pid" 2>/dev/null || true
wait "$smoke_pid" 2>/dev/null || true
rollup_before=$(sed '/^ready$/d' "$smoke_log")
echo "$rollup_before"
rollup_after=$("$SMOKE" --dir "$smoke_dir" --recover)
if [ "$rollup_before" != "$rollup_after" ]; then
    echo "recovered rollup store answers differ:" >&2
    diff <(echo "$rollup_before") <(echo "$rollup_after") >&2 || true
    exit 1
fi
echo "rollup store recovered bit-identically after kill -9"

echo "==> rollup cascade baseline (quick; fails on malformed JSON)"
# Quick-scale run from a scratch dir so the committed full-scale
# BENCH_rollup.json at the repo root stays the durable baseline.
scratch="target/ci-rollup-bench"
mkdir -p "$scratch"
rm -f "$scratch/BENCH_rollup.json"
(cd "$scratch" && cargo run --release --offline -p qsketch-bench --bin ext_rollup_cascade -- --quick --runs 1)
if [ ! -s "$scratch/BENCH_rollup.json" ]; then
    echo "BENCH_rollup.json missing or empty" >&2
    exit 1
fi
for key in ext_rollup_cascade tier_widths mean_rel_err alpha_deepest REQ KLL UDDS DDS Moments UDDS-fused; do
    if ! grep -q "$key" "$scratch/BENCH_rollup.json"; then
        echo "BENCH_rollup.json malformed: missing $key" >&2
        exit 1
    fi
done

echo "==> markdown link check (PROTOCOL.md / OPERATIONS.md doc set)"
bash ci/linkcheck.sh

echo "All checks passed."

//! Web-request latency monitoring — the paper's motivating use case
//! (§1, §4.2) — built on the observability layer: a [`MetricsRegistry`]
//! collects pipeline health (watermark, late drops, emit latency) and
//! per-sketch operation metrics while [`Instrumented`]`<DdSketch>`
//! windows track the latency percentiles themselves.
//!
//! A DDSketch per tumbling window gives a deterministic ≤1 % relative
//! error on every percentile, so "p99 went from 120 ms to 900 ms" is a
//! real regression, not sketch noise; the registry snapshot printed at
//! the end is what you would export to a dashboard to watch the monitor
//! itself (is the pipeline dropping data? how costly are the sketches?).
//!
//! ```text
//! cargo run --release --example latency_monitoring
//! ```

use quantile_sketches::streamsim::window::WindowState;
use quantile_sketches::{
    DdSketch, Event, Instrumented, MetricsRegistry, PipelineMetrics, QuantileSketch,
    TumblingWindows,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Window state: one instrumented DDSketch of request latencies.
struct LatencyWindow(Instrumented<DdSketch>);

impl WindowState for LatencyWindow {
    fn observe(&mut self, value: f64) {
        self.0.insert(value);
    }
}

fn main() {
    let registry = MetricsRegistry::new();
    let pipeline = PipelineMetrics::register(&registry);

    let mut rng = StdRng::seed_from_u64(7);
    // 5-minute tumbling windows over 30 minutes of traffic at ~200 req/s.
    let window_us = 5 * 60 * 1_000_000u64;
    let sketch_registry = registry.clone();
    let mut windows = TumblingWindows::new(window_us, move || {
        // Every window registers under the same prefix, so the counters
        // aggregate across windows into whole-pipeline totals.
        LatencyWindow(Instrumented::new(
            DdSketch::unbounded(0.01),
            &sketch_registry,
            "latency.sketch",
        ))
    })
    .with_metrics(pipeline);

    let total_secs = 30 * 60;
    let reqs_per_sec = 200u64;
    let mut events = Vec::with_capacity(total_secs * reqs_per_sec as usize);
    for s in 0..total_secs {
        for r in 0..reqs_per_sec {
            let t_us = s as u64 * 1_000_000 + r * (1_000_000 / reqs_per_sec);
            // Baseline: lognormal-ish latency around 80 ms. During minutes
            // 18-22 a slow dependency pushes 3% of requests to ~2 s — the
            // §4.2 scenario where only upper quantiles show the outage.
            let base = 80.0 * (1.0 + rng.gen::<f64>()).powf(2.0) / 2.0;
            let minute = s / 60;
            let degraded = (18..22).contains(&minute) && rng.gen::<f64>() < 0.03;
            let latency_ms = if degraded { 2_000.0 + 500.0 * rng.gen::<f64>() } else { base };
            // The §4.6 transport model: an exp(150 ms) network delay
            // between the web server emitting the measurement and the
            // monitor ingesting it.
            let delay_us = (-150_000.0 * (1.0 - rng.gen::<f64>()).ln()) as u64;
            events.push(Event::new(latency_ms, t_us, delay_us));
        }
    }
    // Events reach the monitor in ingestion order, so delayed boundary
    // events can arrive after their window fired — the late drops the
    // pipeline.late_dropped counter makes visible.
    events.sort_by_key(|e| e.ingest_time_us);
    for e in events {
        windows.observe(e);
    }

    let mut fired = windows.close();
    println!("window   p50 (ms)   p95 (ms)   p99 (ms)   alert");
    println!("--------------------------------------------------");
    let mut prev_p99: Option<f64> = None;
    for (i, w) in fired.results.iter_mut().enumerate() {
        let sketch = &mut w.items.0;
        let p50 = sketch.query(0.50).unwrap();
        let p95 = sketch.query(0.95).unwrap();
        let p99 = sketch.query(0.99).unwrap();
        // Alert when p99 more than triples window-over-window — with a 1%
        // error guarantee this cannot be a false positive from the sketch.
        let alert = prev_p99.map(|prev| p99 > 3.0 * prev).unwrap_or(false);
        println!(
            "{:>6}   {:>8.1}   {:>8.1}   {:>8.1}   {}",
            i,
            p50,
            p95,
            p99,
            if alert { "*** p99 REGRESSION ***" } else { "" }
        );
        prev_p99 = Some(p99);
        // Push this window's buffered insert tally so the snapshot below
        // shows exact totals (inserts = events − late drops).
        sketch.flush();
    }
    println!(
        "\nNote how p50 barely moves during the outage window — only the upper\n\
         quantiles reveal the slow dependency, which is why the paper biases its\n\
         evaluation toward q >= 0.9 (§4.2).\n"
    );

    // The monitor's own health: everything the pipeline and the sketches
    // recorded along the way, as you would export it to a dashboard.
    println!("Metrics snapshot:\n");
    print!("{}", registry.snapshot().render_text());
}

//! Web-request latency monitoring — the paper's motivating use case
//! (§1, §4.2): track upper quantiles of response times per time window and
//! alert when the p99 regresses.
//!
//! A DDSketch per tumbling window gives a deterministic ≤1 % relative
//! error on every percentile, so "p99 went from 120 ms to 900 ms" is a
//! real regression, not sketch noise.
//!
//! ```text
//! cargo run --release --example latency_monitoring
//! ```

use quantile_sketches::streamsim::window::WindowState;
use quantile_sketches::{DdSketch, Event, QuantileSketch, TumblingWindows};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Window state: one DDSketch of request latencies.
struct LatencyWindow(DdSketch);

impl WindowState for LatencyWindow {
    fn observe(&mut self, value: f64) {
        self.0.insert(value);
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 5-minute tumbling windows over 30 minutes of traffic at ~200 req/s.
    let window_us = 5 * 60 * 1_000_000u64;
    let mut windows = TumblingWindows::new(window_us, || LatencyWindow(DdSketch::unbounded(0.01)));

    let total_secs = 30 * 60;
    let reqs_per_sec = 200;
    for s in 0..total_secs {
        for r in 0..reqs_per_sec {
            let t_us = s as u64 * 1_000_000 + r * (1_000_000 / reqs_per_sec);
            // Baseline: lognormal-ish latency around 80 ms. During minutes
            // 18-22 a slow dependency pushes 3% of requests to ~2 s — the
            // §4.2 scenario where only upper quantiles show the outage.
            let base = 80.0 * (1.0 + rng.gen::<f64>()).powf(2.0) / 2.0;
            let minute = s / 60;
            let degraded = (18..22).contains(&minute) && rng.gen::<f64>() < 0.03;
            let latency_ms = if degraded { 2_000.0 + 500.0 * rng.gen::<f64>() } else { base };
            windows.observe(Event::new(latency_ms, t_us, 0));
        }
    }

    let fired = windows.close();
    println!("window   p50 (ms)   p95 (ms)   p99 (ms)   alert");
    println!("--------------------------------------------------");
    let mut prev_p99: Option<f64> = None;
    for (i, w) in fired.results.iter().enumerate() {
        let sketch = &w.items.0;
        let p50 = sketch.query(0.50).unwrap();
        let p95 = sketch.query(0.95).unwrap();
        let p99 = sketch.query(0.99).unwrap();
        // Alert when p99 more than triples window-over-window — with a 1%
        // error guarantee this cannot be a false positive from the sketch.
        let alert = prev_p99.map(|prev| p99 > 3.0 * prev).unwrap_or(false);
        println!(
            "{:>6}   {:>8.1}   {:>8.1}   {:>8.1}   {}",
            i,
            p50,
            p95,
            p99,
            if alert { "*** p99 REGRESSION ***" } else { "" }
        );
        prev_p99 = Some(p99);
    }
    println!(
        "\nNote how p50 barely moves during the outage window — only the upper\n\
         quantiles reveal the slow dependency, which is why the paper biases its\n\
         evaluation toward q >= 0.9 (§4.2)."
    );
}

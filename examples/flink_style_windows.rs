//! The paper's full streaming setup in miniature (§4.2, §4.6): an
//! event-time source with exponential network delay feeds tumbling
//! windows; late events are dropped; each window reports its median taxi
//! fare and the sketch-vs-exact error.
//!
//! ```text
//! cargo run --release --example flink_style_windows
//! ```

use quantile_sketches::streamsim::harness::{run_accuracy, AccuracyConfig};
use quantile_sketches::{DataSet, NetworkDelay, UddSketch};

fn main() {
    // A scaled-down version of the paper's configuration: 5 000 events/s,
    // 20 s windows (100 k events each), 6 windows (first discarded),
    // 150 ms mean exponential network delay, late events dropped.
    let cfg = AccuracyConfig {
        events_per_sec: 5_000,
        window_secs: 20,
        num_windows: 6,
        discard_first: true,
        delay: NetworkDelay::ExponentialMs(150.0),
        quantiles: vec![0.5, 0.95, 0.99],
        watermark_lag_ms: 0,
    };

    println!(
        "NYT fare stream, {} ev/s, {} s tumbling windows, exp(150 ms) delays:\n",
        cfg.events_per_sec, cfg.window_secs
    );

    let summary = run_accuracy(
        UddSketch::paper_configuration,
        DataSet::Nyt.generator(2024, 50),
        &cfg,
        2024,
    );

    println!("window   events   rel.err p50   rel.err p95   rel.err p99");
    println!("-----------------------------------------------------------");
    for w in &summary.windows {
        let err = |q: f64| {
            w.errors
                .iter()
                .find(|(wq, _)| *wq == q)
                .map(|(_, e)| format!("{:.4}%", e * 100.0))
                .unwrap_or_else(|| "n/a".into())
        };
        println!(
            "{:>6}   {:>6}   {:>11}   {:>11}   {:>11}",
            w.window_index,
            w.count,
            err(0.5),
            err(0.95),
            err(0.99)
        );
    }
    println!(
        "\nlate events dropped: {} of {} ({:.2}%) — the §4.6 scenario; accuracy is\n\
         barely affected because a faithful summary tolerates losing a small\n\
         fraction of its window.",
        summary.dropped_late,
        summary.total_events,
        summary.loss_fraction() * 100.0
    );
}

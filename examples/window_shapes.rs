//! The three window types of §2.5 side by side — tumbling, sliding, and
//! session — each aggregating a DDSketch over a bursty request stream.
//!
//! ```text
//! cargo run --release --example window_shapes
//! ```

use quantile_sketches::streamsim::session::Mergeable;
use quantile_sketches::streamsim::window::WindowState;
use quantile_sketches::{
    DdSketch, Event, MergeableSketch, QuantileSketch, SessionWindows, SlidingWindows,
    TumblingWindows,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Window state: a DDSketch of request latencies.
struct Latencies(DdSketch);

impl WindowState for Latencies {
    fn observe(&mut self, value: f64) {
        self.0.insert(value);
    }
}

impl Mergeable for Latencies {
    fn merge_from(&mut self, other: Self) {
        self.0.merge(&other.0).expect("same gamma");
    }
}

fn new_state() -> Latencies {
    Latencies(DdSketch::unbounded(0.01))
}

/// A bursty workload: three activity bursts separated by idle gaps.
fn bursts(seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for (burst, &start_s) in [0u64, 40, 95].iter().enumerate() {
        // Each burst: 20 s of ~100 req/s; burst 2 runs slow.
        for s in 0..20u64 {
            for r in 0..100u64 {
                let t_us = (start_s + s) * 1_000_000 + r * 10_000;
                let slow = if burst == 2 { 4.0 } else { 1.0 };
                let latency = 50.0 * slow * (1.0 + rng.gen::<f64>());
                events.push(Event::new(latency, t_us, 0));
            }
        }
    }
    events
}

fn p99(sketch: &DdSketch) -> f64 {
    sketch.query(0.99).unwrap_or(f64::NAN)
}

fn main() {
    let events = bursts(11);
    println!("{} events in three bursts (idle gaps between)\n", events.len());

    // --- tumbling: fixed 30 s blocks -----------------------------------
    let mut tumbling = TumblingWindows::new(30_000_000, new_state);
    for e in &events {
        tumbling.observe(*e);
    }
    println!("tumbling 30 s:     window start -> p99 (ms)");
    for w in tumbling.close().results {
        println!("  t={:>4} s  n={:>5}  p99={:>7.1}", w.start_us / 1_000_000, w.count, p99(&w.items.0));
    }

    // --- sliding: 30 s windows every 10 s -------------------------------
    let mut sliding = SlidingWindows::new(30_000_000, 10_000_000, new_state);
    for e in &events {
        sliding.observe(*e);
    }
    println!("\nsliding 30 s / 10 s: the same stream at 3x the temporal resolution");
    for w in sliding.close().results.iter().take(8) {
        println!("  t={:>4} s  n={:>5}  p99={:>7.1}", w.start_us / 1_000_000, w.count, p99(&w.items.0));
    }

    // --- session: gap 5 s — windows follow the bursts themselves --------
    let mut sessions = SessionWindows::new(5_000_000, new_state);
    for e in &events {
        sessions.observe(*e);
    }
    println!("\nsession (5 s gap): one window per burst, exactly");
    for w in sessions.close().results {
        println!(
            "  [{:>4} s .. {:>4} s]  n={:>5}  p99={:>7.1}",
            w.start_us / 1_000_000,
            w.end_us / 1_000_000,
            w.count,
            p99(&w.items.0)
        );
    }
    println!(
        "\nThe session windows isolate the slow burst (4x p99) without any window-\n\
         size tuning — the grouping §2.5 describes for activity-driven streams."
    );
}

//! Distributed aggregation via mergeability (§2.4): sixteen partitions
//! summarise their shard locally, only the tiny sketches travel to the
//! coordinator, and the merged sketch answers global quantiles.
//!
//! Also demonstrates the paper's §4.4.3 finding: the Moments sketch merges
//! an order of magnitude faster than everything else.
//!
//! ```text
//! cargo run --release --example distributed_merge
//! ```

use std::time::Instant;

use quantile_sketches::{
    DataSet, DdSketch, ExactQuantiles, MergeableSketch, MomentsSketch, QuantileSketch,
    ValueStream,
};

const SHARDS: usize = 16;
const EVENTS_PER_SHARD: usize = 250_000;

fn shard_streams() -> Vec<Vec<f64>> {
    (0..SHARDS)
        .map(|i| {
            let mut gen = DataSet::Power.generator(1_000 + i as u64, 50);
            gen.take_vec(EVENTS_PER_SHARD)
        })
        .collect()
}

fn main() {
    println!(
        "Partitioned aggregation: {SHARDS} shards x {EVENTS_PER_SHARD} power readings\n"
    );
    let shards = shard_streams();

    // Ground truth over the union.
    let mut exact = ExactQuantiles::with_capacity(SHARDS * EVENTS_PER_SHARD);
    for shard in &shards {
        exact.extend(shard.iter().copied());
    }

    // --- DDSketch: guarantee-preserving merge -------------------------
    let local_dds: Vec<DdSketch> = shards
        .iter()
        .map(|shard| {
            let mut s = DdSketch::unbounded(0.01);
            for &v in shard {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut global_dds = local_dds[0].clone();
    let t0 = Instant::now();
    for s in &local_dds[1..] {
        global_dds.merge(s).expect("same gamma");
    }
    let dds_merge = t0.elapsed();

    // --- Moments: constant-time merge ----------------------------------
    let local_moments: Vec<MomentsSketch> = shards
        .iter()
        .map(|shard| {
            let mut s = MomentsSketch::paper_configuration();
            for &v in shard {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut global_moments = local_moments[0].clone();
    let t1 = Instant::now();
    for s in &local_moments[1..] {
        global_moments.merge(s).expect("same parameters");
    }
    let moments_merge = t1.elapsed();

    println!("merge of {} sketches: DDSketch {:?}, Moments {:?}", SHARDS, dds_merge, moments_merge);
    println!(
        "bytes shipped per shard: DDSketch {} vs Moments {} vs raw {}\n",
        local_dds[0].memory_footprint(),
        local_moments[0].memory_footprint(),
        EVENTS_PER_SHARD * 8,
    );

    println!("{:>6}  {:>10}  {:>12}  {:>12}", "q", "exact", "DDS merged", "Moments merged");
    for q in [0.25, 0.5, 0.9, 0.95, 0.99] {
        let truth = exact.query(q).unwrap();
        println!(
            "{q:>6}  {truth:>10.4}  {:>12.4}  {:>12.4}",
            global_dds.query(q).unwrap(),
            global_moments.query(q).unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nDDSketch's merged estimates keep the 1% relative-error guarantee (§2.4:\n\
         merging must not change error guarantees); the Moments merge is just 12\n\
         additions, the §4.4.3 result."
    );
}

//! Turnstile quantiles — the model §5.1 contrasts with the paper's
//! cash-register sketches: elements can be *deleted* as well as inserted.
//!
//! Scenario: a live order book tracks the distribution of open-order
//! prices. Orders arrive and are filled (deleted) continuously; the
//! median open price must reflect only live orders. Two turnstile
//! structures answer it: KLL± (the §3.1 deletion extension, an insert/
//! delete sketch pair) and the Dyadic Count Sketch (§5.2.3).
//!
//! ```text
//! cargo run --release --example turnstile_deletions
//! ```

use quantile_sketches::{DyadicCountSketch, ExactQuantiles, KllPlusMinus, QuantileSketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut kll_pm = KllPlusMinus::with_seed(350, 42);
    let mut dcs = DyadicCountSketch::with_seed(17, 5, 2048, 42);
    // Ground truth: the multiset of live prices.
    let mut live: Vec<f64> = Vec::new();

    println!("phase            live orders   exact median   KLL± median   DCS median");
    println!("--------------------------------------------------------------------------");

    let report = |label: &str, live: &mut Vec<f64>, kll_pm: &KllPlusMinus, dcs: &DyadicCountSketch| {
        let mut oracle = ExactQuantiles::with_capacity(live.len());
        oracle.extend(live.iter().copied());
        let truth = oracle.query(0.5).unwrap();
        println!(
            "{label:<16} {:>11}   {truth:>12.1}   {:>11.1}   {:>10.1}",
            live.len(),
            kll_pm.query(0.5).unwrap(),
            dcs.query(0.5).unwrap(),
        );
    };

    // Phase 1: 100k orders arrive, prices ~ N(10_000, 1_500) clipped.
    for _ in 0..100_000 {
        let price = (10_000.0 + 1_500.0 * (rng.gen::<f64>() - 0.5) * 4.0).max(100.0).round();
        live.push(price);
        kll_pm.insert(price);
        dcs.insert(price);
    }
    report("after opens", &mut live, &kll_pm, &dcs);

    // Phase 2: the cheapest half fills (market sweeps the low side).
    live.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let filled: Vec<f64> = live.drain(..50_000).collect();
    for &price in &filled {
        kll_pm.delete(price);
        dcs.delete(price);
    }
    report("after fills", &mut live, &kll_pm, &dcs);

    // Phase 3: a burst of high-priced orders arrives.
    for _ in 0..25_000 {
        let price = (14_000.0 + 500.0 * rng.gen::<f64>()).round();
        live.push(price);
        kll_pm.insert(price);
        dcs.insert(price);
    }
    report("after burst", &mut live, &kll_pm, &dcs);

    println!(
        "\nmemory: KLL± {} bytes, DCS {} bytes, exact {} bytes\n\
         The turnstile model costs real space (DCS keeps log(u) Count-Sketch\n\
         tables) — the reason the paper's evaluation sticks to cash-register\n\
         sketches (§5.1).",
        kll_pm.memory_footprint(),
        dcs.memory_footprint(),
        live.len() * 8,
    );
}

//! Quickstart: feed the same stream to all five sketches and compare their
//! quantile estimates against the exact values.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quantile_sketches::{
    DataSet, DdSketch, ExactQuantiles, KllSketch, MomentsSketch, QuantileSketch, RankAccuracy,
    ReqSketch, UddSketch,
};

fn main() {
    let n = 1_000_000;
    println!("Streaming {n} NYT-style taxi fares through all five sketches...\n");

    // One shared pass over the data: a real pipeline would insert into all
    // sketches as events arrive.
    let mut gen = DataSet::Nyt.generator(42, 50);
    let mut exact = ExactQuantiles::with_capacity(n);
    let mut kll = KllSketch::paper_configuration();
    let mut moments = MomentsSketch::paper_configuration();
    let mut dds = DdSketch::paper_configuration();
    let mut udds = UddSketch::paper_configuration();
    let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 42);

    use quantile_sketches::ValueStream;
    for _ in 0..n {
        let v = gen.next_value();
        exact.insert(v);
        kll.insert(v);
        moments.insert(v);
        dds.insert(v);
        udds.insert(v);
        req.insert(v);
    }

    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "q", "exact", "KLL", "Moments", "DDS", "UDDS", "REQ"
    );
    for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99] {
        let truth = exact.query(q).unwrap();
        let fmt = |r: Result<f64, _>| match r {
            Ok(v) => format!("{v:.3}"),
            Err(_) => "n/a".to_string(),
        };
        println!(
            "{q:>6}  {truth:>10.3}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            fmt(kll.query(q)),
            fmt(moments.query(q)),
            fmt(dds.query(q)),
            fmt(udds.query(q)),
            fmt(req.query(q)),
        );
    }

    println!("\nSketch memory (bytes) vs raw data ({} bytes):", n * 8);
    for (name, bytes) in [
        ("KLL", kll.memory_footprint()),
        ("Moments", moments.memory_footprint()),
        ("DDSketch", dds.memory_footprint()),
        ("UDDSketch", udds.memory_footprint()),
        ("ReqSketch", req.memory_footprint()),
    ] {
        println!("  {name:<10} {bytes:>8}  ({:.5}% of raw)", bytes as f64 / (n as f64 * 8.0) * 100.0);
    }
}

//! End-to-end tests over real TCP: a server on an ephemeral port, real
//! clients, hostile bytes, quota isolation, and checkpoint/recovery.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qsketch_kll::KllSketch;
use qsketch_server::client::{Client, ClientError};
use qsketch_server::config::{ServerConfig, SERVER_SKETCH_SEED};
use qsketch_server::protocol::{ErrorCode, Request, Response, MAX_FRAME};
use qsketch_server::server::{spawn_core, Server, ServerCore};

fn kll_factory() -> impl Fn() -> KllSketch + Clone + Send {
    || KllSketch::with_seed(200, SERVER_SKETCH_SEED)
}

fn start(config: &ServerConfig) -> (Server, Arc<ServerCore<KllSketch>>) {
    let core = Arc::new(
        spawn_core(config.engine_config(), kll_factory(), config.recover).unwrap(),
    );
    let server = Server::start("127.0.0.1:0", Arc::clone(&core)).unwrap();
    (server, core)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qsketch-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_session_over_tcp() {
    let (server, _core) = start(&ServerConfig::new("unused").with_shards(2));
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.hello().unwrap(), qsketch_server::protocol::PROTOCOL_VERSION);
    client.ping().unwrap();

    let values: Vec<f64> = (1..=5_000).map(f64::from).collect();
    assert_eq!(client.ingest("acme", "api.latency", &values).unwrap(), 5_000);
    assert_eq!(client.ingest("acme", "db.latency", &values).unwrap(), 5_000);
    client.flush().unwrap();

    let (estimates, count) = client.query("acme", "api.latency", &[0.5, 0.99]).unwrap();
    assert_eq!(count, 5_000);
    assert!((estimates[0] - 2_500.0).abs() <= 100.0, "{estimates:?}");

    let (grid, count) = client.cdf("acme", "api.latency", 20).unwrap();
    assert_eq!(count, 5_000);
    assert_eq!(grid.len(), 20);
    assert!(grid.windows(2).all(|w| w[0].1 <= w[1].1));

    let (_, merged_count, merged_keys) =
        client.merged_query("acme", "", &[0.5]).unwrap();
    assert_eq!(merged_count, 10_000);
    assert_eq!(merged_keys, 2);

    let stats = client.stats().unwrap();
    assert_eq!(stats.events, 10_000);
    assert_eq!(stats.keys, 2);

    // A second concurrent connection sees the same data.
    let mut other = Client::connect(&addr).unwrap();
    let (_, count) = other.query("acme", "db.latency", &[0.5]).unwrap();
    assert_eq!(count, 5_000);

    drop(server); // Drop = request_shutdown + join.
}

#[test]
fn shutdown_op_stops_the_server() {
    let (server, _core) = start(&ServerConfig::new("unused").with_shards(1));
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.ingest("t", "k", &[1.0, 2.0]).unwrap();
    client.shutdown().unwrap();
    server.join();
    // New connections are refused or die immediately.
    let refused = match Client::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => true,
        Ok(mut c) => c.ping().is_err(),
    };
    assert!(refused, "server still answering after shutdown");
}

#[test]
fn hostile_bytes_get_typed_errors_and_do_not_kill_the_server() {
    let (server, _core) = start(&ServerConfig::new("unused").with_shards(1));
    let addr = server.local_addr();

    // 1. A syntactically valid frame holding garbage: BadRequest, and
    //    the same connection keeps working afterwards.
    let mut raw = TcpStream::connect(addr).unwrap();
    let garbage = [0xDEu8, 0xAD, 0xBE, 0xEF, 0x00];
    raw.write_all(&(garbage.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&garbage).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut payload).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("{other:?}"),
    }
    let ping = Request::Ping.encode();
    raw.write_all(&(ping.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&ping).unwrap();
    raw.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut payload).unwrap();
    assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);

    // 2. An oversized frame header: error response, then disconnect —
    //    but the server survives.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes()).unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap(); // server answers then closes
    assert!(buf.len() > 4, "expected an error frame before close");

    // 3. A truncated frame (client dies mid-frame): server just drops it.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[1, 2, 3]).unwrap();
    drop(raw);

    // The server is still healthy.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    drop(server);
}

#[test]
fn noisy_tenant_is_rejected_while_quiet_tenant_stays_fast() {
    let config = ServerConfig::new("unused")
        .with_shards(2)
        .with_tenant_quota("noisy", 5_000.0);
    let (server, _core) = start(&config);
    let addr = server.local_addr().to_string();

    let mut noisy = Client::connect(&addr).unwrap();
    let mut quiet = Client::connect(&addr).unwrap();

    // The noisy tenant tries to push 100k values instantly; its quota
    // (5k/s, 5k burst) rejects most batches with a retry hint.
    let batch = vec![1.0f64; 1_000];
    let mut rejected = 0u32;
    let mut retry_hint = 0u64;
    for _ in 0..100 {
        match noisy.ingest("noisy", "spam", &batch) {
            Ok(_) => {}
            Err(ClientError::Server {
                code: ErrorCode::QuotaExceeded,
                retry_after_ms,
                ..
            }) => {
                rejected += 1;
                retry_hint = retry_hint.max(retry_after_ms);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(rejected >= 90, "only {rejected}/100 rejected");
    assert!(retry_hint > 0);

    // Meanwhile the quiet tenant's ingests all succeed, and stay fast:
    // rejection happens before the queues, so the noisy tenant cannot
    // inflate the quiet tenant's ingest latency.
    let mut worst = Duration::ZERO;
    for i in 0..200 {
        let start = Instant::now();
        quiet.ingest("quiet", "k", &[f64::from(i)]).unwrap();
        worst = worst.max(start.elapsed());
    }
    assert!(
        worst < Duration::from_millis(250),
        "quiet tenant p100 ingest latency {worst:?}"
    );
    quiet.flush().unwrap();
    let (_, count) = quiet.query("quiet", "k", &[0.5]).unwrap();
    assert_eq!(count, 200);

    let stats = quiet.stats().unwrap();
    assert_eq!(stats.quota_rejected, u64::from(rejected));
    assert_eq!(stats.rejected_by_tenant, vec![("noisy".to_string(), u64::from(rejected))]);
    drop(server);
}

#[test]
fn checkpoint_recover_answers_bit_identically() {
    let dir = tmp_dir("recover");
    let config = ServerConfig::new("unused")
        .with_shards(3)
        .with_checkpoint_dir(&dir);

    // First life: ingest, checkpoint, remember bit-exact answers.
    let (server, _core) = start(&config);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for key in ["a", "b", "c", "d"] {
        let values: Vec<f64> = (0..3_000)
            .map(|i| ((i * 2_654_435_761_u64 % 100_000) as f64) / 7.0)
            .collect();
        client.ingest("acme", key, &values).unwrap();
    }
    client.checkpoint().unwrap();
    let qs = [0.01, 0.25, 0.5, 0.75, 0.99, 1.0];
    let mut expected = Vec::new();
    for key in ["a", "b", "c", "d"] {
        let (values, count) = client.query("acme", key, &qs).unwrap();
        assert_eq!(count, 3_000);
        expected.push(values.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }
    client.shutdown().unwrap();
    server.join();

    // Second life: recover from the checkpoints, same answers, bit for
    // bit — including the merged query.
    let (server, _core) = start(&config.clone().with_recover(true));
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
        let (values, count) = client.query("acme", key, &qs).unwrap();
        assert_eq!(count, 3_000, "key {key}");
        let got: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected[i], "key {key}");
    }
    let (_, count, merged_keys) = client.merged_query("acme", "", &[0.5]).unwrap();
    assert_eq!(count, 12_000);
    assert_eq!(merged_keys, 4);

    // And the recovered server keeps accepting new data.
    client.ingest("acme", "a", &[1.0]).unwrap();
    client.flush().unwrap();
    let (_, count) = client.query("acme", "a", &[0.5]).unwrap();
    assert_eq!(count, 3_001);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

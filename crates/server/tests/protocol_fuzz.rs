//! Deterministic mutation fuzz of the wire protocol: every decode of
//! hostile bytes must return a typed error or a valid value — never
//! panic, never allocate unboundedly. Mirrors the `DecodeError`
//! contract the sketch codecs uphold.

use qsketch_server::protocol::{
    batch_header_into, push_batch_op, BatchView, Request, RequestView, Response, MAX_FRAME,
};

/// SplitMix64 — tiny deterministic generator for mutation fuzzing.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::Hello {
            min_version: 1,
            max_version: 1,
        },
        Request::Ingest {
            tenant: "tenant-with-a-long-name".into(),
            key: "api.checkout.latency.p99".into(),
            values: (0..64).map(f64::from).collect(),
        },
        Request::Query {
            tenant: "t".into(),
            key: "k".into(),
            qs: vec![0.01, 0.5, 0.99],
        },
        Request::Cdf {
            tenant: "t".into(),
            key: "k".into(),
            points: 1000,
        },
        Request::MergedQuery {
            tenant: "t".into(),
            prefix: "api.".into(),
            qs: vec![0.5],
        },
        Request::Flush,
        Request::Stats,
        Request::Shutdown,
    ];
    let responses = [
        Response::HelloOk {
            version: 1,
            server: "qsketch-server/0.1.0".into(),
        },
        Response::QueryOk {
            values: vec![1.0, 2.0, 3.0],
            count: 1_000_000,
        },
        Response::CdfOk {
            qs: (1..=100).map(|i| f64::from(i) / 100.0).collect(),
            values: (1..=100).map(f64::from).collect(),
            count: 42,
        },
        Response::StatsOk(qsketch_server::protocol::ServerStats {
            events: u64::MAX,
            keys: 3,
            shards: 16,
            quota_rejected: 9,
            rejected_by_tenant: vec![("a".into(), 1), ("b".into(), 8)],
        }),
    ];
    // v3 batch envelopes (request- and response-side) join the corpus so
    // the mutation passes also chew on the envelope framing.
    let mut batch_req = Vec::new();
    batch_header_into(3, false, &mut batch_req);
    for request in requests.iter().take(3) {
        push_batch_op(&request.encode(), &mut batch_req);
    }
    let mut batch_resp = Vec::new();
    batch_header_into(responses.len(), true, &mut batch_resp);
    for response in &responses {
        push_batch_op(&response.encode(), &mut batch_resp);
    }
    requests
        .iter()
        .map(Request::encode)
        .chain(responses.iter().map(Response::encode))
        .chain([batch_req, batch_resp])
        .collect()
}

/// Decoding must be total: typed error or valid value, never a panic.
/// (The call itself is the assertion — a panic fails the test.) Both
/// decoders — owned and borrowed — plus the batch-envelope walkers get
/// the same bytes, and wherever the borrowed decoder succeeds it must
/// agree with the owned one (they share one grammar by construction;
/// this pins it).
fn assert_total(bytes: &[u8]) {
    let owned = Request::decode(bytes);
    let view = RequestView::decode(bytes);
    match (owned, view) {
        // Compare via re-encode: fuzzed frames can carry NaN values,
        // which break `==` while still being the same bits on the wire.
        (Ok(owned), Ok(view)) => assert_eq!(owned.encode(), view.to_owned().encode()),
        (Err(_), Err(_)) => {}
        (owned, view) => panic!(
            "owned/borrowed decoders disagree on {} bytes: owned={owned:?} view={view:?}",
            bytes.len()
        ),
    }
    let _ = Response::decode(bytes);
    if let Ok(batch) = BatchView::decode_request(bytes) {
        for inner in batch.ops() {
            let _ = RequestView::decode(inner);
        }
    }
    if let Ok(batch) = BatchView::decode_response(bytes) {
        for inner in batch.ops() {
            let _ = Response::decode(inner);
        }
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = SplitMix(0xFEED_FACE);
    for len in 0..=256 {
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        assert_total(&bytes);
    }
}

#[test]
fn single_byte_mutations_of_valid_payloads_never_panic() {
    for payload in corpus() {
        for pos in 0..payload.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = payload.clone();
                mutated[pos] ^= flip;
                assert_total(&mutated);
            }
        }
    }
}

#[test]
fn random_truncations_and_extensions_never_panic() {
    let mut rng = SplitMix(0xD1CE);
    for payload in corpus() {
        for cut in 0..payload.len() {
            assert_total(&payload[..cut]);
        }
        for _ in 0..32 {
            let mut extended = payload.clone();
            let extra = 1 + rng.below(16);
            for _ in 0..extra {
                extended.push(rng.next() as u8);
            }
            assert_total(&extended);
        }
    }
}

#[test]
fn random_splices_never_panic() {
    // Swap random chunks between pairs of valid payloads — shapes that
    // pass the header check but go wrong deeper in the body.
    let corpus = corpus();
    let mut rng = SplitMix(0x5EED);
    for _ in 0..2_000 {
        let a = &corpus[rng.below(corpus.len())];
        let b = &corpus[rng.below(corpus.len())];
        let cut_a = rng.below(a.len() + 1);
        let cut_b = rng.below(b.len() + 1);
        let mut spliced = a[..cut_a].to_vec();
        spliced.extend_from_slice(&b[cut_b..]);
        assert_total(&spliced);
    }
}

#[test]
fn borrowed_and_owned_views_are_equivalent_on_valid_frames() {
    // On every valid corpus payload the two decoders agree, and the
    // borrowed encoder reproduces the owned encoder's bytes exactly.
    for payload in corpus() {
        if let Ok(request) = Request::decode(&payload) {
            let view = RequestView::decode(&payload).expect("owned decoded, view must too");
            assert_eq!(request, view.to_owned());
            let mut re = Vec::new();
            view.encode_into(&mut re);
            assert_eq!(re, payload, "borrowed re-encode must be byte-identical");
            assert_eq!(request.view().to_owned(), request);
        }
    }
}

#[test]
fn batch_envelopes_round_trip_through_the_walker() {
    let mut envelope = Vec::new();
    let ops = [
        Request::Ping,
        Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: vec![1.0, 2.0, 3.0],
        },
        Request::Flush,
    ];
    batch_header_into(ops.len(), false, &mut envelope);
    for op in &ops {
        push_batch_op(&op.encode(), &mut envelope);
    }
    let batch = BatchView::decode_request(&envelope).expect("valid envelope");
    assert_eq!(batch.len(), ops.len());
    for (inner, expected) in batch.ops().zip(&ops) {
        assert_eq!(&Request::decode(inner).expect("inner decodes"), expected);
    }
}

#[test]
fn declared_lengths_cannot_force_allocation() {
    // Hand-build payloads whose varint length fields claim up to 2^63
    // bytes; decode must reject via bounds, instantly.
    use qsketch_core::codec::Writer;
    for declared in [
        MAX_FRAME as u64 + 1,
        u64::from(u32::MAX),
        1 << 40,
        1 << 62,
    ] {
        let mut w = Writer::with_header(0x51, 1);
        w.u8(0x02); // Ingest
        w.varint(declared); // tenant length claims `declared` bytes
        let payload = w.finish();
        assert!(Request::decode(&payload).is_err());
    }
}

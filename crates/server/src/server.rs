//! The server itself: a pure request handler ([`ServerCore`]) over a
//! [`KeyedEngine`], and the thread-per-connection TCP front end
//! ([`Server`]) that frames it.
//!
//! The split is deliberate: every protocol decision (validation, error
//! mapping, version negotiation) lives in [`ServerCore::serve_frame`],
//! which takes a raw frame payload and appends the encoded response
//! frame(s) to a caller-owned buffer with no IO at all — directly
//! unit-testable. The TCP layer only moves bytes:
//!
//! ```text
//! accept loop ──▶ one thread per connection
//!                   loop { read_frame_into → core.serve_frame → write_all }
//! ```
//!
//! # Zero-allocation data plane
//!
//! The steady-state ingest path performs **no heap allocation per
//! frame** (proved by `tests/alloc_gate.rs`):
//!
//! * the connection reuses one payload buffer across frames
//!   ([`read_frame_into`](crate::protocol::read_frame_into)) and one
//!   response buffer per write cycle,
//! * requests are decoded **borrowed**
//!   ([`RequestView`]): ingest values
//!   stay raw little-endian wire bytes and feed
//!   [`KeyedEngine::ingest_le`] directly,
//! * the engine carries batches in recycled
//!   [`BufferPool`](qsketch_core::pool::BufferPool) buffers that return
//!   to the pool when the shard worker drains them.
//!
//! Responses are *corked*: `serve_frame` appends complete frames to the
//! output buffer and the connection thread issues one `write_all` per
//! read frame — for a v3 [`Batch`](crate::protocol::op::BATCH)
//! envelope, all inner responses leave in a single syscall.
//!
//! Queries run on the connection thread against the engine's wait-free
//! epoch snapshots ([`KeyedEngine::query`] /
//! [`KeyedEngine::query_prefix`] returning a `SnapshotHandle`), so a
//! slow query never blocks ingestion — and ingestion never blocks a
//! query. Snapshots are published every `epoch_interval` values per
//! shard; a client that needs read-your-writes sends `Flush` first
//! (which drains the rings and forces a publication).
//!
//! Shutdown is graceful and durable: the `Shutdown` op (or
//! [`Server::request_shutdown`]) stops the accept loop, connection
//! threads notice within their read-timeout tick, and the binary then
//! drains the engine and writes a final checkpoint before exiting.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use qsketch_core::alloccount;
use qsketch_core::codec::SketchSerialize;
use qsketch_core::flatwire::SketchView;
use qsketch_core::metrics::{LogHistogram, MetricsRegistry};
use qsketch_core::sketch::{MergeableSketch, SketchFactory};
use qsketch_core::SketchError;
use qsketch_streamsim::builder::KeyedEngineBuilder;
use qsketch_streamsim::keyed_engine::{KeyedEngine, KeyedEngineError};

use crate::protocol::{
    batch_header_into, begin_frame, end_frame, is_batch_request, push_batch_op, write_frame,
    BatchView, ErrorCode, F64s, Request, RequestView, Response, ServerStats, PROTOCOL_VERSION,
};

/// Server software identifier sent in `HelloOk`.
pub const SERVER_NAME: &str = concat!("qsketch-server/", env!("CARGO_PKG_VERSION"));

/// How often an idle connection thread checks the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(200);

/// What [`ServerCore::serve_frame`] tells the connection loop to do
/// after the corked response bytes are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Keep reading frames from this connection.
    Continue,
    /// The frame was a `Shutdown` op: write the response, then stop the
    /// server.
    Shutdown,
}

/// The protocol brain: maps every frame to its response frame(s)
/// against a [`KeyedEngine`]. No IO; fully unit-testable.
pub struct ServerCore<S> {
    engine: KeyedEngine<S>,
    checkpointing: bool,
    /// Heap allocations observed per served frame (only meaningful when
    /// the counting test allocator is installed; records 0 otherwise).
    allocs_per_frame: Option<LogHistogram>,
}

impl<S> ServerCore<S>
where
    S: MergeableSketch + SketchSerialize + SketchView + Clone + Send + 'static,
{
    /// Wrap an engine. `checkpointing` gates the `Checkpoint` op (and
    /// the final checkpoint on shutdown); pass `true` only when the
    /// engine was spawned with a checkpoint config.
    pub fn new(engine: KeyedEngine<S>, checkpointing: bool) -> Self {
        Self {
            engine,
            checkpointing,
            allocs_per_frame: None,
        }
    }

    /// Register the server-side data-plane metrics under `prefix`:
    /// `{prefix}.allocs_per_frame` (histogram of heap allocations per
    /// served frame, counted by
    /// [`alloccount`] when its test allocator
    /// is installed — 0 in production builds). The engine's pool
    /// metrics (`{engine_prefix}.batch.pool_miss` / `.bytes_pooled`)
    /// are registered by the engine builder's `metrics(..)` call.
    pub fn instrument(mut self, registry: &MetricsRegistry, prefix: &str) -> Self {
        self.allocs_per_frame = Some(registry.histogram(&format!("{prefix}.allocs_per_frame")));
        self
    }

    /// The engine behind this core (for stats and tests).
    pub fn engine(&self) -> &KeyedEngine<S> {
        &self.engine
    }

    /// Drain and durably checkpoint (used on graceful shutdown). A
    /// no-op when checkpointing is disabled.
    pub fn final_checkpoint(&self) -> Result<(), KeyedEngineError> {
        if self.checkpointing {
            self.engine.checkpoint_now()
        } else {
            Ok(())
        }
    }

    fn err(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            retry_after_ms: 0,
            message: message.into(),
        }
    }

    /// Handle one request. Never panics; every failure becomes a typed
    /// [`Response::Error`].
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Hello {
                min_version,
                max_version,
            } => {
                if min_version > PROTOCOL_VERSION || max_version < 1 || min_version > max_version
                {
                    return Self::err(
                        ErrorCode::UnsupportedVersion,
                        format!(
                            "server speaks versions 1..={PROTOCOL_VERSION}, \
                             client offered {min_version}..={max_version}"
                        ),
                    );
                }
                Response::HelloOk {
                    version: max_version.min(PROTOCOL_VERSION),
                    server: SERVER_NAME.to_string(),
                }
            }
            Request::Ingest {
                tenant,
                key,
                values,
            } => self.ingest_response(&tenant, &key, &F64s::Slice(&values)),
            Request::Query { tenant, key, qs } => match self.engine.query(&tenant, &key) {
                Err(KeyedEngineError::UnknownKey { tenant, key }) => Self::err(
                    ErrorCode::UnknownKey,
                    format!("no sketch for tenant {tenant}, key {key}"),
                ),
                Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
                Ok(snap) => match (snap.quantiles(&qs), snap.count()) {
                    (Ok(values), Ok(count)) => Response::QueryOk { values, count },
                    (Err(e), _) => Self::err(ErrorCode::BadRequest, e.to_string()),
                    (_, Err(e)) => Self::err(ErrorCode::Internal, e.to_string()),
                },
            },
            Request::Cdf {
                tenant,
                key,
                points,
            } => match self.engine.query(&tenant, &key) {
                Err(KeyedEngineError::UnknownKey { tenant, key }) => Self::err(
                    ErrorCode::UnknownKey,
                    format!("no sketch for tenant {tenant}, key {key}"),
                ),
                Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
                Ok(snap) => {
                    let qs: Vec<f64> = (1..=points)
                        .map(|i| f64::from(i) / f64::from(points))
                        .collect();
                    match (snap.quantiles(&qs), snap.count()) {
                        (Ok(values), Ok(count)) => Response::CdfOk { qs, values, count },
                        (Err(e), _) | (_, Err(e)) => {
                            Self::err(ErrorCode::Internal, e.to_string())
                        }
                    }
                }
            },
            Request::MergedQuery { tenant, prefix, qs } => {
                // One published part per matching (tenant, key) pair.
                let snap = self.engine.query_prefix(&tenant, &prefix);
                let merged_keys = snap.parts().len() as u64;
                if merged_keys == 0 {
                    return Self::err(
                        ErrorCode::UnknownKey,
                        format!("no key of tenant {tenant} starts with {prefix:?}"),
                    );
                }
                match (snap.quantiles(&qs), snap.count()) {
                    (Ok(values), Ok(count)) => Response::MergedOk {
                        values,
                        count,
                        merged_keys,
                    },
                    (Err(e), _) => Self::err(ErrorCode::BadRequest, e.to_string()),
                    (_, Err(e)) => Self::err(ErrorCode::Internal, e.to_string()),
                }
            }
            Request::Flush => {
                self.engine.drain();
                Response::FlushOk
            }
            Request::Checkpoint => {
                if !self.checkpointing {
                    return Self::err(
                        ErrorCode::Unavailable,
                        "server started without --ckpt-dir; checkpointing disabled",
                    );
                }
                match self.engine.checkpoint_now() {
                    Ok(()) => Response::CheckpointOk,
                    Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
                }
            }
            Request::Stats => {
                let stats = self.engine.stats();
                Response::StatsOk(ServerStats {
                    events: stats.events_ingested,
                    keys: stats.keys,
                    shards: stats.shards,
                    quota_rejected: stats.quota_rejected_batches,
                    rejected_by_tenant: stats.quota_rejected_by_tenant,
                })
            }
            Request::Ping => Response::Pong,
            Request::Shutdown => Response::ShutdownOk,
            Request::RangeQuery {
                tenant,
                key,
                t0,
                t1,
                qs,
            } => match self.engine.range_query_quantiles(&tenant, &key, t0, t1, &qs) {
                // A range covering no stored slot is an empty (not
                // erroneous) answer: the data may have aged out. Ranges
                // resolved by a single spilled slot are answered from the
                // slot file's bytes without rehydrating the sketch.
                Ok(answer) => Response::RangeOk {
                    values: answer.values,
                    count: answer.count,
                    merged_slots: answer.merged_slots as u64,
                },
                Err(KeyedEngineError::Sketch(SketchError::Query(e))) => {
                    Self::err(ErrorCode::BadRequest, e.to_string())
                }
                Err(KeyedEngineError::RollupDisabled) => Self::err(
                    ErrorCode::Unavailable,
                    "server started without rollups; range queries disabled",
                ),
                Err(KeyedEngineError::UnknownKey { tenant, key }) => Self::err(
                    ErrorCode::UnknownKey,
                    format!("no rollup state for tenant {tenant}, key {key}"),
                ),
                Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
            },
        }
    }

    /// Shared ingest mapping for the owned and borrowed decode paths.
    /// With [`F64s::Le`] values, the wire bytes feed
    /// [`KeyedEngine::ingest_le`] directly — no intermediate `Vec`.
    fn ingest_response(&self, tenant: &str, key: &str, values: &F64s<'_>) -> Response {
        if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
            return Self::err(
                ErrorCode::BadRequest,
                format!("non-finite value {bad} in ingest batch"),
            );
        }
        let result = match values {
            F64s::Le(bytes) => self.engine.ingest_le(tenant, key, bytes),
            F64s::Slice(slice) => self.engine.ingest(tenant, key, slice),
        };
        match result {
            Ok(accepted) => Response::IngestOk { accepted },
            Err(KeyedEngineError::QuotaExceeded {
                tenant,
                retry_after_ms,
            }) => Response::Error {
                code: ErrorCode::QuotaExceeded,
                retry_after_ms,
                message: format!("tenant {tenant} exceeded its ingest quota"),
            },
            Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
        }
    }

    /// Handle a borrowed request. Ingest is served straight off the
    /// wire bytes (the zero-allocation fast path); every other op —
    /// control plane and queries, which allocate for their answers
    /// anyway — converts to the owned [`Request`] and goes through
    /// [`handle`](Self::handle).
    fn handle_view(&self, view: &RequestView<'_>) -> Response {
        match view {
            RequestView::Ingest {
                tenant,
                key,
                values,
            } => self.ingest_response(tenant, key, values),
            other => self.handle(other.to_owned()),
        }
    }

    /// Serve one raw frame payload: decode (borrowed), dispatch, and
    /// append the complete, length-prefixed response frame(s) to `out`
    /// — the caller writes `out` with a single `write_all` (corked
    /// responses). `scratch` is a reusable buffer for encoding the
    /// inner responses of a v3 batch envelope; both buffers only grow,
    /// so a warmed connection serves ingest frames with zero heap
    /// allocations.
    ///
    /// A v3 batch envelope is answered by one response frame holding a
    /// batch envelope with one inner response per inner request, in
    /// order. `Shutdown` is only honoured as a standalone frame; inside
    /// a batch it maps to a `BadRequest` error response (a pipelined op
    /// must not kill the ops queued behind it).
    pub fn serve_frame(
        &self,
        payload: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
    ) -> FrameOutcome {
        if is_batch_request(payload) {
            return self.serve_batch(payload, out, scratch);
        }
        let at = begin_frame(out);
        let outcome = match RequestView::decode(payload) {
            Ok(RequestView::Shutdown) => {
                Response::ShutdownOk.encode_into(out);
                FrameOutcome::Shutdown
            }
            Ok(view) => {
                self.handle_view(&view).encode_into(out);
                FrameOutcome::Continue
            }
            Err(e) => {
                Self::err(ErrorCode::BadRequest, e.to_string()).encode_into(out);
                FrameOutcome::Continue
            }
        };
        end_frame(out, at);
        outcome
    }

    /// Serve a v3 multi-op envelope (see [`serve_frame`](Self::serve_frame)).
    fn serve_batch(&self, payload: &[u8], out: &mut Vec<u8>, scratch: &mut Vec<u8>) -> FrameOutcome {
        let at = begin_frame(out);
        match BatchView::decode_request(payload) {
            Err(e) => {
                Self::err(ErrorCode::BadRequest, e.to_string()).encode_into(out);
            }
            Ok(batch) => {
                batch_header_into(batch.len(), true, out);
                for inner in batch.ops() {
                    scratch.clear();
                    // The envelope walk already validated each inner
                    // payload's header shape; per-op decode failures
                    // poison only that op's slot.
                    let response = match RequestView::decode(inner) {
                        Ok(RequestView::Shutdown) => Self::err(
                            ErrorCode::BadRequest,
                            "shutdown is not allowed inside a batch",
                        ),
                        Ok(view) => self.handle_view(&view),
                        Err(e) => Self::err(ErrorCode::BadRequest, e.to_string()),
                    };
                    response.encode_into(scratch);
                    push_batch_op(scratch, out);
                }
            }
        }
        end_frame(out, at);
        FrameOutcome::Continue
    }

    /// Record one served frame's allocation delta (no-op when
    /// uninstrumented).
    fn note_frame_allocs(&self, allocs: u64) {
        if let Some(h) = &self.allocs_per_frame {
            h.record(allocs);
        }
    }
}

/// A running TCP server: accept thread + one thread per connection.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 = ephemeral) and start serving `core`.
    pub fn start<S>(addr: &str, core: Arc<ServerCore<S>>) -> io::Result<Self>
    where
        S: MergeableSketch + SketchSerialize + SketchView + Clone + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("qsketch-accept".into())
            .spawn(move || {
                let mut connections: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let conn_core = Arc::clone(&core);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    let wake_addr = local;
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("qsketch-conn".into())
                        .spawn(move || {
                            handle_connection(stream, conn_core, conn_shutdown, wake_addr)
                        })
                    {
                        connections.push(handle);
                    }
                    connections.retain(|h| !h.is_finished());
                }
                for handle in connections {
                    let _ = handle.join();
                }
            })?;
        Ok(Self {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown was requested (by op or by
    /// [`request_shutdown`](Self::request_shutdown)).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the server to stop accepting and wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
    }

    /// Block until the accept loop and every connection thread exit.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Unblock a blocking `accept` by connecting and immediately dropping.
fn wake_accept(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

/// Read exactly `buf.len()` bytes, tolerating read-timeout ticks so the
/// shutdown flag is observed on idle connections. Returns `Ok(false)` on
/// clean EOF before the first byte (only when `mid_frame` is false) or
/// on shutdown while idle; mid-frame EOF is an error.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    mid_frame: bool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && !mid_frame {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) && filled == 0 && !mid_frame {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn handle_connection<S>(
    mut stream: TcpStream,
    core: Arc<ServerCore<S>>,
    shutdown: Arc<AtomicBool>,
    wake_addr: SocketAddr,
) where
    S: MergeableSketch + SketchSerialize + SketchView + Clone + Send + Sync + 'static,
{
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    // Per-connection reusable buffers: after a few frames these reach
    // their high-water capacity and the read → serve → write cycle
    // stops allocating entirely.
    let mut payload: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    loop {
        // Frame header (interruptible so idle connections see shutdown).
        let mut header = [0u8; 4];
        match read_exact_interruptible(&mut stream, &mut header, &shutdown, false) {
            Ok(true) => {}
            Ok(false) | Err(_) => break,
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > crate::protocol::MAX_FRAME {
            // Cannot resynchronise after refusing to read the payload:
            // answer and drop the connection.
            let resp = Response::Error {
                code: ErrorCode::BadRequest,
                retry_after_ms: 0,
                message: format!(
                    "frame declares {len} bytes (limit {})",
                    crate::protocol::MAX_FRAME
                ),
            };
            let _ = write_frame(&mut stream, &resp.encode());
            break;
        }
        payload.clear();
        payload.resize(len, 0);
        match read_exact_interruptible(&mut stream, &mut payload, &shutdown, true) {
            Ok(true) => {}
            Ok(false) | Err(_) => break,
        }
        // Framing is intact from here on, so a payload that fails to
        // decode only poisons this request, not the connection.
        out.clear();
        let allocs_before = alloccount::thread_allocs();
        let outcome = core.serve_frame(&payload, &mut out, &mut scratch);
        core.note_frame_allocs(alloccount::thread_allocs() - allocs_before);
        // Corked write: every response frame this cycle produced leaves
        // in one syscall.
        if stream.write_all(&out).is_err() {
            break;
        }
        if outcome == FrameOutcome::Shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake_accept(wake_addr);
            break;
        }
    }
}

/// Spawn a [`ServerCore`] directly from an engine config and factory,
/// recovering from checkpoints if asked. This is the binary's
/// startup path, shared with the in-process bench harness.
pub fn spawn_core<S, F>(
    engine_config: qsketch_streamsim::keyed_engine::KeyedEngineConfig,
    factory: F,
    recover: bool,
) -> Result<ServerCore<S>, KeyedEngineError>
where
    S: MergeableSketch + SketchSerialize + SketchView + Clone + Send + 'static,
    F: SketchFactory<Sketch = S> + Clone + Send + 'static,
{
    let checkpointing = engine_config.checkpoint.is_some();
    let builder = KeyedEngineBuilder::from_config(engine_config);
    let engine = if recover {
        builder.recover(factory)?
    } else {
        builder.spawn(factory)?
    };
    Ok(ServerCore::new(engine, checkpointing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_kll::KllSketch;
    use qsketch_streamsim::builder::EngineBuilder;
    use qsketch_streamsim::keyed_engine::TenantQuota;

    fn core() -> ServerCore<KllSketch> {
        let engine = EngineBuilder::keyed(2)
            .spawn(|| KllSketch::with_seed(200, 7))
            .unwrap();
        ServerCore::new(engine, false)
    }

    #[test]
    fn hello_negotiates_highest_common_version() {
        let core = core();
        match core.handle(Request::Hello {
            min_version: 1,
            max_version: 9,
        }) {
            Response::HelloOk { version, server } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert!(server.starts_with("qsketch-server/"));
            }
            other => panic!("{other:?}"),
        }
        match core.handle(Request::Hello {
            min_version: 42,
            max_version: 99,
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ingest_then_query_round_trips() {
        let core = core();
        let values: Vec<f64> = (1..=1_000).map(f64::from).collect();
        match core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values,
        }) {
            Response::IngestOk { accepted } => assert_eq!(accepted, 1_000),
            other => panic!("{other:?}"),
        }
        assert_eq!(core.handle(Request::Flush), Response::FlushOk);
        match core.handle(Request::Query {
            tenant: "t".into(),
            key: "k".into(),
            qs: vec![0.5],
        }) {
            Response::QueryOk { values, count } => {
                assert_eq!(count, 1_000);
                assert!((values[0] - 500.0).abs() <= 20.0, "{values:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_key_bad_quantile_and_nan_are_typed_errors() {
        let core = core();
        match core.handle(Request::Query {
            tenant: "ghost".into(),
            key: "k".into(),
            qs: vec![0.5],
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownKey),
            other => panic!("{other:?}"),
        }
        core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: vec![1.0],
        });
        core.handle(Request::Flush);
        match core.handle(Request::Query {
            tenant: "t".into(),
            key: "k".into(),
            qs: vec![1.5],
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("{other:?}"),
        }
        match core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: vec![f64::NAN],
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cdf_returns_monotone_grid() {
        let core = core();
        core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: (1..=10_000).map(f64::from).collect(),
        });
        core.handle(Request::Flush);
        match core.handle(Request::Cdf {
            tenant: "t".into(),
            key: "k".into(),
            points: 10,
        }) {
            Response::CdfOk { qs, values, count } => {
                assert_eq!(qs.len(), 10);
                assert_eq!(values.len(), 10);
                assert_eq!(count, 10_000);
                assert_eq!(qs[0], 0.1);
                assert_eq!(qs[9], 1.0);
                assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merged_query_spans_prefix() {
        let core = core();
        for key in ["api.a", "api.b", "db.c"] {
            core.handle(Request::Ingest {
                tenant: "t".into(),
                key: key.into(),
                values: (1..=100).map(f64::from).collect(),
            });
        }
        core.handle(Request::Flush);
        match core.handle(Request::MergedQuery {
            tenant: "t".into(),
            prefix: "api.".into(),
            qs: vec![0.5],
        }) {
            Response::MergedOk {
                count, merged_keys, ..
            } => {
                assert_eq!(count, 200);
                assert_eq!(merged_keys, 2);
            }
            other => panic!("{other:?}"),
        }
        match core.handle(Request::MergedQuery {
            tenant: "t".into(),
            prefix: "nope.".into(),
            qs: vec![0.5],
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownKey),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quota_maps_to_wire_error_with_retry_hint() {
        let engine = EngineBuilder::keyed(1)
            .tenant_quota("noisy", TenantQuota::per_sec(10.0).with_burst(10.0))
            .spawn(|| KllSketch::with_seed(200, 7))
            .unwrap();
        let core = ServerCore::new(engine, false);
        core.handle(Request::Ingest {
            tenant: "noisy".into(),
            key: "k".into(),
            values: vec![1.0; 10],
        });
        match core.handle(Request::Ingest {
            tenant: "noisy".into(),
            key: "k".into(),
            values: vec![1.0; 10],
        }) {
            Response::Error {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, ErrorCode::QuotaExceeded);
                assert!(retry_after_ms > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checkpoint_without_dir_is_unavailable() {
        let core = core();
        match core.handle(Request::Checkpoint) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unavailable),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_query_serves_rollup_slots() {
        use qsketch_streamsim::keyed_engine::RollupOptions;
        use qsketch_streamsim::rollup::TierSpec;
        let engine = EngineBuilder::keyed(2)
            .rollup(RollupOptions::new(
                100,
                vec![
                    TierSpec { width: 1, keep: 8 },
                    TierSpec { width: 4, keep: 8 },
                ],
            ))
            .spawn(|| KllSketch::with_seed(200, 7))
            .unwrap();
        let core = ServerCore::new(engine, false);
        core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: (1..=1_600).map(f64::from).collect(),
        });
        core.handle(Request::Flush);
        match core.handle(Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 0,
            t1: 16,
            qs: vec![0.5],
        }) {
            Response::RangeOk {
                values,
                count,
                merged_slots,
            } => {
                assert_eq!(count, 1_600);
                assert_eq!(merged_slots, 4, "16 windows = 4 tier-1 slots");
                assert!((values[0] - 800.0).abs() <= 40.0, "{values:?}");
            }
            other => panic!("{other:?}"),
        }
        // Beyond the frontier: empty coverage, not an error.
        match core.handle(Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 100,
            t1: 200,
            qs: vec![0.5],
        }) {
            Response::RangeOk { count, .. } => assert_eq!(count, 0),
            other => panic!("{other:?}"),
        }
        match core.handle(Request::RangeQuery {
            tenant: "ghost".into(),
            key: "k".into(),
            t0: 0,
            t1: 16,
            qs: vec![0.5],
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownKey),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_query_without_rollups_is_unavailable() {
        let core = core();
        match core.handle(Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 0,
            t1: 16,
            qs: vec![0.5],
        }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unavailable),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_reflect_ingest() {
        let core = core();
        core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "a".into(),
            values: vec![1.0, 2.0],
        });
        core.handle(Request::Ingest {
            tenant: "t".into(),
            key: "b".into(),
            values: vec![3.0],
        });
        core.handle(Request::Flush);
        match core.handle(Request::Stats) {
            Response::StatsOk(stats) => {
                assert_eq!(stats.events, 3);
                assert_eq!(stats.keys, 2);
                assert_eq!(stats.shards, 2);
            }
            other => panic!("{other:?}"),
        }
    }
}

//! Lazy checkpoint probe: answer quantile queries for one `(tenant,
//! key)` **straight from a server checkpoint directory**, without
//! starting a server and without decoding a single sketch payload
//! (`LazyRegistryRecovery`; FORMATS.md covers the `0xC6` envelope and
//! the zero-copy query contract).
//!
//! ```text
//! ckpt_probe [--sketch SPEC] DIR SHARDS TENANT KEY Q [Q …]
//! ```
//!
//! Prints the same `q=… value=… bits=…` / `count=…` lines as
//! `qsketch_client query`, so a script can diff the two outputs
//! byte-for-byte, followed by a `lazy …` summary line. Exits non-zero
//! if any payload had to be rebuilt (the lazy guarantee is that a
//! read-only probe never rebuilds), if the key is missing, or if the
//! checkpoint set is unreadable — which makes it both an operator tool
//! ("what would the server answer if I recovered right now?") and the
//! CI gate that lazy recovery serves correct answers without a rebuild.

use std::process::ExitCode;

use qsketch_core::codec::SketchSerialize;
use qsketch_core::flatwire::SketchView;
use qsketch_core::sketch::QuantileSketch;
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use qsketch_server::config::ServerSketchSpec;
use qsketch_streamsim::checkpoint::{CheckpointConfig, LazyRegistryRecovery};
use qsketch_uddsketch::UddSketch;

const USAGE: &str = "\
ckpt_probe — query a server checkpoint directory lazily (no rebuild)

USAGE:
    ckpt_probe [--sketch SPEC] DIR SHARDS TENANT KEY Q [Q ...]

    --sketch SPEC   kll[:k] | dds[:alpha] | udds[:alpha:buckets]
                    (default kll:200 — must match the server that
                    wrote the checkpoints)
";

fn run<S>(dir: &str, shards: usize, tenant: &str, key: &str, qs: &[f64]) -> Result<(), String>
where
    S: SketchSerialize + SketchView + QuantileSketch,
{
    let config = CheckpointConfig::new(dir, 1);
    let rec = LazyRegistryRecovery::<S>::open(&config, shards)
        .map_err(|e| format!("opening checkpoint set in {dir}: {e}"))?;
    if rec.is_empty() {
        return Err(format!("no registry checkpoints found in {dir}"));
    }
    for &q in qs {
        let v = rec
            .quantile(tenant, key, q)
            .map_err(|e| format!("quantile q={q} for ({tenant}, {key}): {e}"))?;
        println!("q={q} value={v} bits={:#018x}", v.to_bits());
    }
    let count = rec
        .count(tenant, key)
        .map_err(|e| format!("count for ({tenant}, {key}): {e}"))?;
    println!("count={count}");
    if rec.live_keys() != 0 {
        return Err(format!(
            "lazy guarantee violated: {} of {} keys were rebuilt by a read-only probe",
            rec.live_keys(),
            rec.len()
        ));
    }
    println!(
        "lazy ok: served from checkpoint bytes ({} keys recovered, 0 rebuilt)",
        rec.len()
    );
    Ok(())
}

fn main_inner(args: &[String]) -> Result<(), String> {
    let mut spec = ServerSketchSpec::default();
    let mut rest: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sketch" => {
                let v = it.next().ok_or("--sketch needs a value")?;
                spec = v.parse()?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            _ => rest.push(arg),
        }
    }
    if rest.len() < 5 {
        return Err(USAGE.to_string());
    }
    let dir = rest[0];
    let shards: usize = rest[1]
        .parse()
        .ok()
        .filter(|s| *s > 0)
        .ok_or_else(|| format!("bad shard count {:?}", rest[1]))?;
    let (tenant, key) = (rest[2], rest[3]);
    let qs: Vec<f64> = rest[4..]
        .iter()
        .map(|s| {
            s.parse::<f64>()
                .ok()
                .filter(|q| (0.0..=1.0).contains(q))
                .ok_or_else(|| format!("bad quantile {s:?}"))
        })
        .collect::<Result<_, _>>()?;

    // The sketch type only picks the decoder; the parameters inside the
    // payloads are whatever the writing server used.
    match spec {
        ServerSketchSpec::Kll { .. } => run::<KllSketch>(dir, shards, tenant, key, &qs),
        ServerSketchSpec::Dds { .. } => run::<DdSketch>(dir, shards, tenant, key, &qs),
        ServerSketchSpec::Udds { .. } => run::<UddSketch>(dir, shards, tenant, key, &qs),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match main_inner(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

//! The qsketch server binary. See `OPERATIONS.md` for the runbook.
//!
//! ```text
//! qsketch_server --addr 127.0.0.1:7071 --shards 4 --sketch kll:200 \
//!                --ckpt-dir /var/lib/qsketch --ckpt-interval 1048576 --recover \
//!                --quota free-tier=10000 --default-quota 1000000
//! ```
//!
//! Prints `listening on <addr>` once ready (scripts wait for that
//! line), serves until a client sends the `Shutdown` op, then drains,
//! writes a final checkpoint (when durability is on), and exits 0.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use qsketch_core::codec::SketchSerialize;
use qsketch_core::flatwire::SketchView;
use qsketch_core::sketch::{MergeableSketch, SketchFactory};
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use qsketch_server::config::{ServerConfig, ServerSketchSpec, SERVER_SKETCH_SEED};
use qsketch_server::server::{spawn_core, Server};
use qsketch_uddsketch::UddSketch;

const USAGE: &str = "\
qsketch_server — multi-tenant quantile sketch server

USAGE:
    qsketch_server [OPTIONS]

OPTIONS:
    --addr ADDR            listen address (default 127.0.0.1:7071; port 0 = ephemeral)
    --shards N             shard worker count (default 4)
    --queue-capacity N     per-shard queue capacity in batches (default 256)
    --sketch SPEC          kll[:k] | dds[:alpha] | udds[:alpha:buckets] (default kll:200)
    --ckpt-dir DIR         enable durability: checkpoint registries into DIR
    --ckpt-interval N      values per shard between automatic checkpoints (default 1048576)
    --recover              restore state from DIR's checkpoints at start
    --quota TENANT=RATE    per-tenant ingest quota, events/s (repeatable)
    --default-quota RATE   quota for tenants without an explicit one
    --rollup-window N      enable rollups: values per window per (tenant, key)
    --rollup-tiers SPEC    tier ladder width:keep[,width:keep…] in windows
                           (default 1:16,4:16,16:16)
    --rollup-dir DIR       spill rollup tiers to per-key subdirectories of DIR
    --help                 print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::new("127.0.0.1:7071");
    let mut it = args.iter();
    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = next_value("--addr", &mut it)?,
            "--shards" => {
                config.shards = next_value("--shards", &mut it)?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--shards needs a positive integer")?;
            }
            "--queue-capacity" => {
                config.queue_capacity = next_value("--queue-capacity", &mut it)?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--queue-capacity needs a positive integer")?;
            }
            "--sketch" => {
                config.sketch = next_value("--sketch", &mut it)?.parse()?;
            }
            "--ckpt-dir" => {
                config.checkpoint_dir = Some(next_value("--ckpt-dir", &mut it)?.into());
            }
            "--ckpt-interval" => {
                config.checkpoint_interval = next_value("--ckpt-interval", &mut it)?
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--ckpt-interval needs a positive integer")?;
            }
            "--recover" => config.recover = true,
            "--quota" => {
                let spec = next_value("--quota", &mut it)?;
                let (tenant, rate) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--quota expects TENANT=RATE, got {spec:?}"))?;
                let rate: f64 = rate
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| format!("bad quota rate in {spec:?}"))?;
                config = config.with_tenant_quota(tenant, rate);
            }
            "--default-quota" => {
                let rate = next_value("--default-quota", &mut it)?;
                config.default_quota = Some(
                    rate.parse::<f64>()
                        .ok()
                        .filter(|r| r.is_finite() && *r > 0.0)
                        .ok_or_else(|| format!("bad default quota {rate:?}"))?,
                );
            }
            "--rollup-window" => {
                config.rollup_window = Some(
                    next_value("--rollup-window", &mut it)?
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or("--rollup-window needs a positive integer")?,
                );
            }
            "--rollup-tiers" => {
                config.rollup_tiers =
                    qsketch_server::config::parse_rollup_tiers(&next_value(
                        "--rollup-tiers",
                        &mut it,
                    )?)?;
            }
            "--rollup-dir" => {
                config.rollup_dir = Some(next_value("--rollup-dir", &mut it)?.into());
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    if config.recover && config.checkpoint_dir.is_none() {
        return Err("--recover needs --ckpt-dir".into());
    }
    if config.rollup_window.is_none()
        && (!config.rollup_tiers.is_empty() || config.rollup_dir.is_some())
    {
        return Err("--rollup-tiers/--rollup-dir need --rollup-window".into());
    }
    Ok(config)
}

fn run<S, F>(config: &ServerConfig, factory: F) -> Result<(), String>
where
    S: MergeableSketch + SketchSerialize + SketchView + Clone + Send + Sync + 'static,
    F: SketchFactory<Sketch = S> + Clone + Send + 'static,
{
    let core = Arc::new(
        spawn_core(config.engine_config(), factory, config.recover)
            .map_err(|e| format!("engine startup failed: {e}"))?,
    );
    let server = Server::start(&config.addr, Arc::clone(&core))
        .map_err(|e| format!("bind {} failed: {e}", config.addr))?;
    println!(
        "listening on {} ({}, {} shards{})",
        server.local_addr(),
        config.sketch,
        config.shards,
        if config.checkpoint_dir.is_some() {
            if config.recover {
                ", durable, recovered"
            } else {
                ", durable"
            }
        } else {
            ""
        }
    );
    std::io::stdout().flush().ok();
    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    server.join();
    core.final_checkpoint()
        .map_err(|e| format!("final checkpoint failed: {e}"))?;
    println!("shutdown complete");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match config.sketch {
        ServerSketchSpec::Kll { k } => {
            run(&config, move || KllSketch::with_seed(k, SERVER_SKETCH_SEED))
        }
        ServerSketchSpec::Dds { alpha } => run(&config, move || DdSketch::unbounded(alpha)),
        ServerSketchSpec::Udds { alpha, buckets } => {
            run(&config, move || UddSketch::new(alpha, buckets))
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

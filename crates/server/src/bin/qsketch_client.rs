//! Scriptable CLI client for the qsketch server — the tool `ci/check.sh`
//! drives for the ingest → query → kill → recover → re-query smoke test.
//!
//! Quantile output includes the raw IEEE-754 bit pattern (`bits=0x…`) so
//! scripts can assert bit-identical answers across a recovery without
//! worrying about decimal formatting.

use std::process::ExitCode;

use qsketch_server::client::Client;
use qsketch_server::protocol::{F64s, RequestView, Response};

const USAGE: &str = "\
qsketch_client — CLI for the qsketch server

USAGE:
    qsketch_client ADDR COMMAND [ARGS…]

COMMANDS:
    ping
    ingest TENANT KEY VALUE…
    ingest-seq TENANT KEY START COUNT     ingest START, START+1, …, START+COUNT-1
    query TENANT KEY Q…                   quantile point query
    cdf TENANT KEY POINTS                 discretized CDF grid
    merged TENANT PREFIX Q…               query the merge of a key-prefix range
    range TENANT KEY T0 T1 Q…             rollup range query over windows [T0, T1)
    flush                                 wait until all ingested data is queryable
    checkpoint                            write a durable checkpoint now
    stats
    shutdown                              graceful server shutdown
";

fn parse_f64s(args: &[String], what: &str) -> Result<Vec<f64>, String> {
    if args.is_empty() {
        return Err(format!("need at least one {what}"));
    }
    args.iter()
        .map(|a| {
            a.parse::<f64>()
                .map_err(|_| format!("bad {what} {a:?}"))
        })
        .collect()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.len() < 2 {
        print!("{USAGE}");
        return if args.len() < 2 && !args.iter().any(|a| a == "--help" || a == "-h") {
            Err("need ADDR and COMMAND".into())
        } else {
            Ok(())
        };
    }
    let addr = &args[0];
    let command = args[1].as_str();
    let rest = &args[2..];
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    match command {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
        }
        "ingest" => {
            if rest.len() < 3 {
                return Err("ingest needs TENANT KEY VALUE…".into());
            }
            let values = parse_f64s(&rest[2..], "value")?;
            let accepted = client
                .ingest(&rest[0], &rest[1], &values)
                .map_err(|e| e.to_string())?;
            println!("accepted={accepted}");
        }
        "ingest-seq" => {
            if rest.len() != 4 {
                return Err("ingest-seq needs TENANT KEY START COUNT".into());
            }
            let start: i64 = rest[2].parse().map_err(|_| "bad START")?;
            let count: u64 = rest[3].parse().map_err(|_| "bad COUNT")?;
            // Pipeline up to 16 ingest batches per round trip through the
            // v3 multi-op envelope; one reusable value buffer, borrowed
            // into the ops — no per-batch allocation.
            const BATCH: usize = 4096;
            const PIPELINE: usize = 16;
            let mut sent = 0u64;
            let mut values: Vec<f64> = Vec::with_capacity(BATCH * PIPELINE);
            let mut next = start;
            let mut remaining = count;
            while remaining > 0 {
                let n = remaining.min((BATCH * PIPELINE) as u64);
                values.clear();
                values.extend((0..n).map(|i| (next + i as i64) as f64));
                next += n as i64;
                remaining -= n;
                let ops: Vec<RequestView<'_>> = values
                    .chunks(BATCH)
                    .map(|chunk| RequestView::Ingest {
                        tenant: &rest[0],
                        key: &rest[1],
                        values: F64s::Slice(chunk),
                    })
                    .collect();
                for result in client.call_batch(&ops).map_err(|e| e.to_string())? {
                    match result.map_err(|e| e.to_string())? {
                        Response::IngestOk { accepted } => sent += accepted,
                        other => return Err(format!("unexpected response {other:?}")),
                    }
                }
            }
            println!("accepted={sent}");
        }
        "query" => {
            if rest.len() < 3 {
                return Err("query needs TENANT KEY Q…".into());
            }
            let qs = parse_f64s(&rest[2..], "quantile")?;
            let (values, count) = client
                .query(&rest[0], &rest[1], &qs)
                .map_err(|e| e.to_string())?;
            for (q, v) in qs.iter().zip(&values) {
                println!("q={q} value={v} bits={:#018x}", v.to_bits());
            }
            println!("count={count}");
        }
        "cdf" => {
            if rest.len() != 3 {
                return Err("cdf needs TENANT KEY POINTS".into());
            }
            let points: u32 = rest[2].parse().map_err(|_| "bad POINTS")?;
            let (grid, count) = client
                .cdf(&rest[0], &rest[1], points)
                .map_err(|e| e.to_string())?;
            for (q, v) in &grid {
                println!("q={q} value={v}");
            }
            println!("count={count}");
        }
        "merged" => {
            if rest.len() < 3 {
                return Err("merged needs TENANT PREFIX Q…".into());
            }
            let qs = parse_f64s(&rest[2..], "quantile")?;
            let (values, count, merged_keys) = client
                .merged_query(&rest[0], &rest[1], &qs)
                .map_err(|e| e.to_string())?;
            for (q, v) in qs.iter().zip(&values) {
                println!("q={q} value={v} bits={:#018x}", v.to_bits());
            }
            println!("count={count} merged_keys={merged_keys}");
        }
        "range" => {
            if rest.len() < 5 {
                return Err("range needs TENANT KEY T0 T1 Q…".into());
            }
            let t0: u64 = rest[2].parse().map_err(|_| "bad T0")?;
            let t1: u64 = rest[3].parse().map_err(|_| "bad T1")?;
            let qs = parse_f64s(&rest[4..], "quantile")?;
            let (values, count, merged_slots) = client
                .range_query(&rest[0], &rest[1], t0, t1, &qs)
                .map_err(|e| e.to_string())?;
            for (q, v) in qs.iter().zip(&values) {
                println!("q={q} value={v} bits={:#018x}", v.to_bits());
            }
            println!("count={count} merged_slots={merged_slots}");
        }
        "flush" => {
            client.flush().map_err(|e| e.to_string())?;
            println!("flushed");
        }
        "checkpoint" => {
            client.checkpoint().map_err(|e| e.to_string())?;
            println!("checkpointed");
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!(
                "events={} keys={} shards={} quota_rejected={}",
                stats.events, stats.keys, stats.shards, stats.quota_rejected
            );
            for (tenant, n) in &stats.rejected_by_tenant {
                println!("rejected tenant={tenant} batches={n}");
            }
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutdown acknowledged");
        }
        other => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Quantile-as-a-service: a std-only TCP server fronting multi-tenant
//! keyed quantile sketches.
//!
//! This crate is the networked face of the repo's serving-side engine
//! ([`qsketch_streamsim::keyed_engine`]): any number of tenants stream
//! `(tenant, metric-key, values…)` batches in, and query quantiles,
//! discretized CDFs, or merged key-ranges back out — the "sketch
//! summaries are all you need to move" consequence of mergeability
//! (§2.4 of the paper) turned into a service.
//!
//! ```text
//!  clients ──frames──▶ Server (thread/conn) ──Request──▶ ServerCore
//!                                                           │
//!                              KeyedEngine: hash-route ──▶ shard workers
//!                              per-tenant quotas           {(tenant,key) → sketch}
//! ```
//!
//! * [`protocol`] — the wire format: length-prefixed frames, versioned
//!   payloads, typed errors. Spec in `PROTOCOL.md`.
//! * [`config`] — server configuration and the `--sketch` spec grammar.
//! * [`server`] — [`ServerCore`] (pure request handler) and
//!   [`Server`] (TCP accept loop).
//! * [`client`] — a blocking client, used by the `qsketch_client` CLI,
//!   the CI smoke test, and the bench load generator.
//!
//! Durability: with a checkpoint directory configured, shard registries
//! are checkpointed automatically every N values and synchronously on
//! the `Checkpoint` op and graceful shutdown; `--recover` restores them
//! bit-identically (see `OPERATIONS.md` § Durability).

pub mod client;
pub mod config;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use config::{ServerConfig, ServerSketchSpec};
pub use protocol::{ErrorCode, Request, Response, ServerStats, PROTOCOL_VERSION};
pub use server::{spawn_core, Server, ServerCore, SERVER_NAME};

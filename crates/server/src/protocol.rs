//! The qsketch wire protocol: length-prefixed binary frames carrying
//! versioned request/response payloads.
//!
//! The full byte-level specification lives in `PROTOCOL.md` at the repo
//! root; this module is its executable form. In brief:
//!
//! ```text
//! frame    := length(u32 LE) payload
//! payload  := magic(0x51) version(u8) opcode(u8) body…
//! ```
//!
//! The payload header reuses the repo-wide codec conventions
//! ([`qsketch_core::codec`]): the same `magic, version, …` shape as every
//! sketch payload and checkpoint envelope, encoded with the same
//! [`Writer`]/[`Reader`] primitives (little-endian scalars, LEB128
//! varints, length-prefixed strings), and the same hostile-input
//! contract — [`Request::decode`]/[`Response::decode`] return a typed
//! [`DecodeError`] on truncated, corrupt, foreign, or oversized input,
//! **never** a panic and never an unbounded allocation.
//!
//! Responses echo their request's opcode with the high bit set
//! ([`response_opcode`]); errors use the dedicated [`OP_ERROR`] opcode
//! with a machine-readable [`ErrorCode`] plus a human-readable message.

use qsketch_core::codec::{DecodeError, Reader, Writer};
use std::io::{self, Read, Write};

/// First payload byte of every frame: `'Q'`.
pub const FRAME_MAGIC: u8 = 0x51;

/// Highest protocol version this build speaks. Version 1 is the initial
/// protocol; version 2 adds [`op::RANGE_QUERY`]. See `PROTOCOL.md`
/// § Versioning for the negotiation rules.
///
/// Every frame carries the *lowest* version that defines its opcode
/// ([`min_version_for`]), not this constant — so every version-1
/// operation stays byte-identical on the wire and a version-1 peer
/// keeps decoding it.
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard ceiling on a frame's payload length (16 MiB). A frame header
/// declaring more is rejected before any allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Longest tenant or metric-key identifier, in bytes.
pub const MAX_IDENT: u64 = 256;

/// Most values a single ingest batch may carry.
pub const MAX_BATCH: u64 = 1 << 20;

/// Most quantiles a single query may ask for.
pub const MAX_QUANTILES: u64 = 1024;

/// Most grid points a CDF request may ask for.
pub const MAX_CDF_POINTS: u64 = 4096;

/// Longest error message the server will put on the wire.
pub const MAX_ERROR_MESSAGE: u64 = 1024;

/// Most per-tenant rows a stats response may carry.
pub const MAX_STATS_TENANTS: u64 = 1 << 16;

/// Request opcodes (`0x01..=0x0B`).
pub mod op {
    /// Version negotiation; must not change meaning across versions.
    pub const HELLO: u8 = 0x01;
    /// Ingest a value batch for one `(tenant, key)`.
    pub const INGEST: u8 = 0x02;
    /// Quantile point query on one `(tenant, key)`.
    pub const QUERY: u8 = 0x03;
    /// Discretized CDF of one `(tenant, key)`.
    pub const CDF: u8 = 0x04;
    /// Quantile query over the merge of a tenant's key-prefix range.
    pub const MERGED_QUERY: u8 = 0x05;
    /// Block until all enqueued batches are inserted.
    pub const FLUSH: u8 = 0x06;
    /// Write a synchronous durable checkpoint of every shard registry.
    pub const CHECKPOINT: u8 = 0x07;
    /// Operational stats snapshot.
    pub const STATS: u8 = 0x08;
    /// Liveness probe.
    pub const PING: u8 = 0x09;
    /// Ask the server to shut down gracefully.
    pub const SHUTDOWN: u8 = 0x0A;
    /// Rollup range query over one `(tenant, key)`'s tiered store
    /// (protocol version ≥ 2).
    pub const RANGE_QUERY: u8 = 0x0B;
}

/// Error responses use this opcode instead of `request | 0x80`.
pub const OP_ERROR: u8 = 0xEE;

/// The lowest protocol version that defines `opcode` (request or
/// response form). Frames carry exactly this version: a version-1 peer
/// keeps accepting every version-1 operation byte-identically, and
/// rejects only the opcodes it genuinely cannot know.
pub const fn min_version_for(opcode: u8) -> u8 {
    if opcode == OP_ERROR {
        return 1;
    }
    match opcode & 0x7F {
        op::RANGE_QUERY => 2,
        _ => 1,
    }
}

/// The response opcode for a request opcode: high bit set.
#[inline]
pub const fn response_opcode(request: u8) -> u8 {
    request | 0x80
}

/// Machine-readable error classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The tenant exceeded its ingest quota; retry after the hint.
    QuotaExceeded = 1,
    /// The queried `(tenant, key)` has no recorded values.
    UnknownKey = 2,
    /// The request was malformed (bad quantile, empty identifier, …).
    BadRequest = 3,
    /// No protocol version is shared by client and server.
    UnsupportedVersion = 4,
    /// The operation is valid but the server cannot perform it
    /// (e.g. checkpointing disabled).
    Unavailable = 5,
    /// An internal failure (merge error, IO error on checkpoint, …).
    Internal = 6,
}

impl ErrorCode {
    /// Decode a wire byte (`None` for unknown codes).
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::QuotaExceeded),
            2 => Some(ErrorCode::UnknownKey),
            3 => Some(ErrorCode::BadRequest),
            4 => Some(ErrorCode::UnsupportedVersion),
            5 => Some(ErrorCode::Unavailable),
            6 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::UnknownKey => "unknown-key",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A client→server request payload (everything after the frame length).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Negotiate the protocol version: the client's supported range.
    Hello {
        /// Lowest version the client speaks.
        min_version: u8,
        /// Highest version the client speaks.
        max_version: u8,
    },
    /// Ingest `values` into `(tenant, key)`'s sketch.
    Ingest {
        /// Tenant identifier (1..=[`MAX_IDENT`] bytes of UTF-8).
        tenant: String,
        /// Metric-key identifier (1..=[`MAX_IDENT`] bytes of UTF-8).
        key: String,
        /// The batch (1..=[`MAX_BATCH`] values).
        values: Vec<f64>,
    },
    /// Estimate quantiles of one key's stream.
    Query {
        /// Tenant identifier.
        tenant: String,
        /// Metric-key identifier.
        key: String,
        /// Quantiles in `(0, 1]` (1..=[`MAX_QUANTILES`]).
        qs: Vec<f64>,
    },
    /// Discretized CDF of one key's stream: `points` evenly spaced
    /// quantiles from `1/points` to `1`.
    Cdf {
        /// Tenant identifier.
        tenant: String,
        /// Metric-key identifier.
        key: String,
        /// Grid size (1..=[`MAX_CDF_POINTS`]).
        points: u32,
    },
    /// Estimate quantiles of the merged stream of every key of `tenant`
    /// starting with `prefix` (empty prefix = the whole tenant).
    MergedQuery {
        /// Tenant identifier.
        tenant: String,
        /// Key prefix (0..=[`MAX_IDENT`] bytes; empty allowed).
        prefix: String,
        /// Quantiles in `(0, 1]`.
        qs: Vec<f64>,
    },
    /// Block until everything already ingested is queryable.
    Flush,
    /// Write a synchronous durable checkpoint.
    Checkpoint,
    /// Operational stats.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown (final checkpoint, then exit).
    Shutdown,
    /// Estimate quantiles over the rollup slots of one key covering
    /// `[t0, t1)` in the server's rollup time units (protocol ≥ 2).
    RangeQuery {
        /// Tenant identifier.
        tenant: String,
        /// Metric-key identifier.
        key: String,
        /// Inclusive range start, in rollup time units.
        t0: u64,
        /// Exclusive range end.
        t1: u64,
        /// Quantiles in `(0, 1]` (1..=[`MAX_QUANTILES`]).
        qs: Vec<f64>,
    },
}

/// Operational counters carried by [`Response::StatsOk`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Values admitted past quota since start.
    pub events: u64,
    /// Distinct `(tenant, key)` sketches.
    pub keys: u64,
    /// Shard worker count.
    pub shards: u64,
    /// Ingest batches rejected by quota.
    pub quota_rejected: u64,
    /// Per-tenant rejected batch counts, sorted by tenant.
    pub rejected_by_tenant: Vec<(String, u64)>,
}

/// A server→client response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Version agreed; the connection speaks `version` from now on.
    HelloOk {
        /// The negotiated protocol version.
        version: u8,
        /// Server software identifier (diagnostic only).
        server: String,
    },
    /// Batch accepted and enqueued.
    IngestOk {
        /// Number of values accepted.
        accepted: u64,
    },
    /// Quantile estimates, in request order.
    QueryOk {
        /// One estimate per requested quantile.
        values: Vec<f64>,
        /// Values recorded in the queried sketch.
        count: u64,
    },
    /// Discretized CDF grid.
    CdfOk {
        /// The quantile grid `i/points` for `i in 1..=points`.
        qs: Vec<f64>,
        /// The value estimate at each grid quantile.
        values: Vec<f64>,
        /// Values recorded in the queried sketch.
        count: u64,
    },
    /// Merged-range quantile estimates.
    MergedOk {
        /// One estimate per requested quantile.
        values: Vec<f64>,
        /// Total values across the merged sketches.
        count: u64,
        /// Number of per-key sketches merged.
        merged_keys: u64,
    },
    /// Everything ingested before the flush is now queryable.
    FlushOk,
    /// All shard registries durably checkpointed.
    CheckpointOk,
    /// Operational stats snapshot.
    StatsOk(ServerStats),
    /// Liveness answer.
    Pong,
    /// Shutdown acknowledged; the server stops accepting and exits.
    ShutdownOk,
    /// Rollup range-query estimates (protocol ≥ 2).
    RangeOk {
        /// One estimate per requested quantile.
        values: Vec<f64>,
        /// Values recorded across the covered slots (0 when the range
        /// covers no stored slot — `values` is then empty too).
        count: u64,
        /// Stored sketches merged to answer (the O(log n) bound).
        merged_slots: u64,
    },
    /// The request failed; see the code and message.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// For [`ErrorCode::QuotaExceeded`]: suggested retry delay
        /// (0 = the batch exceeds the burst and can never pass).
        retry_after_ms: u64,
        /// Human-readable detail (≤ [`MAX_ERROR_MESSAGE`] bytes).
        message: String,
    },
}

fn write_str(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>, max_len: u64) -> Result<String, DecodeError> {
    let bytes = r.byte_vec(max_len)?;
    String::from_utf8(bytes).map_err(|_| DecodeError::Corrupt("identifier is not UTF-8".into()))
}

fn header(opcode: u8) -> Writer {
    let mut w = Writer::with_header(FRAME_MAGIC, min_version_for(opcode));
    w.u8(opcode);
    w
}

fn open(payload: &[u8]) -> Result<(Reader<'_>, u8), DecodeError> {
    let mut r = Reader::with_header(payload, FRAME_MAGIC, PROTOCOL_VERSION)?;
    let opcode = r.u8()?;
    if r.version() < min_version_for(opcode) {
        return Err(DecodeError::Corrupt(format!(
            "opcode {opcode:#04x} requires protocol version {}, frame declares {}",
            min_version_for(opcode),
            r.version()
        )));
    }
    Ok((r, opcode))
}

impl Request {
    /// This request's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Hello { .. } => op::HELLO,
            Request::Ingest { .. } => op::INGEST,
            Request::Query { .. } => op::QUERY,
            Request::Cdf { .. } => op::CDF,
            Request::MergedQuery { .. } => op::MERGED_QUERY,
            Request::Flush => op::FLUSH,
            Request::Checkpoint => op::CHECKPOINT,
            Request::Stats => op::STATS,
            Request::Ping => op::PING,
            Request::Shutdown => op::SHUTDOWN,
            Request::RangeQuery { .. } => op::RANGE_QUERY,
        }
    }

    /// Serialise the payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = header(self.opcode());
        match self {
            Request::Hello {
                min_version,
                max_version,
            } => {
                w.u8(*min_version);
                w.u8(*max_version);
            }
            Request::Ingest {
                tenant,
                key,
                values,
            } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                w.f64_slice(values);
            }
            Request::Query { tenant, key, qs } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                w.f64_slice(qs);
            }
            Request::Cdf {
                tenant,
                key,
                points,
            } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                w.varint(u64::from(*points));
            }
            Request::MergedQuery { tenant, prefix, qs } => {
                write_str(&mut w, tenant);
                write_str(&mut w, prefix);
                w.f64_slice(qs);
            }
            Request::RangeQuery {
                tenant,
                key,
                t0,
                t1,
                qs,
            } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                w.varint(*t0);
                w.varint(*t1);
                w.f64_slice(qs);
            }
            Request::Flush
            | Request::Checkpoint
            | Request::Stats
            | Request::Ping
            | Request::Shutdown => {}
        }
        w.finish()
    }

    /// Parse a request payload, validating header, opcode, bounds, and
    /// UTF-8. Returns a typed [`DecodeError`] on any hostile input.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let (mut r, opcode) = open(payload)?;
        let req = match opcode {
            op::HELLO => Request::Hello {
                min_version: r.u8()?,
                max_version: r.u8()?,
            },
            op::INGEST => {
                let tenant = read_str(&mut r, MAX_IDENT)?;
                let key = read_str(&mut r, MAX_IDENT)?;
                let values = r.f64_vec(MAX_BATCH)?;
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if values.is_empty() {
                    return Err(DecodeError::Corrupt("empty ingest batch".into()));
                }
                Request::Ingest {
                    tenant,
                    key,
                    values,
                }
            }
            op::QUERY => {
                let tenant = read_str(&mut r, MAX_IDENT)?;
                let key = read_str(&mut r, MAX_IDENT)?;
                let qs = r.f64_vec(MAX_QUANTILES)?;
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if qs.is_empty() {
                    return Err(DecodeError::Corrupt("no quantiles requested".into()));
                }
                Request::Query { tenant, key, qs }
            }
            op::CDF => {
                let tenant = read_str(&mut r, MAX_IDENT)?;
                let key = read_str(&mut r, MAX_IDENT)?;
                let points = r.varint()?;
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if points == 0 || points > MAX_CDF_POINTS {
                    return Err(DecodeError::Corrupt(format!(
                        "cdf points {points} outside 1..={MAX_CDF_POINTS}"
                    )));
                }
                Request::Cdf {
                    tenant,
                    key,
                    points: points as u32,
                }
            }
            op::MERGED_QUERY => {
                let tenant = read_str(&mut r, MAX_IDENT)?;
                let prefix = read_str(&mut r, MAX_IDENT)?;
                let qs = r.f64_vec(MAX_QUANTILES)?;
                if tenant.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if qs.is_empty() {
                    return Err(DecodeError::Corrupt("no quantiles requested".into()));
                }
                Request::MergedQuery { tenant, prefix, qs }
            }
            op::RANGE_QUERY => {
                let tenant = read_str(&mut r, MAX_IDENT)?;
                let key = read_str(&mut r, MAX_IDENT)?;
                let t0 = r.varint()?;
                let t1 = r.varint()?;
                let qs = r.f64_vec(MAX_QUANTILES)?;
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if t1 <= t0 {
                    return Err(DecodeError::Corrupt(format!(
                        "empty range [{t0}, {t1})"
                    )));
                }
                if qs.is_empty() {
                    return Err(DecodeError::Corrupt("no quantiles requested".into()));
                }
                Request::RangeQuery {
                    tenant,
                    key,
                    t0,
                    t1,
                    qs,
                }
            }
            op::FLUSH => Request::Flush,
            op::CHECKPOINT => Request::Checkpoint,
            op::STATS => Request::Stats,
            op::PING => Request::Ping,
            op::SHUTDOWN => Request::Shutdown,
            other => {
                return Err(DecodeError::Corrupt(format!(
                    "unknown request opcode {other:#04x}"
                )))
            }
        };
        r.expect_exhausted()?;
        Ok(req)
    }
}

impl Response {
    /// This response's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => response_opcode(op::HELLO),
            Response::IngestOk { .. } => response_opcode(op::INGEST),
            Response::QueryOk { .. } => response_opcode(op::QUERY),
            Response::CdfOk { .. } => response_opcode(op::CDF),
            Response::MergedOk { .. } => response_opcode(op::MERGED_QUERY),
            Response::FlushOk => response_opcode(op::FLUSH),
            Response::CheckpointOk => response_opcode(op::CHECKPOINT),
            Response::StatsOk(_) => response_opcode(op::STATS),
            Response::Pong => response_opcode(op::PING),
            Response::ShutdownOk => response_opcode(op::SHUTDOWN),
            Response::RangeOk { .. } => response_opcode(op::RANGE_QUERY),
            Response::Error { .. } => OP_ERROR,
        }
    }

    /// Serialise the payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = header(self.opcode());
        match self {
            Response::HelloOk { version, server } => {
                w.u8(*version);
                write_str(&mut w, server);
            }
            Response::IngestOk { accepted } => w.varint(*accepted),
            Response::QueryOk { values, count } => {
                w.f64_slice(values);
                w.varint(*count);
            }
            Response::CdfOk { qs, values, count } => {
                w.f64_slice(qs);
                w.f64_slice(values);
                w.varint(*count);
            }
            Response::MergedOk {
                values,
                count,
                merged_keys,
            } => {
                w.f64_slice(values);
                w.varint(*count);
                w.varint(*merged_keys);
            }
            Response::RangeOk {
                values,
                count,
                merged_slots,
            } => {
                w.f64_slice(values);
                w.varint(*count);
                w.varint(*merged_slots);
            }
            Response::FlushOk
            | Response::CheckpointOk
            | Response::Pong
            | Response::ShutdownOk => {}
            Response::StatsOk(stats) => {
                w.varint(stats.events);
                w.varint(stats.keys);
                w.varint(stats.shards);
                w.varint(stats.quota_rejected);
                w.varint(stats.rejected_by_tenant.len() as u64);
                for (tenant, n) in &stats.rejected_by_tenant {
                    write_str(&mut w, tenant);
                    w.varint(*n);
                }
            }
            Response::Error {
                code,
                retry_after_ms,
                message,
            } => {
                w.u8(*code as u8);
                w.varint(*retry_after_ms);
                write_str(&mut w, message);
            }
        }
        w.finish()
    }

    /// Parse a response payload with the same hostile-input contract as
    /// [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let (mut r, opcode) = open(payload)?;
        let resp = match opcode {
            _ if opcode == response_opcode(op::HELLO) => Response::HelloOk {
                version: r.u8()?,
                server: read_str(&mut r, MAX_IDENT)?,
            },
            _ if opcode == response_opcode(op::INGEST) => Response::IngestOk {
                accepted: r.varint()?,
            },
            _ if opcode == response_opcode(op::QUERY) => Response::QueryOk {
                values: r.f64_vec(MAX_QUANTILES)?,
                count: r.varint()?,
            },
            _ if opcode == response_opcode(op::CDF) => Response::CdfOk {
                qs: r.f64_vec(MAX_CDF_POINTS)?,
                values: r.f64_vec(MAX_CDF_POINTS)?,
                count: r.varint()?,
            },
            _ if opcode == response_opcode(op::MERGED_QUERY) => Response::MergedOk {
                values: r.f64_vec(MAX_QUANTILES)?,
                count: r.varint()?,
                merged_keys: r.varint()?,
            },
            _ if opcode == response_opcode(op::FLUSH) => Response::FlushOk,
            _ if opcode == response_opcode(op::CHECKPOINT) => Response::CheckpointOk,
            _ if opcode == response_opcode(op::STATS) => {
                let events = r.varint()?;
                let keys = r.varint()?;
                let shards = r.varint()?;
                let quota_rejected = r.varint()?;
                let n = r.varint()?;
                if n > MAX_STATS_TENANTS {
                    return Err(DecodeError::Corrupt(format!(
                        "stats declares {n} tenants (limit {MAX_STATS_TENANTS})"
                    )));
                }
                let mut rejected_by_tenant = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let tenant = read_str(&mut r, MAX_IDENT)?;
                    let count = r.varint()?;
                    rejected_by_tenant.push((tenant, count));
                }
                Response::StatsOk(ServerStats {
                    events,
                    keys,
                    shards,
                    quota_rejected,
                    rejected_by_tenant,
                })
            }
            _ if opcode == response_opcode(op::PING) => Response::Pong,
            _ if opcode == response_opcode(op::SHUTDOWN) => Response::ShutdownOk,
            _ if opcode == response_opcode(op::RANGE_QUERY) => Response::RangeOk {
                values: r.f64_vec(MAX_QUANTILES)?,
                count: r.varint()?,
                merged_slots: r.varint()?,
            },
            OP_ERROR => {
                let raw = r.u8()?;
                let code = ErrorCode::from_u8(raw).ok_or_else(|| {
                    DecodeError::Corrupt(format!("unknown error code {raw}"))
                })?;
                Response::Error {
                    code,
                    retry_after_ms: r.varint()?,
                    message: read_str(&mut r, MAX_ERROR_MESSAGE)?,
                }
            }
            other => {
                return Err(DecodeError::Corrupt(format!(
                    "unknown response opcode {other:#04x}"
                )))
            }
        };
        r.expect_exhausted()?;
        Ok(resp)
    }
}

/// Write one frame: `u32` little-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary; `InvalidData` when the header declares more than
/// [`MAX_FRAME`] bytes (nothing is allocated in that case);
/// `UnexpectedEof` when the stream dies mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame declares {len} bytes (limit {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                min_version: 1,
                max_version: 3,
            },
            Request::Ingest {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                values: vec![1.5, 2.5, f64::MAX, -0.0],
            },
            Request::Query {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                qs: vec![0.5, 0.99],
            },
            Request::Cdf {
                tenant: "t".into(),
                key: "k".into(),
                points: 100,
            },
            Request::MergedQuery {
                tenant: "acme".into(),
                prefix: "".into(),
                qs: vec![0.5],
            },
            Request::Flush,
            Request::Checkpoint,
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::RangeQuery {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                t0: 0,
                t1: 1 << 40,
                qs: vec![0.5, 0.99],
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk {
                version: 1,
                server: "qsketch-server/0.1".into(),
            },
            Response::IngestOk { accepted: 4 },
            Response::QueryOk {
                values: vec![2.0, 2.5],
                count: 4,
            },
            Response::CdfOk {
                qs: vec![0.5, 1.0],
                values: vec![2.0, 2.5],
                count: 4,
            },
            Response::MergedOk {
                values: vec![2.0],
                count: 8,
                merged_keys: 2,
            },
            Response::FlushOk,
            Response::CheckpointOk,
            Response::StatsOk(ServerStats {
                events: 10,
                keys: 2,
                shards: 4,
                quota_rejected: 1,
                rejected_by_tenant: vec![("noisy".into(), 1)],
            }),
            Response::Pong,
            Response::ShutdownOk,
            Response::RangeOk {
                values: vec![2.0, 2.5],
                count: 3_200,
                merged_slots: 6,
            },
            Response::Error {
                code: ErrorCode::QuotaExceeded,
                retry_after_ms: 250,
                message: "tenant noisy exceeded its quota".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for req in sample_requests() {
            let enc = req.encode();
            for cut in 0..enc.len() {
                assert!(
                    Request::decode(&enc[..cut]).is_err(),
                    "{req:?} truncated to {cut} bytes decoded"
                );
            }
        }
        for resp in sample_responses() {
            let enc = resp.encode();
            for cut in 0..enc.len() {
                assert!(
                    Response::decode(&enc[..cut]).is_err(),
                    "{resp:?} truncated to {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn wrong_magic_version_opcode_rejected() {
        let enc = Request::Ping.encode();
        let mut bad = enc.clone();
        bad[0] = 0xC5;
        assert!(matches!(
            Request::decode(&bad),
            Err(DecodeError::WrongMagic { .. })
        ));
        let mut bad = enc.clone();
        bad[1] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Request::decode(&bad),
            Err(DecodeError::UnsupportedVersion(_))
        ));
        let mut bad = enc;
        bad[2] = 0x7F;
        assert!(matches!(Request::decode(&bad), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn version1_operations_stay_byte_identical() {
        // Every pre-v2 frame must still declare version 1 so v1 peers
        // keep decoding it; only RangeQuery frames declare version 2.
        for req in sample_requests() {
            let enc = req.encode();
            let want = min_version_for(req.opcode());
            assert_eq!(enc[1], want, "{req:?}");
            assert_eq!(
                want,
                if matches!(req, Request::RangeQuery { .. }) { 2 } else { 1 }
            );
        }
        for resp in sample_responses() {
            let enc = resp.encode();
            let want = min_version_for(resp.opcode());
            assert_eq!(enc[1], want, "{resp:?}");
            assert_eq!(
                want,
                if matches!(resp, Response::RangeOk { .. }) { 2 } else { 1 }
            );
        }
    }

    #[test]
    fn v2_opcode_in_v1_frame_rejected() {
        // A frame claiming version 1 but carrying a v2-only opcode is
        // malformed, not silently accepted.
        let mut enc = Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 0,
            t1: 4,
            qs: vec![0.5],
        }
        .encode();
        assert_eq!(enc[1], 2);
        enc[1] = 1;
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn empty_range_rejected() {
        let bad = Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 5,
            t1: 5,
            qs: vec![0.5],
        };
        assert!(Request::decode(&bad.encode()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Request::Flush.encode();
        enc.push(0);
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn oversized_declared_lengths_rejected_without_allocation() {
        // An ingest frame declaring a 2^60-value batch must be rejected
        // by the bound check, not by an allocation attempt.
        let mut w = Writer::with_header(FRAME_MAGIC, PROTOCOL_VERSION);
        w.u8(op::INGEST);
        w.bytes(b"t");
        w.bytes(b"k");
        w.varint(1 << 60);
        let enc = w.finish();
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn empty_identifiers_and_batches_rejected() {
        let bad = Request::Ingest {
            tenant: "".into(),
            key: "k".into(),
            values: vec![1.0],
        };
        assert!(Request::decode(&bad.encode()).is_err());
        let bad = Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: vec![],
        };
        assert!(Request::decode(&bad.encode()).is_err());
        let bad = Request::Query {
            tenant: "t".into(),
            key: "k".into(),
            qs: vec![],
        };
        assert!(Request::decode(&bad.encode()).is_err());
    }

    #[test]
    fn non_utf8_identifier_rejected() {
        let mut w = Writer::with_header(FRAME_MAGIC, PROTOCOL_VERSION);
        w.u8(op::QUERY);
        w.bytes(&[0xFF, 0xFE]);
        w.bytes(b"k");
        w.f64_slice(&[0.5]);
        let enc = w.finish();
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn frame_io_round_trips_and_bounds() {
        let payload = Request::Ping.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(&buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // A header declaring > MAX_FRAME is InvalidData.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = io::Cursor::new(&huge[..]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A stream dying mid-frame is UnexpectedEof.
        let mut partial = buf.clone();
        partial.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(&partial);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::QuotaExceeded,
            ErrorCode::UnknownKey,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Unavailable,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(7), None);
    }
}

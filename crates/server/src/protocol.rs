//! The qsketch wire protocol: length-prefixed binary frames carrying
//! versioned request/response payloads.
//!
//! The full byte-level specification lives in `PROTOCOL.md` at the repo
//! root; this module is its executable form. In brief:
//!
//! ```text
//! frame    := length(u32 LE) payload
//! payload  := magic(0x51) version(u8) opcode(u8) body…
//! ```
//!
//! The payload header reuses the repo-wide codec conventions
//! ([`qsketch_core::codec`]): the same `magic, version, …` shape as every
//! sketch payload and checkpoint envelope, encoded with the same
//! [`Writer`]/[`Reader`] primitives (little-endian scalars, LEB128
//! varints, length-prefixed strings), and the same hostile-input
//! contract — [`Request::decode`]/[`Response::decode`] return a typed
//! [`DecodeError`] on truncated, corrupt, foreign, or oversized input,
//! **never** a panic and never an unbounded allocation.
//!
//! Responses echo their request's opcode with the high bit set
//! ([`response_opcode`]); errors use the dedicated [`OP_ERROR`] opcode
//! with a machine-readable [`ErrorCode`] plus a human-readable message.
//!
//! # Borrowed decode
//!
//! [`RequestView`] is the allocation-free twin of [`Request`]: it
//! parses the same bytes but borrows identifiers as `&str` and value
//! runs as [`F64s`] (the raw little-endian bytes, read in place), so
//! the server's ingest hot path never materializes an owned `Vec<f64>`
//! per frame. The owned [`Request`] decoder is a thin wrapper over the
//! view (`RequestView::decode(..)?.to_owned()`), and the owned encoder
//! delegates to the view encoder — the two can never drift apart.
//!
//! # Pipelining (protocol v3)
//!
//! A version-3 [`op::BATCH`] frame carries up to [`MAX_BATCH_OPS`]
//! complete request payloads, length-prefixed back to back; the server
//! answers with one `BATCH | 0x80` frame carrying the responses in
//! request order. [`BatchView`] walks an envelope without copying it.
//! Per-opcode version stamping keeps every v1/v2 frame byte-identical.

use qsketch_core::codec::{DecodeError, Reader, Writer};
use std::io::{self, Read, Write};

/// First payload byte of every frame: `'Q'`.
pub const FRAME_MAGIC: u8 = 0x51;

/// Highest protocol version this build speaks. Version 1 is the initial
/// protocol; version 2 adds [`op::RANGE_QUERY`]; version 3 adds the
/// [`op::BATCH`] multi-op envelope. See `PROTOCOL.md` § Versioning for
/// the negotiation rules.
///
/// Every frame carries the *lowest* version that defines its opcode
/// ([`min_version_for`]), not this constant — so every version-1
/// operation stays byte-identical on the wire and a version-1 peer
/// keeps decoding it.
pub const PROTOCOL_VERSION: u8 = 3;

/// Hard ceiling on a frame's payload length (16 MiB). A frame header
/// declaring more is rejected before any allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Longest tenant or metric-key identifier, in bytes.
pub const MAX_IDENT: u64 = 256;

/// Most values a single ingest batch may carry.
pub const MAX_BATCH: u64 = 1 << 20;

/// Most quantiles a single query may ask for.
pub const MAX_QUANTILES: u64 = 1024;

/// Most grid points a CDF request may ask for.
pub const MAX_CDF_POINTS: u64 = 4096;

/// Longest error message the server will put on the wire.
pub const MAX_ERROR_MESSAGE: u64 = 1024;

/// Most per-tenant rows a stats response may carry.
pub const MAX_STATS_TENANTS: u64 = 1 << 16;

/// Most inner operations one [`op::BATCH`] envelope may carry.
pub const MAX_BATCH_OPS: u64 = 256;

/// Request opcodes (`0x01..=0x0C`).
pub mod op {
    /// Version negotiation; must not change meaning across versions.
    pub const HELLO: u8 = 0x01;
    /// Ingest a value batch for one `(tenant, key)`.
    pub const INGEST: u8 = 0x02;
    /// Quantile point query on one `(tenant, key)`.
    pub const QUERY: u8 = 0x03;
    /// Discretized CDF of one `(tenant, key)`.
    pub const CDF: u8 = 0x04;
    /// Quantile query over the merge of a tenant's key-prefix range.
    pub const MERGED_QUERY: u8 = 0x05;
    /// Block until all enqueued batches are inserted.
    pub const FLUSH: u8 = 0x06;
    /// Write a synchronous durable checkpoint of every shard registry.
    pub const CHECKPOINT: u8 = 0x07;
    /// Operational stats snapshot.
    pub const STATS: u8 = 0x08;
    /// Liveness probe.
    pub const PING: u8 = 0x09;
    /// Ask the server to shut down gracefully.
    pub const SHUTDOWN: u8 = 0x0A;
    /// Rollup range query over one `(tenant, key)`'s tiered store
    /// (protocol version ≥ 2).
    pub const RANGE_QUERY: u8 = 0x0B;
    /// Pipelined multi-op envelope: up to
    /// [`MAX_BATCH_OPS`](super::MAX_BATCH_OPS) length-prefixed complete
    /// request payloads served in one read/decode/write cycle
    /// (protocol version ≥ 3). Envelopes must not nest, and
    /// [`SHUTDOWN`] is not allowed inside one.
    pub const BATCH: u8 = 0x0C;
}

/// Error responses use this opcode instead of `request | 0x80`.
pub const OP_ERROR: u8 = 0xEE;

/// The lowest protocol version that defines `opcode` (request or
/// response form). Frames carry exactly this version: a version-1 peer
/// keeps accepting every version-1 operation byte-identically, and
/// rejects only the opcodes it genuinely cannot know.
pub const fn min_version_for(opcode: u8) -> u8 {
    if opcode == OP_ERROR {
        return 1;
    }
    match opcode & 0x7F {
        op::RANGE_QUERY => 2,
        op::BATCH => 3,
        _ => 1,
    }
}

/// The response opcode for a request opcode: high bit set.
#[inline]
pub const fn response_opcode(request: u8) -> u8 {
    request | 0x80
}

/// Machine-readable error classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The tenant exceeded its ingest quota; retry after the hint.
    QuotaExceeded = 1,
    /// The queried `(tenant, key)` has no recorded values.
    UnknownKey = 2,
    /// The request was malformed (bad quantile, empty identifier, …).
    BadRequest = 3,
    /// No protocol version is shared by client and server.
    UnsupportedVersion = 4,
    /// The operation is valid but the server cannot perform it
    /// (e.g. checkpointing disabled).
    Unavailable = 5,
    /// An internal failure (merge error, IO error on checkpoint, …).
    Internal = 6,
}

impl ErrorCode {
    /// Decode a wire byte (`None` for unknown codes).
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::QuotaExceeded),
            2 => Some(ErrorCode::UnknownKey),
            3 => Some(ErrorCode::BadRequest),
            4 => Some(ErrorCode::UnsupportedVersion),
            5 => Some(ErrorCode::Unavailable),
            6 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::UnknownKey => "unknown-key",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A client→server request payload (everything after the frame length).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Negotiate the protocol version: the client's supported range.
    Hello {
        /// Lowest version the client speaks.
        min_version: u8,
        /// Highest version the client speaks.
        max_version: u8,
    },
    /// Ingest `values` into `(tenant, key)`'s sketch.
    Ingest {
        /// Tenant identifier (1..=[`MAX_IDENT`] bytes of UTF-8).
        tenant: String,
        /// Metric-key identifier (1..=[`MAX_IDENT`] bytes of UTF-8).
        key: String,
        /// The batch (1..=[`MAX_BATCH`] values).
        values: Vec<f64>,
    },
    /// Estimate quantiles of one key's stream.
    Query {
        /// Tenant identifier.
        tenant: String,
        /// Metric-key identifier.
        key: String,
        /// Quantiles in `(0, 1]` (1..=[`MAX_QUANTILES`]).
        qs: Vec<f64>,
    },
    /// Discretized CDF of one key's stream: `points` evenly spaced
    /// quantiles from `1/points` to `1`.
    Cdf {
        /// Tenant identifier.
        tenant: String,
        /// Metric-key identifier.
        key: String,
        /// Grid size (1..=[`MAX_CDF_POINTS`]).
        points: u32,
    },
    /// Estimate quantiles of the merged stream of every key of `tenant`
    /// starting with `prefix` (empty prefix = the whole tenant).
    MergedQuery {
        /// Tenant identifier.
        tenant: String,
        /// Key prefix (0..=[`MAX_IDENT`] bytes; empty allowed).
        prefix: String,
        /// Quantiles in `(0, 1]`.
        qs: Vec<f64>,
    },
    /// Block until everything already ingested is queryable.
    Flush,
    /// Write a synchronous durable checkpoint.
    Checkpoint,
    /// Operational stats.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown (final checkpoint, then exit).
    Shutdown,
    /// Estimate quantiles over the rollup slots of one key covering
    /// `[t0, t1)` in the server's rollup time units (protocol ≥ 2).
    RangeQuery {
        /// Tenant identifier.
        tenant: String,
        /// Metric-key identifier.
        key: String,
        /// Inclusive range start, in rollup time units.
        t0: u64,
        /// Exclusive range end.
        t1: u64,
        /// Quantiles in `(0, 1]` (1..=[`MAX_QUANTILES`]).
        qs: Vec<f64>,
    },
}

/// Operational counters carried by [`Response::StatsOk`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Values admitted past quota since start.
    pub events: u64,
    /// Distinct `(tenant, key)` sketches.
    pub keys: u64,
    /// Shard worker count.
    pub shards: u64,
    /// Ingest batches rejected by quota.
    pub quota_rejected: u64,
    /// Per-tenant rejected batch counts, sorted by tenant.
    pub rejected_by_tenant: Vec<(String, u64)>,
}

/// A server→client response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Version agreed; the connection speaks `version` from now on.
    HelloOk {
        /// The negotiated protocol version.
        version: u8,
        /// Server software identifier (diagnostic only).
        server: String,
    },
    /// Batch accepted and enqueued.
    IngestOk {
        /// Number of values accepted.
        accepted: u64,
    },
    /// Quantile estimates, in request order.
    QueryOk {
        /// One estimate per requested quantile.
        values: Vec<f64>,
        /// Values recorded in the queried sketch.
        count: u64,
    },
    /// Discretized CDF grid.
    CdfOk {
        /// The quantile grid `i/points` for `i in 1..=points`.
        qs: Vec<f64>,
        /// The value estimate at each grid quantile.
        values: Vec<f64>,
        /// Values recorded in the queried sketch.
        count: u64,
    },
    /// Merged-range quantile estimates.
    MergedOk {
        /// One estimate per requested quantile.
        values: Vec<f64>,
        /// Total values across the merged sketches.
        count: u64,
        /// Number of per-key sketches merged.
        merged_keys: u64,
    },
    /// Everything ingested before the flush is now queryable.
    FlushOk,
    /// All shard registries durably checkpointed.
    CheckpointOk,
    /// Operational stats snapshot.
    StatsOk(ServerStats),
    /// Liveness answer.
    Pong,
    /// Shutdown acknowledged; the server stops accepting and exits.
    ShutdownOk,
    /// Rollup range-query estimates (protocol ≥ 2).
    RangeOk {
        /// One estimate per requested quantile.
        values: Vec<f64>,
        /// Values recorded across the covered slots (0 when the range
        /// covers no stored slot — `values` is then empty too).
        count: u64,
        /// Stored sketches merged to answer (the O(log n) bound).
        merged_slots: u64,
    },
    /// The request failed; see the code and message.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// For [`ErrorCode::QuotaExceeded`]: suggested retry delay
        /// (0 = the batch exceeds the burst and can never pass).
        retry_after_ms: u64,
        /// Human-readable detail (≤ [`MAX_ERROR_MESSAGE`] bytes).
        message: String,
    },
}

fn write_str(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>, max_len: u64) -> Result<String, DecodeError> {
    let bytes = r.byte_vec(max_len)?;
    String::from_utf8(bytes).map_err(|_| DecodeError::Corrupt("identifier is not UTF-8".into()))
}

fn read_str_view<'a>(r: &mut Reader<'a>, max_len: u64) -> Result<&'a str, DecodeError> {
    std::str::from_utf8(r.byte_slice(max_len)?)
        .map_err(|_| DecodeError::Corrupt("identifier is not UTF-8".into()))
}

fn write_f64s(w: &mut Writer, values: &F64s<'_>) {
    w.varint(values.len() as u64);
    match *values {
        // The wire layout *is* little-endian f64s back to back, so the
        // borrowed form appends without a decode/re-encode round trip.
        F64s::Le(bytes) => w.raw(bytes),
        F64s::Slice(slice) => {
            for &v in slice {
                w.f64(v);
            }
        }
    }
}

fn open(payload: &[u8]) -> Result<(Reader<'_>, u8), DecodeError> {
    let mut r = Reader::with_header(payload, FRAME_MAGIC, PROTOCOL_VERSION)?;
    let opcode = r.u8()?;
    if r.version() < min_version_for(opcode) {
        return Err(DecodeError::Corrupt(format!(
            "opcode {opcode:#04x} requires protocol version {}, frame declares {}",
            min_version_for(opcode),
            r.version()
        )));
    }
    Ok((r, opcode))
}

impl Request {
    /// This request's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Hello { .. } => op::HELLO,
            Request::Ingest { .. } => op::INGEST,
            Request::Query { .. } => op::QUERY,
            Request::Cdf { .. } => op::CDF,
            Request::MergedQuery { .. } => op::MERGED_QUERY,
            Request::Flush => op::FLUSH,
            Request::Checkpoint => op::CHECKPOINT,
            Request::Stats => op::STATS,
            Request::Ping => op::PING,
            Request::Shutdown => op::SHUTDOWN,
            Request::RangeQuery { .. } => op::RANGE_QUERY,
        }
    }

    /// The borrowed view of this request (values as [`F64s::Slice`]).
    /// Owned encode goes through this, so the two forms cannot drift.
    pub fn view(&self) -> RequestView<'_> {
        match self {
            Request::Hello {
                min_version,
                max_version,
            } => RequestView::Hello {
                min_version: *min_version,
                max_version: *max_version,
            },
            Request::Ingest {
                tenant,
                key,
                values,
            } => RequestView::Ingest {
                tenant,
                key,
                values: F64s::Slice(values),
            },
            Request::Query { tenant, key, qs } => RequestView::Query {
                tenant,
                key,
                qs: F64s::Slice(qs),
            },
            Request::Cdf {
                tenant,
                key,
                points,
            } => RequestView::Cdf {
                tenant,
                key,
                points: *points,
            },
            Request::MergedQuery { tenant, prefix, qs } => RequestView::MergedQuery {
                tenant,
                prefix,
                qs: F64s::Slice(qs),
            },
            Request::Flush => RequestView::Flush,
            Request::Checkpoint => RequestView::Checkpoint,
            Request::Stats => RequestView::Stats,
            Request::Ping => RequestView::Ping,
            Request::Shutdown => RequestView::Shutdown,
            Request::RangeQuery {
                tenant,
                key,
                t0,
                t1,
                qs,
            } => RequestView::RangeQuery {
                tenant,
                key,
                t0: *t0,
                t1: *t1,
                qs: F64s::Slice(qs),
            },
        }
    }

    /// Serialise the payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.view().encode_into(&mut out);
        out
    }

    /// Parse a request payload, validating header, opcode, bounds, and
    /// UTF-8. Returns a typed [`DecodeError`] on any hostile input.
    ///
    /// This is `RequestView::decode(..)?.to_owned()` — the borrowed
    /// decoder is the single parsing path.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        RequestView::decode(payload).map(|v| v.to_owned())
    }
}

/// A borrowed run of `f64` values: either raw little-endian wire bytes
/// (8 per value, decoded in place — what [`RequestView::decode`]
/// yields) or an in-memory slice (what clients encode from). The wire
/// layout is exactly the `Le` form, so encoding it is a straight copy
/// and decoding it is free.
#[derive(Debug, Clone, Copy)]
pub enum F64s<'a> {
    /// Raw little-endian bytes, 8 per value (length divisible by 8).
    Le(&'a [u8]),
    /// An in-memory slice.
    Slice(&'a [f64]),
}

impl<'a> F64s<'a> {
    /// Number of values.
    pub fn len(&self) -> usize {
        match *self {
            F64s::Le(bytes) => bytes.len() / std::mem::size_of::<f64>(),
            F64s::Slice(slice) => slice.len(),
        }
    }

    /// True when there are no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th value, if in range.
    pub fn get(&self, i: usize) -> Option<f64> {
        match *self {
            F64s::Le(bytes) => bytes
                .get(i * 8..i * 8 + 8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))),
            F64s::Slice(slice) => slice.get(i).copied(),
        }
    }

    /// Iterate the values, decoding lazily for the wire form.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        let (le, slice) = match *self {
            F64s::Le(bytes) => (Some(bytes), None),
            F64s::Slice(s) => (None, Some(s)),
        };
        le.into_iter()
            .flat_map(|b| b.chunks_exact(8))
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .chain(slice.into_iter().flatten().copied())
    }

    /// Append every value to `out` in one pass (no intermediate
    /// allocation beyond `out`'s own growth).
    pub fn extend_into(&self, out: &mut Vec<f64>) {
        match *self {
            F64s::Le(bytes) => {
                out.reserve(bytes.len() / 8);
                for c in bytes.chunks_exact(8) {
                    out.push(f64::from_le_bytes(c.try_into().expect("8 bytes")));
                }
            }
            F64s::Slice(slice) => out.extend_from_slice(slice),
        }
    }

    /// Collect into an owned vector.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.extend_into(&mut out);
        out
    }

    /// True when every value is finite (no NaN or ±infinity).
    pub fn all_finite(&self) -> bool {
        self.iter().all(f64::is_finite)
    }
}

impl PartialEq for F64s<'_> {
    /// Bit-level equality (NaN payloads compare equal to themselves),
    /// regardless of representation.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().map(f64::to_bits).eq(other.iter().map(f64::to_bits))
    }
}

impl<'a> From<&'a [f64]> for F64s<'a> {
    fn from(slice: &'a [f64]) -> Self {
        F64s::Slice(slice)
    }
}

/// The allocation-free twin of [`Request`]: the same opcodes and the
/// same validation, but identifiers borrow from the frame as `&str`
/// and value runs stay as raw wire bytes ([`F64s`]). Decoding one
/// performs **zero heap allocations** — the basis of the server's
/// zero-alloc ingest path (see the repo's `alloc_gate` test).
///
/// Batch envelopes ([`op::BATCH`]) are not requests and are rejected
/// here; walk them with [`BatchView`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestView<'a> {
    /// See [`Request::Hello`].
    Hello {
        /// Lowest version the client speaks.
        min_version: u8,
        /// Highest version the client speaks.
        max_version: u8,
    },
    /// See [`Request::Ingest`].
    Ingest {
        /// Tenant identifier.
        tenant: &'a str,
        /// Metric-key identifier.
        key: &'a str,
        /// The batch, borrowed (1..=[`MAX_BATCH`] values).
        values: F64s<'a>,
    },
    /// See [`Request::Query`].
    Query {
        /// Tenant identifier.
        tenant: &'a str,
        /// Metric-key identifier.
        key: &'a str,
        /// Quantiles in `(0, 1]`.
        qs: F64s<'a>,
    },
    /// See [`Request::Cdf`].
    Cdf {
        /// Tenant identifier.
        tenant: &'a str,
        /// Metric-key identifier.
        key: &'a str,
        /// Grid size (1..=[`MAX_CDF_POINTS`]).
        points: u32,
    },
    /// See [`Request::MergedQuery`].
    MergedQuery {
        /// Tenant identifier.
        tenant: &'a str,
        /// Key prefix (empty allowed).
        prefix: &'a str,
        /// Quantiles in `(0, 1]`.
        qs: F64s<'a>,
    },
    /// See [`Request::Flush`].
    Flush,
    /// See [`Request::Checkpoint`].
    Checkpoint,
    /// See [`Request::Stats`].
    Stats,
    /// See [`Request::Ping`].
    Ping,
    /// See [`Request::Shutdown`].
    Shutdown,
    /// See [`Request::RangeQuery`].
    RangeQuery {
        /// Tenant identifier.
        tenant: &'a str,
        /// Metric-key identifier.
        key: &'a str,
        /// Inclusive range start, in rollup time units.
        t0: u64,
        /// Exclusive range end.
        t1: u64,
        /// Quantiles in `(0, 1]`.
        qs: F64s<'a>,
    },
}

impl<'a> RequestView<'a> {
    /// This request's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            RequestView::Hello { .. } => op::HELLO,
            RequestView::Ingest { .. } => op::INGEST,
            RequestView::Query { .. } => op::QUERY,
            RequestView::Cdf { .. } => op::CDF,
            RequestView::MergedQuery { .. } => op::MERGED_QUERY,
            RequestView::Flush => op::FLUSH,
            RequestView::Checkpoint => op::CHECKPOINT,
            RequestView::Stats => op::STATS,
            RequestView::Ping => op::PING,
            RequestView::Shutdown => op::SHUTDOWN,
            RequestView::RangeQuery { .. } => op::RANGE_QUERY,
        }
    }

    /// Append the payload bytes to `out` (byte-identical to
    /// [`Request::encode`], which delegates here). Reuse `out` across
    /// calls to amortize its allocation away.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::over(std::mem::take(out));
        w.u8(FRAME_MAGIC);
        w.u8(min_version_for(self.opcode()));
        w.u8(self.opcode());
        match self {
            RequestView::Hello {
                min_version,
                max_version,
            } => {
                w.u8(*min_version);
                w.u8(*max_version);
            }
            RequestView::Ingest {
                tenant,
                key,
                values,
            } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                write_f64s(&mut w, values);
            }
            RequestView::Query { tenant, key, qs } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                write_f64s(&mut w, qs);
            }
            RequestView::Cdf {
                tenant,
                key,
                points,
            } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                w.varint(u64::from(*points));
            }
            RequestView::MergedQuery { tenant, prefix, qs } => {
                write_str(&mut w, tenant);
                write_str(&mut w, prefix);
                write_f64s(&mut w, qs);
            }
            RequestView::RangeQuery {
                tenant,
                key,
                t0,
                t1,
                qs,
            } => {
                write_str(&mut w, tenant);
                write_str(&mut w, key);
                w.varint(*t0);
                w.varint(*t1);
                write_f64s(&mut w, qs);
            }
            RequestView::Flush
            | RequestView::Checkpoint
            | RequestView::Stats
            | RequestView::Ping
            | RequestView::Shutdown => {}
        }
        *out = w.finish();
    }

    /// Serialise to a fresh payload vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Parse a request payload in place: no copies, no allocations,
    /// same validation and same [`DecodeError`]s as the owned decoder
    /// (which delegates here).
    pub fn decode(payload: &'a [u8]) -> Result<Self, DecodeError> {
        let (mut r, opcode) = open(payload)?;
        let req = match opcode {
            op::HELLO => RequestView::Hello {
                min_version: r.u8()?,
                max_version: r.u8()?,
            },
            op::INGEST => {
                let tenant = read_str_view(&mut r, MAX_IDENT)?;
                let key = read_str_view(&mut r, MAX_IDENT)?;
                let values = F64s::Le(r.f64_le_slice(MAX_BATCH)?);
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if values.is_empty() {
                    return Err(DecodeError::Corrupt("empty ingest batch".into()));
                }
                RequestView::Ingest {
                    tenant,
                    key,
                    values,
                }
            }
            op::QUERY => {
                let tenant = read_str_view(&mut r, MAX_IDENT)?;
                let key = read_str_view(&mut r, MAX_IDENT)?;
                let qs = F64s::Le(r.f64_le_slice(MAX_QUANTILES)?);
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if qs.is_empty() {
                    return Err(DecodeError::Corrupt("no quantiles requested".into()));
                }
                RequestView::Query { tenant, key, qs }
            }
            op::CDF => {
                let tenant = read_str_view(&mut r, MAX_IDENT)?;
                let key = read_str_view(&mut r, MAX_IDENT)?;
                let points = r.varint()?;
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if points == 0 || points > MAX_CDF_POINTS {
                    return Err(DecodeError::Corrupt(format!(
                        "cdf points {points} outside 1..={MAX_CDF_POINTS}"
                    )));
                }
                RequestView::Cdf {
                    tenant,
                    key,
                    points: points as u32,
                }
            }
            op::MERGED_QUERY => {
                let tenant = read_str_view(&mut r, MAX_IDENT)?;
                let prefix = read_str_view(&mut r, MAX_IDENT)?;
                let qs = F64s::Le(r.f64_le_slice(MAX_QUANTILES)?);
                if tenant.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if qs.is_empty() {
                    return Err(DecodeError::Corrupt("no quantiles requested".into()));
                }
                RequestView::MergedQuery { tenant, prefix, qs }
            }
            op::RANGE_QUERY => {
                let tenant = read_str_view(&mut r, MAX_IDENT)?;
                let key = read_str_view(&mut r, MAX_IDENT)?;
                let t0 = r.varint()?;
                let t1 = r.varint()?;
                let qs = F64s::Le(r.f64_le_slice(MAX_QUANTILES)?);
                if tenant.is_empty() || key.is_empty() {
                    return Err(DecodeError::Corrupt("empty identifier".into()));
                }
                if t1 <= t0 {
                    return Err(DecodeError::Corrupt(format!(
                        "empty range [{t0}, {t1})"
                    )));
                }
                if qs.is_empty() {
                    return Err(DecodeError::Corrupt("no quantiles requested".into()));
                }
                RequestView::RangeQuery {
                    tenant,
                    key,
                    t0,
                    t1,
                    qs,
                }
            }
            op::FLUSH => RequestView::Flush,
            op::CHECKPOINT => RequestView::Checkpoint,
            op::STATS => RequestView::Stats,
            op::PING => RequestView::Ping,
            op::SHUTDOWN => RequestView::Shutdown,
            op::BATCH => {
                return Err(DecodeError::Corrupt(
                    "batch envelope is not a single request (use BatchView)".into(),
                ))
            }
            other => {
                return Err(DecodeError::Corrupt(format!(
                    "unknown request opcode {other:#04x}"
                )))
            }
        };
        r.expect_exhausted()?;
        Ok(req)
    }

    /// Materialize the owned [`Request`] (allocates — control-plane
    /// only; the ingest hot path stays on the view).
    pub fn to_owned(&self) -> Request {
        match *self {
            RequestView::Hello {
                min_version,
                max_version,
            } => Request::Hello {
                min_version,
                max_version,
            },
            RequestView::Ingest {
                tenant,
                key,
                values,
            } => Request::Ingest {
                tenant: tenant.to_string(),
                key: key.to_string(),
                values: values.to_vec(),
            },
            RequestView::Query { tenant, key, qs } => Request::Query {
                tenant: tenant.to_string(),
                key: key.to_string(),
                qs: qs.to_vec(),
            },
            RequestView::Cdf {
                tenant,
                key,
                points,
            } => Request::Cdf {
                tenant: tenant.to_string(),
                key: key.to_string(),
                points,
            },
            RequestView::MergedQuery { tenant, prefix, qs } => Request::MergedQuery {
                tenant: tenant.to_string(),
                prefix: prefix.to_string(),
                qs: qs.to_vec(),
            },
            RequestView::Flush => Request::Flush,
            RequestView::Checkpoint => Request::Checkpoint,
            RequestView::Stats => Request::Stats,
            RequestView::Ping => Request::Ping,
            RequestView::Shutdown => Request::Shutdown,
            RequestView::RangeQuery {
                tenant,
                key,
                t0,
                t1,
                qs,
            } => Request::RangeQuery {
                tenant: tenant.to_string(),
                key: key.to_string(),
                t0,
                t1,
                qs: qs.to_vec(),
            },
        }
    }
}

/// Read one LEB128 varint length prefix and split off that many bytes.
fn split_prefixed(bytes: &[u8]) -> Result<(&[u8], &[u8]), DecodeError> {
    let mut len = 0u64;
    let mut shift = 0u32;
    let mut i = 0usize;
    loop {
        let Some(&b) = bytes.get(i) else {
            return Err(DecodeError::UnexpectedEnd);
        };
        i += 1;
        if shift >= 64 {
            return Err(DecodeError::Corrupt("varint overflow".into()));
        }
        len |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME as u64 {
        return Err(DecodeError::Corrupt(format!(
            "batch op declares {len} bytes (limit {MAX_FRAME})"
        )));
    }
    let rest = &bytes[i..];
    if rest.len() < len as usize {
        return Err(DecodeError::UnexpectedEnd);
    }
    Ok(rest.split_at(len as usize))
}

/// A borrowed, validated view over a version-3 multi-op envelope
/// (request or response form): `count` length-prefixed complete
/// payloads back to back. Decoding walks the whole envelope once to
/// validate framing — count bound, slice bounds, no nested envelopes,
/// no trailing bytes — **without copying or allocating**; the inner
/// payloads are handed out as borrowed slices by [`ops`](Self::ops)
/// and decoded lazily by the consumer.
#[derive(Debug, Clone, Copy)]
pub struct BatchView<'a> {
    count: usize,
    body: &'a [u8],
}

impl<'a> BatchView<'a> {
    fn decode_as(payload: &'a [u8], want: u8) -> Result<Self, DecodeError> {
        let (mut r, opcode) = open(payload)?;
        if opcode != want {
            return Err(DecodeError::Corrupt(format!(
                "expected batch opcode {want:#04x}, found {opcode:#04x}"
            )));
        }
        let count = r.varint()?;
        if count == 0 || count > MAX_BATCH_OPS {
            return Err(DecodeError::Corrupt(format!(
                "batch declares {count} ops (limit 1..={MAX_BATCH_OPS})"
            )));
        }
        let body = r.rest();
        let mut walk = body;
        for _ in 0..count {
            let (inner, rest) = split_prefixed(walk)?;
            if inner.len() < 3 {
                return Err(DecodeError::Corrupt("batch op too short".into()));
            }
            if inner[2] & 0x7F == op::BATCH {
                return Err(DecodeError::Corrupt("nested batch envelope".into()));
            }
            walk = rest;
        }
        if !walk.is_empty() {
            return Err(DecodeError::Corrupt(format!(
                "{} trailing bytes after batch ops",
                walk.len()
            )));
        }
        Ok(Self {
            count: count as usize,
            body,
        })
    }

    /// Parse a request envelope (opcode [`op::BATCH`]).
    pub fn decode_request(payload: &'a [u8]) -> Result<Self, DecodeError> {
        Self::decode_as(payload, op::BATCH)
    }

    /// Parse a response envelope (opcode `BATCH | 0x80`).
    pub fn decode_response(payload: &'a [u8]) -> Result<Self, DecodeError> {
        Self::decode_as(payload, response_opcode(op::BATCH))
    }

    /// Number of inner operations (1..=[`MAX_BATCH_OPS`]).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Always false — an envelope must carry at least one op.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the inner payloads as borrowed slices, in wire order.
    pub fn ops(&self) -> BatchOps<'a> {
        BatchOps {
            remaining: self.count,
            walk: self.body,
        }
    }
}

/// Iterator over a [`BatchView`]'s inner payload slices.
#[derive(Debug, Clone)]
pub struct BatchOps<'a> {
    remaining: usize,
    walk: &'a [u8],
}

impl<'a> Iterator for BatchOps<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Framing was validated by BatchView::decode_as; a failure here
        // is unreachable, but degrade to end-of-iteration over panicking.
        let (inner, rest) = split_prefixed(self.walk).ok()?;
        self.walk = rest;
        Some(inner)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BatchOps<'_> {}

/// Cheap shape test: does `payload` look like a batch request envelope?
/// (Magic and opcode bytes only — full validation happens in
/// [`BatchView::decode_request`].)
pub fn is_batch_request(payload: &[u8]) -> bool {
    payload.first() == Some(&FRAME_MAGIC) && payload.get(2) == Some(&op::BATCH)
}

/// Append a batch envelope header (request form when `response` is
/// false) declaring `count` ops; follow with `count` calls to
/// [`push_batch_op`].
pub fn batch_header_into(count: usize, response: bool, out: &mut Vec<u8>) {
    debug_assert!(count as u64 >= 1 && count as u64 <= MAX_BATCH_OPS);
    let opcode = if response {
        response_opcode(op::BATCH)
    } else {
        op::BATCH
    };
    let mut w = Writer::over(std::mem::take(out));
    w.u8(FRAME_MAGIC);
    w.u8(min_version_for(opcode));
    w.u8(opcode);
    w.varint(count as u64);
    *out = w.finish();
}

/// Append one length-prefixed inner payload to a batch envelope begun
/// with [`batch_header_into`].
pub fn push_batch_op(inner: &[u8], out: &mut Vec<u8>) {
    let mut w = Writer::over(std::mem::take(out));
    w.bytes(inner);
    *out = w.finish();
}

impl Response {
    /// This response's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => response_opcode(op::HELLO),
            Response::IngestOk { .. } => response_opcode(op::INGEST),
            Response::QueryOk { .. } => response_opcode(op::QUERY),
            Response::CdfOk { .. } => response_opcode(op::CDF),
            Response::MergedOk { .. } => response_opcode(op::MERGED_QUERY),
            Response::FlushOk => response_opcode(op::FLUSH),
            Response::CheckpointOk => response_opcode(op::CHECKPOINT),
            Response::StatsOk(_) => response_opcode(op::STATS),
            Response::Pong => response_opcode(op::PING),
            Response::ShutdownOk => response_opcode(op::SHUTDOWN),
            Response::RangeOk { .. } => response_opcode(op::RANGE_QUERY),
            Response::Error { .. } => OP_ERROR,
        }
    }

    /// Serialise the payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Append the payload bytes to `out` (byte-identical to
    /// [`encode`](Self::encode)). The server's reply path reuses one
    /// buffer per connection through this, so steady-state responses
    /// allocate nothing.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::over(std::mem::take(out));
        w.u8(FRAME_MAGIC);
        w.u8(min_version_for(self.opcode()));
        w.u8(self.opcode());
        match self {
            Response::HelloOk { version, server } => {
                w.u8(*version);
                write_str(&mut w, server);
            }
            Response::IngestOk { accepted } => w.varint(*accepted),
            Response::QueryOk { values, count } => {
                w.f64_slice(values);
                w.varint(*count);
            }
            Response::CdfOk { qs, values, count } => {
                w.f64_slice(qs);
                w.f64_slice(values);
                w.varint(*count);
            }
            Response::MergedOk {
                values,
                count,
                merged_keys,
            } => {
                w.f64_slice(values);
                w.varint(*count);
                w.varint(*merged_keys);
            }
            Response::RangeOk {
                values,
                count,
                merged_slots,
            } => {
                w.f64_slice(values);
                w.varint(*count);
                w.varint(*merged_slots);
            }
            Response::FlushOk
            | Response::CheckpointOk
            | Response::Pong
            | Response::ShutdownOk => {}
            Response::StatsOk(stats) => {
                w.varint(stats.events);
                w.varint(stats.keys);
                w.varint(stats.shards);
                w.varint(stats.quota_rejected);
                w.varint(stats.rejected_by_tenant.len() as u64);
                for (tenant, n) in &stats.rejected_by_tenant {
                    write_str(&mut w, tenant);
                    w.varint(*n);
                }
            }
            Response::Error {
                code,
                retry_after_ms,
                message,
            } => {
                w.u8(*code as u8);
                w.varint(*retry_after_ms);
                write_str(&mut w, message);
            }
        }
        *out = w.finish();
    }

    /// Parse a response payload with the same hostile-input contract as
    /// [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let (mut r, opcode) = open(payload)?;
        let resp = match opcode {
            _ if opcode == response_opcode(op::HELLO) => Response::HelloOk {
                version: r.u8()?,
                server: read_str(&mut r, MAX_IDENT)?,
            },
            _ if opcode == response_opcode(op::INGEST) => Response::IngestOk {
                accepted: r.varint()?,
            },
            _ if opcode == response_opcode(op::QUERY) => Response::QueryOk {
                values: r.f64_vec(MAX_QUANTILES)?,
                count: r.varint()?,
            },
            _ if opcode == response_opcode(op::CDF) => Response::CdfOk {
                qs: r.f64_vec(MAX_CDF_POINTS)?,
                values: r.f64_vec(MAX_CDF_POINTS)?,
                count: r.varint()?,
            },
            _ if opcode == response_opcode(op::MERGED_QUERY) => Response::MergedOk {
                values: r.f64_vec(MAX_QUANTILES)?,
                count: r.varint()?,
                merged_keys: r.varint()?,
            },
            _ if opcode == response_opcode(op::FLUSH) => Response::FlushOk,
            _ if opcode == response_opcode(op::CHECKPOINT) => Response::CheckpointOk,
            _ if opcode == response_opcode(op::STATS) => {
                let events = r.varint()?;
                let keys = r.varint()?;
                let shards = r.varint()?;
                let quota_rejected = r.varint()?;
                let n = r.varint()?;
                if n > MAX_STATS_TENANTS {
                    return Err(DecodeError::Corrupt(format!(
                        "stats declares {n} tenants (limit {MAX_STATS_TENANTS})"
                    )));
                }
                let mut rejected_by_tenant = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let tenant = read_str(&mut r, MAX_IDENT)?;
                    let count = r.varint()?;
                    rejected_by_tenant.push((tenant, count));
                }
                Response::StatsOk(ServerStats {
                    events,
                    keys,
                    shards,
                    quota_rejected,
                    rejected_by_tenant,
                })
            }
            _ if opcode == response_opcode(op::PING) => Response::Pong,
            _ if opcode == response_opcode(op::SHUTDOWN) => Response::ShutdownOk,
            _ if opcode == response_opcode(op::RANGE_QUERY) => Response::RangeOk {
                values: r.f64_vec(MAX_QUANTILES)?,
                count: r.varint()?,
                merged_slots: r.varint()?,
            },
            OP_ERROR => {
                let raw = r.u8()?;
                let code = ErrorCode::from_u8(raw).ok_or_else(|| {
                    DecodeError::Corrupt(format!("unknown error code {raw}"))
                })?;
                Response::Error {
                    code,
                    retry_after_ms: r.varint()?,
                    message: read_str(&mut r, MAX_ERROR_MESSAGE)?,
                }
            }
            other => {
                return Err(DecodeError::Corrupt(format!(
                    "unknown response opcode {other:#04x}"
                )))
            }
        };
        r.expect_exhausted()?;
        Ok(resp)
    }
}

/// Write one frame: `u32` little-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Begin a corked frame in `out`: append a 4-byte length placeholder
/// and return its position. Append the payload, then call
/// [`end_frame`] with the returned position to patch the length in.
/// Multiple frames corked into one buffer go out in a single
/// `write_all` — the syscall-amortization half of the zero-alloc data
/// plane.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    at
}

/// Patch the length of a frame begun with [`begin_frame`] at `at`.
pub fn end_frame(out: &mut [u8], at: usize) {
    let len = out.len() - at - 4;
    debug_assert!(len <= MAX_FRAME);
    out[at..at + 4].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary; `InvalidData` when the header declares more than
/// [`MAX_FRAME`] bytes (nothing is allocated in that case);
/// `UnexpectedEof` when the stream dies mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(r, &mut payload)?.then_some(payload))
}

/// Like [`read_frame`], but reads the payload into `buf` (cleared and
/// resized) instead of allocating a fresh vector — after the first
/// frame sized at a connection's high-water mark, reading allocates
/// nothing. `Ok(false)` on clean EOF at a frame boundary.
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame declares {len} bytes (limit {MAX_FRAME})"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                min_version: 1,
                max_version: 3,
            },
            Request::Ingest {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                values: vec![1.5, 2.5, f64::MAX, -0.0],
            },
            Request::Query {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                qs: vec![0.5, 0.99],
            },
            Request::Cdf {
                tenant: "t".into(),
                key: "k".into(),
                points: 100,
            },
            Request::MergedQuery {
                tenant: "acme".into(),
                prefix: "".into(),
                qs: vec![0.5],
            },
            Request::Flush,
            Request::Checkpoint,
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::RangeQuery {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                t0: 0,
                t1: 1 << 40,
                qs: vec![0.5, 0.99],
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk {
                version: 1,
                server: "qsketch-server/0.1".into(),
            },
            Response::IngestOk { accepted: 4 },
            Response::QueryOk {
                values: vec![2.0, 2.5],
                count: 4,
            },
            Response::CdfOk {
                qs: vec![0.5, 1.0],
                values: vec![2.0, 2.5],
                count: 4,
            },
            Response::MergedOk {
                values: vec![2.0],
                count: 8,
                merged_keys: 2,
            },
            Response::FlushOk,
            Response::CheckpointOk,
            Response::StatsOk(ServerStats {
                events: 10,
                keys: 2,
                shards: 4,
                quota_rejected: 1,
                rejected_by_tenant: vec![("noisy".into(), 1)],
            }),
            Response::Pong,
            Response::ShutdownOk,
            Response::RangeOk {
                values: vec![2.0, 2.5],
                count: 3_200,
                merged_slots: 6,
            },
            Response::Error {
                code: ErrorCode::QuotaExceeded,
                retry_after_ms: 250,
                message: "tenant noisy exceeded its quota".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for req in sample_requests() {
            let enc = req.encode();
            for cut in 0..enc.len() {
                assert!(
                    Request::decode(&enc[..cut]).is_err(),
                    "{req:?} truncated to {cut} bytes decoded"
                );
            }
        }
        for resp in sample_responses() {
            let enc = resp.encode();
            for cut in 0..enc.len() {
                assert!(
                    Response::decode(&enc[..cut]).is_err(),
                    "{resp:?} truncated to {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn wrong_magic_version_opcode_rejected() {
        let enc = Request::Ping.encode();
        let mut bad = enc.clone();
        bad[0] = 0xC5;
        assert!(matches!(
            Request::decode(&bad),
            Err(DecodeError::WrongMagic { .. })
        ));
        let mut bad = enc.clone();
        bad[1] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Request::decode(&bad),
            Err(DecodeError::UnsupportedVersion(_))
        ));
        let mut bad = enc;
        bad[2] = 0x7F;
        assert!(matches!(Request::decode(&bad), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn version1_operations_stay_byte_identical() {
        // Every pre-v2 frame must still declare version 1 so v1 peers
        // keep decoding it; only RangeQuery frames declare version 2.
        for req in sample_requests() {
            let enc = req.encode();
            let want = min_version_for(req.opcode());
            assert_eq!(enc[1], want, "{req:?}");
            assert_eq!(
                want,
                if matches!(req, Request::RangeQuery { .. }) { 2 } else { 1 }
            );
        }
        for resp in sample_responses() {
            let enc = resp.encode();
            let want = min_version_for(resp.opcode());
            assert_eq!(enc[1], want, "{resp:?}");
            assert_eq!(
                want,
                if matches!(resp, Response::RangeOk { .. }) { 2 } else { 1 }
            );
        }
    }

    #[test]
    fn v2_opcode_in_v1_frame_rejected() {
        // A frame claiming version 1 but carrying a v2-only opcode is
        // malformed, not silently accepted.
        let mut enc = Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 0,
            t1: 4,
            qs: vec![0.5],
        }
        .encode();
        assert_eq!(enc[1], 2);
        enc[1] = 1;
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn empty_range_rejected() {
        let bad = Request::RangeQuery {
            tenant: "t".into(),
            key: "k".into(),
            t0: 5,
            t1: 5,
            qs: vec![0.5],
        };
        assert!(Request::decode(&bad.encode()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Request::Flush.encode();
        enc.push(0);
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn oversized_declared_lengths_rejected_without_allocation() {
        // An ingest frame declaring a 2^60-value batch must be rejected
        // by the bound check, not by an allocation attempt.
        let mut w = Writer::with_header(FRAME_MAGIC, PROTOCOL_VERSION);
        w.u8(op::INGEST);
        w.bytes(b"t");
        w.bytes(b"k");
        w.varint(1 << 60);
        let enc = w.finish();
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn empty_identifiers_and_batches_rejected() {
        let bad = Request::Ingest {
            tenant: "".into(),
            key: "k".into(),
            values: vec![1.0],
        };
        assert!(Request::decode(&bad.encode()).is_err());
        let bad = Request::Ingest {
            tenant: "t".into(),
            key: "k".into(),
            values: vec![],
        };
        assert!(Request::decode(&bad.encode()).is_err());
        let bad = Request::Query {
            tenant: "t".into(),
            key: "k".into(),
            qs: vec![],
        };
        assert!(Request::decode(&bad.encode()).is_err());
    }

    #[test]
    fn non_utf8_identifier_rejected() {
        let mut w = Writer::with_header(FRAME_MAGIC, PROTOCOL_VERSION);
        w.u8(op::QUERY);
        w.bytes(&[0xFF, 0xFE]);
        w.bytes(b"k");
        w.f64_slice(&[0.5]);
        let enc = w.finish();
        assert!(matches!(Request::decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn frame_io_round_trips_and_bounds() {
        let payload = Request::Ping.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(&buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // A header declaring > MAX_FRAME is InvalidData.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = io::Cursor::new(&huge[..]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A stream dying mid-frame is UnexpectedEof.
        let mut partial = buf.clone();
        partial.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(&partial);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn view_decode_equals_owned_decode_for_every_opcode() {
        // The owned decoder delegates to the view, so this can only
        // fail if to_owned() diverges — keep it as the tripwire.
        for req in sample_requests() {
            let enc = req.encode();
            let view = RequestView::decode(&enc).unwrap();
            assert_eq!(view.to_owned(), req, "{req:?}");
            assert_eq!(view, req.view(), "{req:?}");
            assert_eq!(view.opcode(), req.opcode());
            // Re-encoding the borrowed view is byte-identical too.
            assert_eq!(view.encode(), enc, "{req:?}");
        }
    }

    #[test]
    fn view_ingest_values_are_borrowed_wire_bytes() {
        let req = Request::Ingest {
            tenant: "acme".into(),
            key: "k".into(),
            values: vec![1.5, -2.5, f64::NAN, 0.0],
        };
        let enc = req.encode();
        let RequestView::Ingest { values, .. } = RequestView::decode(&enc).unwrap() else {
            panic!("wrong variant");
        };
        let F64s::Le(bytes) = values else {
            panic!("decode must yield the wire form");
        };
        assert_eq!(bytes.len(), 4 * 8);
        // In-place reads agree with the owned decode bit-for-bit.
        assert_eq!(values.len(), 4);
        assert_eq!(values.get(0), Some(1.5));
        assert!(values.get(2).unwrap().is_nan());
        assert_eq!(values.get(4), None);
        assert!(!values.all_finite());
        let owned: Vec<u64> = values.iter().map(f64::to_bits).collect();
        let expect: Vec<u64> = [1.5, -2.5, f64::NAN, 0.0].iter().map(|v| v.to_bits()).collect();
        assert_eq!(owned, expect);
    }

    #[test]
    fn f64s_forms_compare_bitwise() {
        let vals = [1.5, -0.0, f64::INFINITY];
        let le: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(F64s::Le(&le), F64s::Slice(&vals));
        assert_eq!(F64s::Slice(&vals).to_vec(), vals.to_vec());
        assert!(F64s::Slice(&vals[..2]).all_finite());
        assert!(!F64s::Slice(&vals).all_finite());
    }

    fn encode_batch(inners: &[Vec<u8>], response: bool) -> Vec<u8> {
        let mut out = Vec::new();
        batch_header_into(inners.len(), response, &mut out);
        for inner in inners {
            push_batch_op(inner, &mut out);
        }
        out
    }

    #[test]
    fn batch_envelope_round_trips() {
        let inners = vec![
            Request::Ping.encode(),
            Request::Ingest {
                tenant: "t".into(),
                key: "k".into(),
                values: vec![1.0, 2.0],
            }
            .encode(),
            Request::Flush.encode(),
        ];
        let enc = encode_batch(&inners, false);
        assert_eq!(enc[1], 3, "batch frames declare protocol version 3");
        assert_eq!(enc[2], op::BATCH);
        assert!(is_batch_request(&enc));
        let batch = BatchView::decode_request(&enc).unwrap();
        assert_eq!(batch.len(), 3);
        let got: Vec<&[u8]> = batch.ops().collect();
        assert_eq!(got.len(), 3);
        for (inner, want) in got.iter().zip(&inners) {
            assert_eq!(*inner, want.as_slice());
            assert!(Request::decode(inner).is_ok());
        }

        let resp_inners = vec![Response::Pong.encode(), Response::FlushOk.encode()];
        let enc = encode_batch(&resp_inners, true);
        assert_eq!(enc[2], response_opcode(op::BATCH));
        let batch = BatchView::decode_response(&enc).unwrap();
        assert_eq!(batch.len(), 2);
        for (inner, want) in batch.ops().zip(&resp_inners) {
            assert_eq!(inner, want.as_slice());
        }
    }

    #[test]
    fn batch_envelope_rejects_hostile_shapes() {
        let ping = Request::Ping.encode();

        // Nested envelopes.
        let nested = encode_batch(
            std::slice::from_ref(&encode_batch(std::slice::from_ref(&ping), false)),
            false,
        );
        assert!(matches!(
            BatchView::decode_request(&nested),
            Err(DecodeError::Corrupt(_))
        ));

        // Zero ops.
        let mut w = Writer::with_header(FRAME_MAGIC, 3);
        w.u8(op::BATCH);
        w.varint(0);
        assert!(BatchView::decode_request(&w.finish()).is_err());

        // Declared count above the limit.
        let mut w = Writer::with_header(FRAME_MAGIC, 3);
        w.u8(op::BATCH);
        w.varint(MAX_BATCH_OPS + 1);
        assert!(BatchView::decode_request(&w.finish()).is_err());

        // Count says 2, body carries 1.
        let mut short = Vec::new();
        batch_header_into(2, false, &mut short);
        push_batch_op(&ping, &mut short);
        assert!(BatchView::decode_request(&short).is_err());

        // Trailing bytes after the declared ops.
        let mut trailing = encode_batch(std::slice::from_ref(&ping), false);
        trailing.push(0);
        assert!(BatchView::decode_request(&trailing).is_err());

        // Inner length overrunning the envelope.
        let mut overrun = Vec::new();
        batch_header_into(1, false, &mut overrun);
        overrun.push(0x7F); // declares 127 bytes, none follow
        assert!(matches!(
            BatchView::decode_request(&overrun),
            Err(DecodeError::UnexpectedEnd)
        ));

        // Every truncation of a valid envelope fails.
        let enc = encode_batch(&[ping.clone(), ping], false);
        for cut in 0..enc.len() {
            assert!(BatchView::decode_request(&enc[..cut]).is_err(), "cut={cut}");
        }

        // A batch frame is not a single request, and a v1/v2 frame
        // cannot smuggle the batch opcode.
        let enc = encode_batch(&[Request::Ping.encode()], false);
        assert!(matches!(RequestView::decode(&enc), Err(DecodeError::Corrupt(_))));
        let mut downgraded = enc;
        downgraded[1] = 2;
        assert!(BatchView::decode_request(&downgraded).is_err());
    }

    #[test]
    fn corked_frames_match_write_frame() {
        let payload = Request::Ping.encode();
        let mut corked = Vec::new();
        let at = begin_frame(&mut corked);
        corked.extend_from_slice(&payload);
        end_frame(&mut corked, at);
        let mut classic = Vec::new();
        write_frame(&mut classic, &payload).unwrap();
        assert_eq!(corked, classic);

        // Two frames corked back to back read out as two frames.
        let at = begin_frame(&mut corked);
        corked.extend_from_slice(&payload);
        end_frame(&mut corked, at);
        let mut cursor = io::Cursor::new(&corked);
        let mut buf = Vec::new();
        assert!(read_frame_into(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, payload);
        assert!(read_frame_into(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, payload);
        assert!(!read_frame_into(&mut cursor, &mut buf).unwrap());
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::QuotaExceeded,
            ErrorCode::UnknownKey,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Unavailable,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(7), None);
    }
}

//! Server configuration: the sketch family served, shard topology,
//! quotas, and checkpointing — everything the `qsketch_server` binary
//! parses from its command line. `OPERATIONS.md` documents every knob
//! from the operator's side; this module is the typed form.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

use qsketch_streamsim::checkpoint::CheckpointConfig;
use qsketch_streamsim::keyed_engine::{KeyedEngineConfig, RollupOptions, TenantQuota};
use qsketch_streamsim::rollup::TierSpec;

/// Fixed RNG seed for server-minted randomized sketches (KLL's
/// compaction coin). A fixed seed keeps the [`SketchFactory`] contract —
/// every minted sketch starts bit-identical — which recovery and the
/// shard workers rely on. Distinct keys still compact independently
/// because their sketches see different data.
///
/// [`SketchFactory`]: qsketch_core::sketch::SketchFactory
pub const SERVER_SKETCH_SEED: u64 = 0x5EED_C0DE_D00D_F00D;

/// Which sketch family the server instantiates per `(tenant, key)`.
///
/// The textual form (accepted by `--sketch` and [`FromStr`]) is
/// `family[:param[:param]]`:
///
/// ```
/// use qsketch_server::config::ServerSketchSpec;
///
/// let spec: ServerSketchSpec = "kll:200".parse().unwrap();
/// assert_eq!(spec, ServerSketchSpec::Kll { k: 200 });
/// assert_eq!(spec.to_string(), "kll:200");
///
/// let spec: ServerSketchSpec = "dds:0.01".parse().unwrap();
/// assert_eq!(spec, ServerSketchSpec::Dds { alpha: 0.01 });
///
/// let spec: ServerSketchSpec = "udds:0.001:1024".parse().unwrap();
/// assert_eq!(
///     spec,
///     ServerSketchSpec::Udds { alpha: 0.001, buckets: 1024 }
/// );
///
/// // Bare family names take the paper-tuned defaults.
/// assert_eq!("kll".parse(), Ok(ServerSketchSpec::Kll { k: 200 }));
/// assert!("tdigest:100".parse::<ServerSketchSpec>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServerSketchSpec {
    /// KLL with parameter `k` (rank-error guarantee; randomized).
    Kll {
        /// The KLL `k` parameter.
        k: u16,
    },
    /// DDSketch (unbounded store) with relative accuracy `alpha`.
    Dds {
        /// Relative-error target.
        alpha: f64,
    },
    /// UDDSketch with initial `alpha` and a bucket budget (collapses
    /// to stay within it).
    Udds {
        /// Initial relative-error target.
        alpha: f64,
        /// Maximum bucket count before a collapse.
        buckets: usize,
    },
}

impl Default for ServerSketchSpec {
    fn default() -> Self {
        ServerSketchSpec::Kll { k: 200 }
    }
}

impl fmt::Display for ServerSketchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerSketchSpec::Kll { k } => write!(f, "kll:{k}"),
            ServerSketchSpec::Dds { alpha } => write!(f, "dds:{alpha}"),
            ServerSketchSpec::Udds { alpha, buckets } => write!(f, "udds:{alpha}:{buckets}"),
        }
    }
}

impl FromStr for ServerSketchSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let family = parts.next().unwrap_or("");
        let params: Vec<&str> = parts.collect();
        let parse_f64 = |p: &str, what: &str| {
            p.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("bad {what} {p:?} in sketch spec {s:?}"))
        };
        match (family, params.as_slice()) {
            ("kll", []) => Ok(ServerSketchSpec::Kll { k: 200 }),
            ("kll", [k]) => k
                .parse::<u16>()
                .ok()
                .filter(|k| *k >= 8)
                .map(|k| ServerSketchSpec::Kll { k })
                .ok_or_else(|| format!("bad k {k:?} in sketch spec {s:?} (need 8..=65535)")),
            ("dds", []) => Ok(ServerSketchSpec::Dds { alpha: 0.01 }),
            ("dds", [a]) => Ok(ServerSketchSpec::Dds {
                alpha: parse_f64(a, "alpha")?,
            }),
            ("udds", []) => Ok(ServerSketchSpec::Udds {
                alpha: 0.001,
                buckets: 1024,
            }),
            ("udds", [a, b]) => Ok(ServerSketchSpec::Udds {
                alpha: parse_f64(a, "alpha")?,
                buckets: b
                    .parse::<usize>()
                    .ok()
                    .filter(|b| *b >= 8)
                    .ok_or_else(|| format!("bad bucket count {b:?} in sketch spec {s:?}"))?,
            }),
            _ => Err(format!(
                "unknown sketch spec {s:?} (expected kll[:k], dds[:alpha], udds[:alpha:buckets])"
            )),
        }
    }
}

/// Everything the server binary needs to run: address, engine topology,
/// sketch family, quotas, durability.
///
/// ```
/// use qsketch_server::config::ServerConfig;
///
/// let config = ServerConfig::new("127.0.0.1:7071")
///     .with_shards(4)
///     .with_default_quota(50_000.0)
///     .with_tenant_quota("free-tier", 1_000.0);
/// assert_eq!(config.shards, 4);
/// assert_eq!(config.sketch.to_string(), "kll:200");
/// assert!(config.checkpoint_dir.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7071` (port 0 = ephemeral).
    pub addr: String,
    /// Shard worker count.
    pub shards: usize,
    /// Per-shard queue capacity in batches.
    pub queue_capacity: usize,
    /// Sketch family per `(tenant, key)`.
    pub sketch: ServerSketchSpec,
    /// Checkpoint directory (`None` = durability disabled; the
    /// `Checkpoint` op then answers `unavailable`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Values per shard between automatic checkpoints.
    pub checkpoint_interval: u64,
    /// Recover from existing checkpoints in `checkpoint_dir` at start.
    pub recover: bool,
    /// Events/s granted to tenants without an explicit quota
    /// (`None` = unlimited).
    pub default_quota: Option<f64>,
    /// Explicit per-tenant quotas, events/s.
    pub quotas: Vec<(String, f64)>,
    /// Values per rollup window (`None` = rollups disabled; the
    /// `RangeQuery` op then answers `unavailable`).
    pub rollup_window: Option<u64>,
    /// Rollup tier ladder, parsed from `--rollup-tiers` (see
    /// [`parse_rollup_tiers`]). Ignored unless `rollup_window` is set.
    pub rollup_tiers: Vec<TierSpec>,
    /// Root directory for per-key rollup spill files (`None` =
    /// memory-only rollups).
    pub rollup_dir: Option<PathBuf>,
}

/// Parse a rollup tier ladder of the form `width:keep,width:keep,...`
/// where `width` is in windows — e.g. `1:8,4:8,16:8`. Widths must be
/// increasing multiples; the [`RollupStore`] constructor validates
/// that, this only parses.
///
/// [`RollupStore`]: qsketch_streamsim::rollup::RollupStore
///
/// ```
/// use qsketch_server::config::parse_rollup_tiers;
///
/// let tiers = parse_rollup_tiers("1:8,4:8").unwrap();
/// assert_eq!((tiers[1].width, tiers[1].keep), (4, 8));
/// assert!(parse_rollup_tiers("1:8,oops").is_err());
/// ```
pub fn parse_rollup_tiers(s: &str) -> Result<Vec<TierSpec>, String> {
    let mut tiers = Vec::new();
    for part in s.split(',') {
        let (w, k) = part
            .split_once(':')
            .ok_or_else(|| format!("bad tier {part:?} in {s:?} (expected width:keep)"))?;
        let width = w
            .parse::<u64>()
            .ok()
            .filter(|w| *w > 0)
            .ok_or_else(|| format!("bad tier width {w:?} in {s:?}"))?;
        let keep = k
            .parse::<usize>()
            .ok()
            .filter(|k| *k > 0)
            .ok_or_else(|| format!("bad tier keep {k:?} in {s:?}"))?;
        tiers.push(TierSpec { width, keep });
    }
    if tiers.is_empty() {
        return Err(format!("empty tier ladder {s:?}"));
    }
    Ok(tiers)
}

impl ServerConfig {
    /// A config listening on `addr` with 4 shards, KLL sketches, no
    /// quotas, and durability disabled.
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            shards: 4,
            queue_capacity: 256,
            sketch: ServerSketchSpec::default(),
            checkpoint_dir: None,
            checkpoint_interval: 1 << 20,
            recover: false,
            default_quota: None,
            quotas: Vec::new(),
            rollup_window: None,
            rollup_tiers: Vec::new(),
            rollup_dir: None,
        }
    }

    /// Enable rollups: every `window_values` ingested values per
    /// `(tenant, key)` close one window, which cascades through
    /// `tiers` (widths in windows).
    pub fn with_rollup(mut self, window_values: u64, tiers: Vec<TierSpec>) -> Self {
        self.rollup_window = Some(window_values.max(1));
        self.rollup_tiers = tiers;
        self
    }

    /// Spill rollup tiers to per-key directories under `dir`.
    pub fn with_rollup_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.rollup_dir = Some(dir.into());
        self
    }

    /// Set the shard worker count (min 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the per-shard queue capacity in batches (min 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the sketch family.
    pub fn with_sketch(mut self, sketch: ServerSketchSpec) -> Self {
        self.sketch = sketch;
        self
    }

    /// Enable checkpointing into `dir`.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Set the automatic checkpoint interval in values per shard.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval.max(1);
        self
    }

    /// Recover from checkpoints at start (requires a checkpoint dir).
    pub fn with_recover(mut self, recover: bool) -> Self {
        self.recover = recover;
        self
    }

    /// Grant `events_per_sec` to every tenant without an explicit quota.
    pub fn with_default_quota(mut self, events_per_sec: f64) -> Self {
        self.default_quota = Some(events_per_sec);
        self
    }

    /// Set one tenant's quota in events/s (burst = one second's worth).
    pub fn with_tenant_quota(mut self, tenant: &str, events_per_sec: f64) -> Self {
        self.quotas.retain(|(t, _)| t != tenant);
        self.quotas.push((tenant.to_string(), events_per_sec));
        self
    }

    /// The engine config this server config implies.
    pub fn engine_config(&self) -> KeyedEngineConfig {
        let mut config = KeyedEngineConfig::new(self.shards);
        config.queue_capacity = self.queue_capacity.max(1);
        for (tenant, rate) in &self.quotas {
            config
                .quotas
                .push((tenant.clone(), TenantQuota::per_sec(*rate)));
        }
        if let Some(rate) = self.default_quota {
            config.default_quota = Some(TenantQuota::per_sec(rate));
        }
        if let Some(dir) = &self.checkpoint_dir {
            config.checkpoint = Some(CheckpointConfig::new(dir, self.checkpoint_interval));
        }
        if let Some(window) = self.rollup_window {
            let tiers = if self.rollup_tiers.is_empty() {
                vec![
                    TierSpec { width: 1, keep: 16 },
                    TierSpec { width: 4, keep: 16 },
                    TierSpec { width: 16, keep: 16 },
                ]
            } else {
                self.rollup_tiers.clone()
            };
            let mut options = RollupOptions::new(window, tiers);
            if let Some(dir) = &self.rollup_dir {
                options = options.with_spill_root(dir.clone());
            }
            config.rollup = Some(options);
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_specs_round_trip_through_display() {
        for text in ["kll:200", "kll:512", "dds:0.01", "udds:0.001:1024"] {
            let spec: ServerSketchSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(spec.to_string().parse::<ServerSketchSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for text in [
            "", "kll:0", "kll:7", "kll:abc", "dds:-1", "dds:nan", "udds:0.001",
            "udds:0.001:4", "moments:10", "kll:200:9",
        ] {
            let err = text.parse::<ServerSketchSpec>().unwrap_err();
            assert!(!err.is_empty(), "{text:?}");
        }
    }

    #[test]
    fn engine_config_carries_rollup_options() {
        let config = ServerConfig::new("127.0.0.1:0")
            .with_rollup(1_000, parse_rollup_tiers("1:8,4:8").unwrap())
            .with_rollup_dir("/tmp/qsketch-rollup-test");
        let engine = config.engine_config();
        let rollup = engine.rollup.expect("rollup options plumbed through");
        assert_eq!(rollup.window_values, 1_000);
        assert_eq!(rollup.tiers.len(), 2);
        assert_eq!(rollup.tiers[1].width, 4);
        assert!(rollup.spill_root.is_some());

        // Rollups enabled without an explicit ladder take the default
        // three-tier 1/4/16 ladder.
        let engine = ServerConfig::new("127.0.0.1:0")
            .with_rollup(500, Vec::new())
            .engine_config();
        assert_eq!(engine.rollup.unwrap().tiers.len(), 3);

        // Disabled by default.
        assert!(ServerConfig::new("127.0.0.1:0").engine_config().rollup.is_none());
    }

    #[test]
    fn tier_ladders_parse_and_reject_garbage() {
        let tiers = parse_rollup_tiers("1:16,4:16,16:16").unwrap();
        assert_eq!(tiers.len(), 3);
        assert_eq!((tiers[0].width, tiers[0].keep), (1, 16));
        for bad in ["", "1", "1:0", "0:8", "1:8,", "a:b", "1:8;4:8"] {
            assert!(parse_rollup_tiers(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn engine_config_carries_quotas_and_checkpoints() {
        let config = ServerConfig::new("127.0.0.1:0")
            .with_shards(3)
            .with_default_quota(100.0)
            .with_tenant_quota("noisy", 10.0)
            .with_checkpoint_dir("/tmp/qsketch-test")
            .with_checkpoint_interval(500);
        let engine = config.engine_config();
        assert_eq!(engine.shards, 3);
        assert_eq!(engine.quotas.len(), 1);
        assert_eq!(engine.default_quota.unwrap().events_per_sec, 100.0);
        assert_eq!(engine.checkpoint.as_ref().unwrap().interval_values, 500);
    }
}

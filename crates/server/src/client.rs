//! A blocking client for the qsketch wire protocol: one request in
//! flight per connection, typed results, typed errors.
//!
//! ```no_run
//! use qsketch_server::client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7071").unwrap();
//! client.hello().unwrap();
//! client.ingest("acme", "checkout.latency", &[12.5, 45.0, 7.1]).unwrap();
//! client.flush().unwrap();
//! let (values, count) = client.query("acme", "checkout.latency", &[0.5, 0.99]).unwrap();
//! assert_eq!(count, 3);
//! assert_eq!(values.len(), 2);
//! ```

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use qsketch_core::codec::DecodeError;

use crate::protocol::{
    batch_header_into, begin_frame, end_frame, read_frame_into, BatchView, ErrorCode, F64s,
    Request, RequestView, Response, ServerStats,
};

/// Everything a client call can fail with.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The connection failed (refused, reset, timed out, EOF).
    Io(io::Error),
    /// The server's bytes did not parse as a response.
    Decode(DecodeError),
    /// The server answered with a protocol error.
    Server {
        /// Machine-readable class.
        code: ErrorCode,
        /// Retry hint for [`ErrorCode::QuotaExceeded`], milliseconds.
        retry_after_ms: u64,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with the wrong response type for the request.
    UnexpectedResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Decode(e) => write!(f, "malformed server response: {e}"),
            ClientError::Server {
                code,
                retry_after_ms,
                message,
            } => {
                write!(f, "server error ({code}): {message}")?;
                if *retry_after_ms > 0 {
                    write!(f, " [retry after {retry_after_ms} ms]")?;
                }
                Ok(())
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response type: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A blocking connection to a qsketch server.
///
/// The client reuses its encode and read buffers across calls, and the
/// slice-taking methods ([`ingest`](Self::ingest), [`query`](Self::query),
/// …) encode through the borrowed [`RequestView`] — a call copies the
/// caller's values exactly once, onto the wire.
pub struct Client {
    stream: TcpStream,
    /// Reusable encode buffer (request frames).
    wire: Vec<u8>,
    /// Reusable read buffer (response frame payloads).
    frame: Vec<u8>,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7071"`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            wire: Vec::new(),
            frame: Vec::new(),
        })
    }

    /// Connect with a timeout on establishing the connection.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            wire: Vec::new(),
            frame: Vec::new(),
        })
    }

    /// Read one response frame into the reusable buffer and decode it,
    /// mapping `Error` responses to [`ClientError::Server`].
    fn read_response(&mut self) -> Result<Response, ClientError> {
        if !read_frame_into(&mut self.stream, &mut self.frame)? {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = Response::decode(&self.frame)?;
        if let Response::Error {
            code,
            retry_after_ms,
            message,
        } = response
        {
            return Err(ClientError::Server {
                code,
                retry_after_ms,
                message,
            });
        }
        Ok(response)
    }

    /// One request/response exchange through the borrowed encoder.
    pub fn call_view(&mut self, request: &RequestView<'_>) -> Result<Response, ClientError> {
        self.wire.clear();
        let at = begin_frame(&mut self.wire);
        request.encode_into(&mut self.wire);
        end_frame(&mut self.wire, at);
        self.stream.write_all(&self.wire)?;
        self.read_response()
    }

    /// One request/response exchange.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.call_view(&request.view())
    }

    /// Pipelined exchange: send every request in **one v3 batch
    /// envelope** (one frame, one syscall) and collect the per-op
    /// results in order. Op-level failures arrive as
    /// `Err(ClientError::Server{..})` entries without poisoning their
    /// neighbours; the outer `Result` fails only on transport or
    /// envelope-level errors. Requires a v3 server; `Shutdown` is not
    /// allowed in a batch.
    pub fn call_batch(
        &mut self,
        requests: &[RequestView<'_>],
    ) -> Result<Vec<Result<Response, ClientError>>, ClientError> {
        self.wire.clear();
        let at = begin_frame(&mut self.wire);
        batch_header_into(requests.len(), false, &mut self.wire);
        let mut scratch = Vec::new();
        for request in requests {
            scratch.clear();
            request.encode_into(&mut scratch);
            crate::protocol::push_batch_op(&scratch, &mut self.wire);
        }
        end_frame(&mut self.wire, at);
        self.stream.write_all(&self.wire)?;
        if !read_frame_into(&mut self.stream, &mut self.frame)? {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let batch = match BatchView::decode_response(&self.frame) {
            Ok(batch) => batch,
            // A pre-v3 server (or an envelope-level rejection) answers
            // with a single plain response frame.
            Err(_) => {
                let response = Response::decode(&self.frame)?;
                if let Response::Error {
                    code,
                    retry_after_ms,
                    message,
                } = response
                {
                    return Err(ClientError::Server {
                        code,
                        retry_after_ms,
                        message,
                    });
                }
                return Err(ClientError::UnexpectedResponse(format!(
                    "expected a batch envelope, got {response:?}"
                )));
            }
        };
        let results = batch
            .ops()
            .map(|inner| {
                let response = Response::decode(inner)?;
                if let Response::Error {
                    code,
                    retry_after_ms,
                    message,
                } = response
                {
                    return Err(ClientError::Server {
                        code,
                        retry_after_ms,
                        message,
                    });
                }
                Ok(response)
            })
            .collect();
        Ok(results)
    }

    /// Negotiate the protocol version; returns the agreed version.
    pub fn hello(&mut self) -> Result<u8, ClientError> {
        match self.call(&Request::Hello {
            min_version: 1,
            max_version: crate::protocol::PROTOCOL_VERSION,
        })? {
            Response::HelloOk { version, .. } => Ok(version),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Ingest a value batch; returns the number of values accepted.
    pub fn ingest(
        &mut self,
        tenant: &str,
        key: &str,
        values: &[f64],
    ) -> Result<u64, ClientError> {
        match self.call_view(&RequestView::Ingest {
            tenant,
            key,
            values: F64s::Slice(values),
        })? {
            Response::IngestOk { accepted } => Ok(accepted),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Quantile point query; returns `(estimates, stream count)`.
    pub fn query(
        &mut self,
        tenant: &str,
        key: &str,
        qs: &[f64],
    ) -> Result<(Vec<f64>, u64), ClientError> {
        match self.call_view(&RequestView::Query {
            tenant,
            key,
            qs: F64s::Slice(qs),
        })? {
            Response::QueryOk { values, count } => Ok((values, count)),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Discretized CDF; returns `((q, value) grid, stream count)`.
    pub fn cdf(
        &mut self,
        tenant: &str,
        key: &str,
        points: u32,
    ) -> Result<(Vec<(f64, f64)>, u64), ClientError> {
        match self.call(&Request::Cdf {
            tenant: tenant.into(),
            key: key.into(),
            points,
        })? {
            Response::CdfOk { qs, values, count } => {
                Ok((qs.into_iter().zip(values).collect(), count))
            }
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Merged-range quantile query over a key prefix; returns
    /// `(estimates, merged count, merged key count)`.
    pub fn merged_query(
        &mut self,
        tenant: &str,
        prefix: &str,
        qs: &[f64],
    ) -> Result<(Vec<f64>, u64, u64), ClientError> {
        match self.call_view(&RequestView::MergedQuery {
            tenant,
            prefix,
            qs: F64s::Slice(qs),
        })? {
            Response::MergedOk {
                values,
                count,
                merged_keys,
            } => Ok((values, count, merged_keys)),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Rollup range query over `[t0, t1)` windows; returns
    /// `(estimates, merged count, merged slot count)`. An empty range
    /// (fully aged out or beyond the frontier) answers with zero count
    /// and no estimates rather than an error.
    pub fn range_query(
        &mut self,
        tenant: &str,
        key: &str,
        t0: u64,
        t1: u64,
        qs: &[f64],
    ) -> Result<(Vec<f64>, u64, u64), ClientError> {
        match self.call_view(&RequestView::RangeQuery {
            tenant,
            key,
            t0,
            t1,
            qs: F64s::Slice(qs),
        })? {
            Response::RangeOk {
                values,
                count,
                merged_slots,
            } => Ok((values, count, merged_slots)),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Block until everything already ingested is queryable.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Flush)? {
            Response::FlushOk => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Write a durable checkpoint of every shard registry.
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Checkpoint)? {
            Response::CheckpointOk => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Operational stats snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

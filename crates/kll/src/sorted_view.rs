//! Weighted sorted view over a sampling sketch's retained items.
//!
//! Both KLL and ReqSketch answer queries by conceptually replicating each
//! retained item `w` times, sorting, and indexing at rank `⌈qN⌉` (§3.1,
//! Table 2). Materialising the replication is unnecessary: a sorted list of
//! `(value, weight)` pairs with cumulative weights answers the same query by
//! binary search.

/// A sorted, cumulatively weighted snapshot of retained samples.
#[derive(Debug, Clone)]
pub struct SortedView {
    /// Item values, ascending.
    values: Vec<f64>,
    /// `cum_weights[i]` = total weight of `values[0..=i]`.
    cum_weights: Vec<u64>,
}

impl SortedView {
    /// Build a view from `(value, weight)` pairs (any order).
    pub fn new(mut items: Vec<(f64, u64)>) -> Self {
        items.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in sketch items"));
        let mut values = Vec::with_capacity(items.len());
        let mut cum_weights = Vec::with_capacity(items.len());
        let mut running = 0u64;
        for (v, w) in items {
            running += w;
            values.push(v);
            cum_weights.push(running);
        }
        Self {
            values,
            cum_weights,
        }
    }

    /// Total weight represented by the view.
    pub fn total_weight(&self) -> u64 {
        self.cum_weights.last().copied().unwrap_or(0)
    }

    /// Number of distinct retained items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no items are retained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at (1-based) weighted rank `rank`: the first item whose
    /// cumulative weight reaches `rank`. `rank` is clamped into
    /// `[1, total_weight]`.
    pub fn value_at_rank(&self, rank: u64) -> f64 {
        assert!(!self.values.is_empty(), "rank query on empty view");
        let rank = rank.clamp(1, self.total_weight());
        // First index with cum_weight >= rank.
        let idx = self.cum_weights.partition_point(|&w| w < rank);
        self.values[idx]
    }

    /// Answer a `q`-quantile over a stream of `n` items: rank `⌈q·n⌉`.
    ///
    /// `n` is the *stream* length, which can exceed the view's total weight
    /// when compaction discarded items without promoting all weight (weights
    /// are exact in KLL, so normally `total_weight == n`).
    pub fn quantile(&self, q: f64, n: u64) -> f64 {
        let rank = (q * n as f64).ceil() as u64;
        self.value_at_rank(rank)
    }

    /// Weighted rank of `x`: the total weight of items `≤ x`.
    pub fn rank_of(&self, x: f64) -> u64 {
        let idx = self.values.partition_point(|&v| v <= x);
        if idx == 0 {
            0
        } else {
            self.cum_weights[idx - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_query_calculation() {
        // Table 2: one compactor at h=1 holding {3, 8, 11, 16, 30}, each of
        // weight 2, summarising the 10-element Table 1 stream.
        let view = SortedView::new(vec![(3.0, 2), (8.0, 2), (11.0, 2), (16.0, 2), (30.0, 2)]);
        assert_eq!(view.total_weight(), 10);
        // Ranks 1..10 expand to 3,3,8,8,11,11,16,16,30,30 as in Table 2.
        let expected = [3.0, 3.0, 8.0, 8.0, 11.0, 11.0, 16.0, 16.0, 30.0, 30.0];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(view.value_at_rank(i as u64 + 1), want, "rank {}", i + 1);
        }
        // Quantile^{-1} grid of Table 2.
        assert_eq!(view.quantile(0.5, 10), 11.0);
        assert_eq!(view.quantile(0.9, 10), 30.0);
        assert_eq!(view.quantile(1.0, 10), 30.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let view = SortedView::new(vec![(5.0, 1), (1.0, 1), (3.0, 1)]);
        assert_eq!(view.value_at_rank(1), 1.0);
        assert_eq!(view.value_at_rank(2), 3.0);
        assert_eq!(view.value_at_rank(3), 5.0);
    }

    #[test]
    fn rank_clamping() {
        let view = SortedView::new(vec![(2.0, 4)]);
        assert_eq!(view.value_at_rank(0), 2.0); // clamped up
        assert_eq!(view.value_at_rank(100), 2.0); // clamped down
    }

    #[test]
    fn rank_of_values() {
        let view = SortedView::new(vec![(1.0, 2), (5.0, 3), (9.0, 1)]);
        assert_eq!(view.rank_of(0.5), 0);
        assert_eq!(view.rank_of(1.0), 2);
        assert_eq!(view.rank_of(7.0), 5);
        assert_eq!(view.rank_of(9.0), 6);
    }

    #[test]
    fn empty_view() {
        let view = SortedView::new(vec![]);
        assert!(view.is_empty());
        assert_eq!(view.total_weight(), 0);
    }

    #[test]
    #[should_panic(expected = "empty view")]
    fn rank_on_empty_panics() {
        SortedView::new(vec![]).value_at_rank(1);
    }
}

//! KLL± — deletion support for KLL (§3.1: "Zhao et al. introduced a
//! mechanism to allow deletions" — KLL±, VLDB'21).
//!
//! The published construction pairs two KLL sketches: one summarises the
//! inserted items, the other the deleted items; the rank of `x` in the
//! live multiset is `Rank₊(x) − Rank₋(x)`, and quantiles are read off the
//! signed cumulative weights of the two samples. This is a *turnstile*
//! summary in the §5.1 taxonomy — the paper's evaluation covers only
//! cash-register sketches, so KLL± ships as an extension with its own
//! tests rather than as part of the reproduced experiments.
//!
//! Deletions must correspond to previously inserted values (standard
//! turnstile discipline); deleting values never inserted skews ranks
//! downward.

use qsketch_core::sketch::{check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError};

use crate::sketch::KllSketch;

/// A KLL pair supporting insertions and deletions.
#[derive(Debug, Clone)]
pub struct KllPlusMinus {
    inserts: KllSketch,
    deletes: KllSketch,
}

impl KllPlusMinus {
    /// Create with compactor parameter `k` for both halves.
    pub fn new(k: u16) -> Self {
        Self::with_seed(k, 0x00B1_A5ED)
    }

    /// Create with an explicit seed.
    pub fn with_seed(k: u16, seed: u64) -> Self {
        Self {
            inserts: KllSketch::with_seed(k, seed),
            deletes: KllSketch::with_seed(k, seed ^ 0x0DE1_E7E5),
        }
    }

    /// Record an insertion.
    pub fn insert(&mut self, value: f64) {
        QuantileSketch::insert(&mut self.inserts, value);
    }

    /// Record a deletion of a previously inserted value.
    pub fn delete(&mut self, value: f64) {
        QuantileSketch::insert(&mut self.deletes, value);
    }

    /// Net number of live items (inserts − deletes), saturating at zero.
    pub fn live_count(&self) -> u64 {
        self.inserts.count().saturating_sub(self.deletes.count())
    }

    /// Total updates processed (inserts + deletes).
    pub fn updates(&self) -> u64 {
        self.inserts.count() + self.deletes.count()
    }

    /// Estimated live rank of `x`: `Rank₊(x) − Rank₋(x)`.
    pub fn rank(&self, x: f64) -> i64 {
        self.inserts.rank(x) as i64 - self.deletes.rank(x) as i64
    }

    /// Estimate the `q`-quantile of the live multiset.
    pub fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        let live = self.live_count();
        if live == 0 {
            return Err(QueryError::Empty);
        }
        let target = (q * live as f64).ceil().max(1.0) as i64;

        // Signed sweep over the union of both samples in value order.
        let mut items: Vec<(f64, i64)> = Vec::new();
        let ins_view = self.inserts.sorted_view();
        let del_view = self.deletes.sorted_view();
        // Reconstruct per-item weights from the cumulative views.
        let mut prev = 0u64;
        while prev < ins_view.total_weight() {
            let v = ins_view.value_at_rank(prev + 1);
            let r = ins_view.rank_of(v);
            items.push((v, (r - prev) as i64));
            prev = r;
        }
        prev = 0;
        while prev < del_view.total_weight() {
            let v = del_view.value_at_rank(prev + 1);
            let r = del_view.rank_of(v);
            items.push((v, -((r - prev) as i64)));
            prev = r;
        }
        items.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in sketch"));

        let mut cum = 0i64;
        let mut best = None;
        for (v, w) in items {
            cum += w;
            if cum >= target {
                best = Some(v);
                break;
            }
        }
        Ok(best.unwrap_or(self.inserts.max()))
    }
}

impl MergeableSketch for KllPlusMinus {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.inserts.merge(&other.inserts)?;
        self.deletes.merge(&other.deletes)?;
        Ok(())
    }
}

impl QuantileSketch for KllPlusMinus {
    fn insert(&mut self, value: f64) {
        KllPlusMinus::insert(self, value);
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        KllPlusMinus::query(self, q)
    }

    fn count(&self) -> u64 {
        self.live_count()
    }

    fn memory_footprint(&self) -> usize {
        self.inserts.memory_footprint() + self.deletes.memory_footprint()
    }

    fn name(&self) -> &'static str {
        "KLL±"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_only_behaves_like_kll() {
        let mut pm = KllPlusMinus::with_seed(350, 1);
        let mut plain = KllSketch::with_seed(350, 1);
        for i in 0..100_000 {
            pm.insert(f64::from(i));
            QuantileSketch::insert(&mut plain, f64::from(i));
        }
        for q in [0.25, 0.5, 0.9, 0.99] {
            let a = pm.query(q).unwrap();
            let b = plain.query(q).unwrap();
            assert!(
                (a - b).abs() / 100_000.0 < 0.02,
                "q={q}: KLL± {a} vs KLL {b}"
            );
        }
    }

    #[test]
    fn deleting_the_top_half_shifts_quantiles() {
        let n = 100_000;
        let mut pm = KllPlusMinus::with_seed(350, 2);
        for i in 0..n {
            pm.insert(f64::from(i));
        }
        // Delete everything >= n/2.
        for i in n / 2..n {
            pm.delete(f64::from(i));
        }
        assert_eq!(pm.live_count(), (n / 2) as u64);
        // The live median is now ~n/4.
        let est = pm.query(0.5).unwrap();
        let truth = f64::from(n) / 4.0;
        assert!(
            (est - truth).abs() / f64::from(n) < 0.03,
            "median after deletes: {est} vs {truth}"
        );
        // The live maximum is ~n/2.
        let est_max = pm.query(0.999).unwrap();
        assert!(
            (est_max - f64::from(n) / 2.0).abs() / f64::from(n) < 0.03,
            "p99.9 after deletes: {est_max}"
        );
    }

    #[test]
    fn deleting_a_value_band_removes_it() {
        let mut pm = KllPlusMinus::with_seed(200, 3);
        for pass in 0..2 {
            for i in 0..50_000 {
                let v = f64::from(i % 1000);
                if pass == 0 {
                    pm.insert(v);
                } else if v < 100.0 {
                    pm.delete(v);
                }
            }
        }
        // Values < 100 deleted: the live 0.05-quantile is pushed to ~145.
        let est = pm.query(0.05).unwrap();
        assert!(est > 100.0, "low quantile {est} should skip deleted band");
    }

    #[test]
    fn empty_after_full_deletion() {
        let mut pm = KllPlusMinus::new(64);
        for i in 0..100 {
            pm.insert(f64::from(i));
        }
        for i in 0..100 {
            pm.delete(f64::from(i));
        }
        assert_eq!(pm.live_count(), 0);
        assert_eq!(pm.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn rank_is_signed_difference() {
        let mut pm = KllPlusMinus::new(200);
        for i in 0..1000 {
            pm.insert(f64::from(i));
        }
        for i in 0..500 {
            pm.delete(f64::from(i));
        }
        // Live rank of 499 is ~0; of 999 is ~500.
        assert!(pm.rank(499.0).abs() < 50);
        assert!((pm.rank(999.0) - 500).abs() < 50);
    }

    #[test]
    fn merge_combines_both_halves() {
        let mut a = KllPlusMinus::with_seed(200, 4);
        let mut b = KllPlusMinus::with_seed(200, 5);
        for i in 0..10_000 {
            a.insert(f64::from(i));
            b.insert(f64::from(i + 10_000));
        }
        for i in 0..5_000 {
            b.delete(f64::from(i + 10_000));
        }
        a.merge(&b).unwrap();
        assert_eq!(a.live_count(), 15_000);
        let est = a.query(0.999).unwrap();
        assert!(est > 18_000.0, "max region {est}");
    }

    #[test]
    fn memory_is_two_sketches() {
        let pm = KllPlusMinus::new(350);
        let plain = KllSketch::new(350);
        assert!(pm.memory_footprint() >= plain.memory_footprint());
    }
}

//! KLL streaming quantile sketch (§3.1 of the paper).
//!
//! KLL (Karnin–Lang–Liberty, FOCS'16, with the practical improvements of
//! Ivkin et al.) maintains a hierarchy of *compactors*. An item at level `h`
//! carries weight `2^h`. When the sketch is over capacity, one level is
//! sorted and *compacted*: a fair coin selects the odd- or even-indexed
//! items, which are promoted to level `h+1`; the rest are discarded. The
//! geometry of level capacities (`k·c^depth`, `c = 2/3`, floor of 8 — the
//! same scheme as the Apache DataSketches implementation the paper
//! benchmarks) yields `ε` additive rank error with high probability in
//! `O((1/ε)·√log(1/ε))` space.
//!
//! Estimates returned by KLL are always *actual stream values* (§3.1), so
//! on discrete data it frequently answers exactly.
//!
//! # Example
//!
//! ```
//! use qsketch_kll::KllSketch;
//! use qsketch_core::QuantileSketch;
//!
//! let mut kll = KllSketch::with_seed(200, 7);
//! for i in 1..=10_000 {
//!     kll.insert(i as f64);
//! }
//! let est = kll.query(0.5).unwrap();
//! // Rank error stays within a few percent at k = 200.
//! assert!((est - 5_000.0).abs() / 10_000.0 < 0.03);
//! ```


mod plusminus;
mod sketch;
mod sorted_view;

pub use plusminus::KllPlusMinus;
pub use sketch::{KllSketch, WIRE_MAGIC};
pub use sorted_view::SortedView;

/// The compactor-size parameter used in all of the paper's experiments
/// (§4.2): `max_compactor_size = 350`, expected rank error ≈ 0.97 %.
pub const PAPER_K: u16 = 350;

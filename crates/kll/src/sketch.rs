//! The KLL sketch proper: a hierarchy of compactors with lazy compaction.

use qsketch_core::sketch::{check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError};

use qsketch_core::rng::CoinFlipper;
use crate::sorted_view::SortedView;

/// Smallest compactor capacity; deep (old) levels never shrink below this.
/// Matches the Apache DataSketches floor of 8, which replaces the original
/// paper's bottom-level sampler with logically equivalent fixed-size levels.
const MIN_CAPACITY: usize = 8;

/// Capacity decay per level below the top: `cap(depth) = max(⌈k·(2/3)^depth⌉, 8)`.
const DECAY_NUM: u64 = 2;
const DECAY_DEN: u64 = 3;

/// KLL quantile sketch over `f64` values.
///
/// `k` (`max_compactor_size` in the paper, §4.2) bounds the capacity of the
/// highest compactor; lower levels shrink geometrically by 2/3 down to 8.
/// Items at level `h` weigh `2^h`.
#[derive(Debug, Clone)]
pub struct KllSketch {
    k: u16,
    /// `levels[h]` holds the items of the compactor at height `h`.
    /// Level 0 is unsorted (append buffer); levels ≥ 1 are kept sorted.
    levels: Vec<Vec<f64>>,
    count: u64,
    min: f64,
    max: f64,
    rng: CoinFlipper,
}

impl KllSketch {
    /// Create a sketch with the given `max_compactor_size` and a fixed
    /// default seed. Use [`KllSketch::with_seed`] for explicit seeding.
    pub fn new(k: u16) -> Self {
        Self::with_seed(k, 0xC0FF_EE11)
    }

    /// Create a sketch with the paper's parameterisation (`k = 350`, §4.2).
    pub fn paper_configuration() -> Self {
        Self::new(crate::PAPER_K)
    }

    /// Create a sketch with an explicit PRNG seed (compaction is
    /// randomised; seeding makes experiments reproducible).
    pub fn with_seed(k: u16, seed: u64) -> Self {
        assert!(k >= MIN_CAPACITY as u16, "k must be at least {MIN_CAPACITY}");
        Self {
            k,
            levels: vec![Vec::new()],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rng: CoinFlipper::new(seed),
        }
    }

    /// The `k` parameter the sketch was created with.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Number of levels (compactor heights) currently allocated.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of retained sample items across all compactors
    /// (the quantity §4.3 reports as 1048 for k = 350 after 1 M inserts).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Capacity of the compactor at `level` given the current number of
    /// levels: the top level gets `k`, each level below shrinks by 2/3,
    /// floored at 8.
    fn level_capacity(&self, level: usize) -> usize {
        let depth = self.levels.len() - 1 - level;
        let mut cap = self.k as u64;
        for _ in 0..depth {
            cap = (cap * DECAY_NUM).div_ceil(DECAY_DEN);
            if cap <= MIN_CAPACITY as u64 {
                return MIN_CAPACITY;
            }
        }
        (cap as usize).max(MIN_CAPACITY)
    }

    /// Sum of all level capacities under the current height.
    fn total_capacity(&self) -> usize {
        (0..self.levels.len()).map(|h| self.level_capacity(h)).sum()
    }

    /// Compact the lowest level that is at or over its capacity. This is the
    /// DataSketches "lazy" strategy: one compaction per overflow, which
    /// amortises insertion cost (ablated in `benches/ablation_kll.rs`).
    fn compact_once(&mut self) {
        let level = (0..self.levels.len())
            .find(|&h| self.levels[h].len() >= self.level_capacity(h))
            // If nothing individually overflows but the total does, compact
            // the largest level.
            .unwrap_or_else(|| {
                (0..self.levels.len())
                    .max_by_key(|&h| self.levels[h].len())
                    .expect("sketch has at least one level")
            });

        if self.levels[level].len() < 2 {
            // Cannot compact fewer than 2 items; grow instead so capacity
            // re-derivation gives the stream more room.
            self.levels.push(Vec::new());
            return;
        }

        if level + 1 == self.levels.len() {
            self.levels.push(Vec::new());
        }

        let mut items = std::mem::take(&mut self.levels[level]);
        items.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN inserted into sketch"));

        // If the count is odd, one item stays behind (DataSketches keeps the
        // first); the even remainder is halved.
        let odd_leftover = if items.len() % 2 == 1 {
            Some(items.remove(0))
        } else {
            None
        };

        let offset = usize::from(self.rng.flip());
        let promoted: Vec<f64> = items
            .iter()
            .skip(offset)
            .step_by(2)
            .copied()
            .collect();

        // Upper levels are kept sorted: merge the promoted run in.
        merge_sorted_into(&mut self.levels[level + 1], promoted);

        if let Some(v) = odd_leftover {
            self.levels[level].push(v);
        }
    }

    /// Run compactions until the sketch fits its capacity budget.
    fn compress_while_over_capacity(&mut self) {
        // Each compaction halves some level, so this terminates quickly.
        let mut guard = 0;
        while self.retained() >= self.total_capacity() {
            self.compact_once();
            guard += 1;
            assert!(guard < 64, "compaction failed to reduce size");
        }
    }

    /// Weighted `(value, weight)` items across all levels.
    fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut items = Vec::with_capacity(self.retained());
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items
    }

    /// Build the sorted, cumulative-weight view used to answer queries.
    pub fn sorted_view(&self) -> SortedView {
        SortedView::new(self.weighted_items())
    }

    /// Estimated rank of `x` (count of stream elements ≤ x).
    pub fn rank(&self, x: f64) -> u64 {
        self.sorted_view().rank_of(x)
    }

    /// Smallest value seen (exact — KLL tracks min/max outside the
    /// compactors). `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value seen (exact). `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl QuantileSketch for KllSketch {
    fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return; // trait-level NaN policy: ignore
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.levels[0].push(value);
        if self.retained() >= self.total_capacity() {
            self.compact_once();
        }
    }

    /// Batch kernel: the scalar path pays an O(levels) `retained()` +
    /// `total_capacity()` scan per value; the bulk path computes the free
    /// room once, reserves it, appends a whole chunk, and compacts at most
    /// once per chunk. Because the scalar trigger is exactly "compact when
    /// `retained == total_capacity` after a push", filling precisely up to
    /// capacity before the single compaction reproduces the same
    /// compaction points — and therefore the same
    /// [`CoinFlipper`] draw order and bit-identical state.
    fn insert_batch(&mut self, values: &[f64]) {
        let mut i = 0;
        while i < values.len() {
            let room = self
                .total_capacity()
                .saturating_sub(self.retained())
                // The scalar path always pushes once before re-checking.
                .max(1);
            let take = room.min(values.len() - i);
            let chunk = &values[i..i + take];
            i += take;
            self.levels[0].reserve(take);
            for &value in chunk {
                if value.is_nan() {
                    continue;
                }
                self.count += 1;
                self.min = self.min.min(value);
                self.max = self.max.max(value);
                self.levels[0].push(value);
            }
            if self.retained() >= self.total_capacity() {
                self.compact_once();
            }
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        let view = self.sorted_view();
        // Weights always sum to a value within one compaction of `count`,
        // but rank against the true stream length per §2.1.
        let est = view.quantile(q, view.total_weight());
        // Exact extremes: rank-1 and rank-N answers are tracked precisely.
        if q == 1.0 {
            return Ok(self.max);
        }
        Ok(est.clamp(self.min, self.max))
    }

    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        for &q in qs {
            check_quantile(q)?;
        }
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        // One sorted view answers the whole batch (the per-query rebuild
        // dominates Fig. 5b's KLL cost).
        let view = self.sorted_view();
        let n = view.total_weight();
        Ok(qs
            .iter()
            .map(|&q| {
                if q == 1.0 {
                    self.max
                } else {
                    view.quantile(q, n).clamp(self.min, self.max)
                }
            })
            .collect())
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        // Retained items + per-level bookkeeping + scalar state, the
        // quantity Table 3 reports (4.24 KB at k = 350).
        self.retained() * std::mem::size_of::<f64>()
            + self.levels.len() * std::mem::size_of::<usize>()
            + 4 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "KLL"
    }
}

impl MergeableSketch for KllSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if other.count == 0 {
            return Ok(());
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (h, level) in other.levels.iter().enumerate() {
            if h == 0 {
                self.levels[0].extend_from_slice(level);
            } else {
                merge_sorted_into(&mut self.levels[h], level.clone());
            }
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Compact any level exceeding the capacity derived from the merged
        // sketch's (possibly greater) height, per §3.1.
        self.compress_while_over_capacity();
        Ok(())
    }
}

/// Merge an unsorted batch into a sorted level, keeping it sorted.
fn merge_sorted_into(sorted: &mut Vec<f64>, mut batch: Vec<f64>) {
    if batch.is_empty() {
        return;
    }
    batch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN inserted into sketch"));
    let mut merged = Vec::with_capacity(sorted.len() + batch.len());
    let (mut i, mut j) = (0, 0);
    while i < sorted.len() && j < batch.len() {
        if sorted[i] <= batch[j] {
            merged.push(sorted[i]);
            i += 1;
        } else {
            merged.push(batch[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&sorted[i..]);
    merged.extend_from_slice(&batch[j..]);
    *sorted = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(k: u16, n: u64, seed: u64) -> KllSketch {
        let mut s = KllSketch::with_seed(k, seed);
        for i in 0..n {
            // Insert a permuted sequence to avoid sortedness artifacts.
            let v = ((i * 2_654_435_761) % n) as f64;
            s.insert(v);
        }
        s
    }

    #[test]
    fn empty_sketch_errors() {
        let s = KllSketch::new(200);
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn small_stream_is_exact() {
        // Below capacity nothing is ever discarded.
        let mut s = KllSketch::new(200);
        for v in [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0] {
            s.insert(v);
        }
        assert_eq!(s.query(0.5).unwrap(), 11.0);
        assert_eq!(s.query(0.9).unwrap(), 30.0);
        assert_eq!(s.query(1.0).unwrap(), 51.0);
        assert_eq!(s.retained(), 10);
    }

    #[test]
    fn rank_error_within_bound_on_large_stream() {
        let n = 200_000u64;
        let s = filled(350, n, 11);
        // With k=350 the expected rank error is ~1%; allow 3% headroom.
        for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99] {
            let est = s.query(q).unwrap();
            let true_rank = q * n as f64;
            let est_rank = est + 1.0; // data is the permutation of 0..n
            let rank_err = (true_rank - est_rank).abs() / n as f64;
            assert!(rank_err < 0.03, "q={q}: rank error {rank_err}");
        }
    }

    #[test]
    fn retained_items_bounded() {
        let s = filled(350, 1_000_000, 3);
        // §4.3 reports a total sample size of 1048 for k=350 at 1M points.
        let r = s.retained();
        assert!(r <= 1400, "retained {r} items");
        assert!(r >= 350, "retained {r} items");
    }

    #[test]
    fn min_max_are_exact() {
        let mut s = KllSketch::new(64);
        for i in 0..100_000 {
            s.insert(f64::from(i));
        }
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 99_999.0);
        assert_eq!(s.query(1.0).unwrap(), 99_999.0);
    }

    #[test]
    fn weights_conserve_stream_length() {
        let s = filled(128, 50_000, 9);
        // Compaction discards half the weight of a level and doubles the
        // rest, so total weight is conserved up to odd leftovers per level.
        let view = s.sorted_view();
        let total = view.total_weight();
        let n = 50_000u64;
        let slack = (s.num_levels() as u64) * (1 << s.num_levels());
        assert!(
            total <= n && total + slack >= n,
            "total weight {total} vs n {n} (slack {slack})"
        );
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = filled(128, 10_000, 1);
        let before = a.query(0.5).unwrap();
        let b = KllSketch::new(128);
        a.merge(&b).unwrap();
        assert_eq!(a.query(0.5).unwrap(), before);
        assert_eq!(a.count(), 10_000);
    }

    #[test]
    fn merge_combines_counts_and_ranges() {
        let mut a = KllSketch::with_seed(200, 1);
        let mut b = KllSketch::with_seed(200, 2);
        for i in 0..50_000 {
            a.insert(f64::from(i)); // [0, 50k)
            b.insert(f64::from(i + 50_000)); // [50k, 100k)
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 100_000);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 99_999.0);
        // Median of the union is ~50k.
        let est = a.query(0.5).unwrap();
        assert!((est - 50_000.0).abs() / 100_000.0 < 0.03, "est {est}");
    }

    #[test]
    fn merge_matches_single_sketch_accuracy() {
        // Merging 10 shard sketches must stay within the same error regime
        // as one sketch over the concatenated stream (§2.4 mergeability).
        let n_per = 20_000u64;
        let shards: Vec<KllSketch> = (0..10)
            .map(|s| {
                let mut sk = KllSketch::with_seed(350, 100 + s);
                for i in 0..n_per {
                    sk.insert((s * n_per + i) as f64);
                }
                sk
            })
            .collect();
        let mut merged = shards[0].clone();
        for s in &shards[1..] {
            merged.merge(s).unwrap();
        }
        let n = n_per * 10;
        assert_eq!(merged.count(), n);
        for q in [0.25, 0.5, 0.9, 0.99] {
            let est = merged.query(q).unwrap();
            let rank_err = (est / n as f64 - q).abs();
            assert!(rank_err < 0.04, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn query_returns_actual_stream_values() {
        // §3.1: KLL estimates are actual values from the data set.
        let mut s = KllSketch::with_seed(64, 5);
        for i in 0..100_000 {
            s.insert(f64::from(i) * 0.5);
        }
        for q in [0.1, 0.5, 0.9] {
            let est = s.query(q).unwrap();
            assert_eq!(est, (est * 2.0).round() / 2.0, "estimate {est} not a stream value");
        }
    }

    #[test]
    fn invalid_quantiles_rejected() {
        let mut s = KllSketch::new(64);
        s.insert(1.0);
        assert_eq!(s.query(0.0), Err(QueryError::InvalidQuantile));
        assert_eq!(s.query(2.0), Err(QueryError::InvalidQuantile));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = filled(128, 100_000, 77);
        let b = filled(128, 100_000, 77);
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.query(q).unwrap(), b.query(q).unwrap());
        }
    }

    #[test]
    fn memory_footprint_tracks_retained() {
        let s = filled(350, 1_000_000, 13);
        let kb = s.memory_footprint() as f64 / 1024.0;
        // Table 3 reports 4.24 KB for KLL at k=350; allow generous slack
        // for bookkeeping differences.
        assert!(kb > 2.0 && kb < 12.0, "footprint {kb} KB");
    }

    #[test]
    fn repeated_values_survive_compaction() {
        // §4.5.3: heavy repetition keeps exact values in the sketch.
        let mut s = KllSketch::with_seed(350, 21);
        for i in 0..1_000_000u64 {
            let v = if i % 3 == 0 { 7.5 } else { (i % 1000) as f64 };
            s.insert(v);
        }
        // 7.5 accounts for a third of the stream around the upper-mid
        // quantiles of this mixture; the sketch should locate it well.
        let est = s.query(0.85).unwrap();
        assert!((0.0..=1000.0).contains(&est));
    }

    #[test]
    fn level_capacity_geometry() {
        let mut s = KllSketch::new(350);
        for i in 0..1_000_000 {
            s.insert(f64::from(i));
        }
        // Top level gets k, deeper levels shrink to the floor of 8.
        let top = s.num_levels() - 1;
        assert_eq!(s.level_capacity(top), 350);
        assert_eq!(s.level_capacity(0), 8, "bottom level hits the floor");
    }
}

/// Wire format: magic `0xA1`, version 3 (flatwire — FORMATS.md §3.2).
/// Encodes `k`, scalar state, the compaction coin's exact xorshift state,
/// and each level as a delta + prefix-varint compressed sorted run with a
/// `(count, byte length)` header — so quantile queries can run directly
/// over the bytes ([`qsketch_core::flatwire::SketchView`]) and the k-way
/// level walk can skip runs without parsing them. Version-2 payloads
/// (LEB128, uncompressed item arrays) and version-1 payloads (v2 minus
/// the RNG state; the coin is reseeded from `k` and the count) both still
/// decode.
pub use codec::MAGIC as WIRE_MAGIC;

mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
    use qsketch_core::flatwire::{
        self, FlatReader, SketchView, SortedRunCursor, WeightedMergeWalk,
    };
    use qsketch_core::sketch::SketchError;

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0xA1;
    const LEGACY_VERSION: u8 = 2;
    const FLAT_VERSION: u8 = 3;
    /// Far above any real retained-sample size (§4.3: ~1k items at k=350).
    const MAX_ITEMS_PER_LEVEL: u64 = 1 << 24;
    const MAX_LEVELS: u64 = 64;

    /// The fixed-position scalar fields of a v3 payload.
    struct FlatHeader {
        k: u64,
        count: u64,
        min: f64,
        max: f64,
        rng_state: u64,
        num_levels: u64,
    }

    /// Parse and validate the v3 header; the reader is left positioned at
    /// the first level's `(count, byte length)` pair.
    fn read_flat_header(r: &mut FlatReader<'_>) -> Result<FlatHeader, DecodeError> {
        let k = r.uvarint()?;
        if !(8..=u64::from(u16::MAX)).contains(&k) {
            return Err(DecodeError::Corrupt(format!("k {k} out of range")));
        }
        let count = r.uvarint()?;
        let min = r.f64()?;
        let max = r.f64()?;
        if min.is_nan() || max.is_nan() {
            return Err(DecodeError::Corrupt("NaN extreme".into()));
        }
        if count > 0 && min > max {
            return Err(DecodeError::Corrupt("min above max".into()));
        }
        let rng_state = r.u64()?;
        let num_levels = r.uvarint()?;
        if num_levels == 0 || num_levels > MAX_LEVELS {
            return Err(DecodeError::Corrupt(format!("{num_levels} levels")));
        }
        Ok(FlatHeader {
            k,
            count,
            min,
            max,
            rng_state,
            num_levels,
        })
    }

    /// Read one level's run header, returning `(item count, run bytes)`.
    fn read_level_run<'a>(r: &mut FlatReader<'a>) -> Result<(u64, &'a [u8]), DecodeError> {
        let n = r.uvarint()?;
        if n > MAX_ITEMS_PER_LEVEL {
            return Err(DecodeError::Corrupt(format!("{n} items in level")));
        }
        let byte_len = r.uvarint()?;
        let byte_len = usize::try_from(byte_len)
            .ok()
            .filter(|&b| b <= r.remaining())
            .ok_or(DecodeError::UnexpectedEnd)?;
        Ok((n, r.slice(byte_len)?))
    }

    impl KllSketch {
        /// Encode in the previous wire generation (magic `0xA1`, version
        /// 2: LEB128 varints, uncompressed per-level item arrays). Kept so
        /// the committed back-compat fixtures can be regenerated and so
        /// operators can write payloads for pre-v3 readers.
        pub fn encode_legacy(&self) -> Vec<u8> {
            let mut w = Writer::with_header(MAGIC, LEGACY_VERSION);
            w.varint(u64::from(self.k));
            w.varint(self.count);
            w.f64(self.min);
            w.f64(self.max);
            w.varint(self.levels.len() as u64);
            for level in &self.levels {
                w.f64_slice(level);
            }
            w.u64(self.rng.state());
            w.finish()
        }
    }

    impl SketchSerialize for KllSketch {
        fn encode(&self) -> Vec<u8> {
            let mut out = vec![MAGIC, FLAT_VERSION];
            flatwire::write_uvarint(&mut out, u64::from(self.k));
            flatwire::write_uvarint(&mut out, self.count);
            flatwire::write_f64(&mut out, self.min);
            flatwire::write_f64(&mut out, self.max);
            out.extend_from_slice(&self.rng.state().to_le_bytes());
            flatwire::write_uvarint(&mut out, self.levels.len() as u64);
            let mut run = Vec::new();
            for level in &self.levels {
                run.clear();
                flatwire::write_sorted_run(&mut run, level);
                flatwire::write_uvarint(&mut out, level.len() as u64);
                flatwire::write_uvarint(&mut out, run.len() as u64);
                out.extend_from_slice(&run);
            }
            out
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return Self::decode_legacy(bytes);
            }
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            let mut levels = Vec::with_capacity(h.num_levels as usize);
            for _ in 0..h.num_levels {
                let (n, run) = read_level_run(&mut r)?;
                let mut cursor = SortedRunCursor::new(run, n);
                let mut level = Vec::with_capacity(n as usize);
                while let Some(v) = cursor.next()? {
                    if v.is_nan() {
                        return Err(DecodeError::Corrupt("NaN item".into()));
                    }
                    level.push(v);
                }
                if cursor.bytes_read() != run.len() {
                    return Err(DecodeError::Corrupt("level run length mismatch".into()));
                }
                levels.push(level);
            }
            r.expect_exhausted()?;
            Ok(Self {
                k: h.k as u16,
                levels,
                count: h.count,
                min: h.min,
                max: h.max,
                rng: CoinFlipper::from_state(h.rng_state),
            })
        }
    }

    impl KllSketch {
        /// Decode a pre-flatwire (v1/v2) payload.
        fn decode_legacy(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
            let k = r.varint()?;
            if !(8..=u64::from(u16::MAX)).contains(&k) {
                return Err(DecodeError::Corrupt(format!("k {k} out of range")));
            }
            let count = r.varint()?;
            let min = r.f64()?;
            let max = r.f64()?;
            if min.is_nan() || max.is_nan() {
                return Err(DecodeError::Corrupt("NaN extreme".into()));
            }
            if count > 0 && min > max {
                return Err(DecodeError::Corrupt("min above max".into()));
            }
            let num_levels = r.varint()?;
            if num_levels == 0 || num_levels > MAX_LEVELS {
                return Err(DecodeError::Corrupt(format!("{num_levels} levels")));
            }
            let mut levels = Vec::with_capacity(num_levels as usize);
            for _ in 0..num_levels {
                let mut level = r.f64_vec(MAX_ITEMS_PER_LEVEL)?;
                if level.iter().any(|v| v.is_nan()) {
                    return Err(DecodeError::Corrupt("NaN item".into()));
                }
                // Upper levels are kept sorted by the in-memory invariant.
                level.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                levels.push(level);
            }
            let rng = if r.version() >= 2 {
                CoinFlipper::from_state(r.u64()?)
            } else {
                CoinFlipper::new(k ^ count.rotate_left(17))
            };
            r.expect_exhausted()?;
            Ok(Self {
                k: k as u16,
                levels,
                count,
                min,
                max,
                rng,
            })
        }
    }

    impl SketchView for KllSketch {
        fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                Ok(read_flat_header(&mut r)?.count)
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.varint()?; // k
                r.varint()
            }
        }

        fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                let h = read_flat_header(&mut r)?;
                Ok((h.min, h.max))
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.varint()?; // k
                r.varint()?; // count
                Ok((r.f64()?, r.f64()?))
            }
        }

        fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return flatwire::quantile_via_decode::<Self>(bytes, q);
            }
            qsketch_core::sketch::check_quantile(q)?;
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            if h.count == 0 {
                return Err(QueryError::Empty.into());
            }
            // Exact extremes are tracked outside the compactors; answer
            // before walking, exactly as the in-memory query does.
            if q == 1.0 {
                return Ok(h.max);
            }
            let mut walk = WeightedMergeWalk::new();
            let mut total_weight = 0u64;
            for height in 0..h.num_levels {
                let (n, run) = read_level_run(&mut r)?;
                let weight = 1u64
                    .checked_shl(height as u32)
                    .ok_or_else(|| DecodeError::Corrupt("level weight overflow".into()))?;
                total_weight = n
                    .checked_mul(weight)
                    .and_then(|lw| total_weight.checked_add(lw))
                    .ok_or_else(|| DecodeError::Corrupt("total weight overflow".into()))?;
                walk.push(SortedRunCursor::new(run, n), weight)?;
            }
            if total_weight == 0 {
                return Err(DecodeError::Corrupt("positive count but no items".into()).into());
            }
            // Same rank arithmetic as `SortedView::quantile`.
            let rank = ((q * total_weight as f64).ceil() as u64).clamp(1, total_weight);
            let est = walk.value_at_rank(rank)?;
            Ok(est.clamp(h.min, h.max))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_preserves_view() {
            let mut s = KllSketch::with_seed(350, 9);
            for i in 0..200_000 {
                s.insert(f64::from(i));
            }
            let restored = KllSketch::decode(&s.encode()).unwrap();
            assert_eq!(restored.count(), s.count());
            assert_eq!(restored.retained(), s.retained());
            for q in [0.1, 0.5, 0.99, 1.0] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap(), "q={q}");
            }
        }

        #[test]
        fn decoded_sketch_keeps_working() {
            use qsketch_core::sketch::MergeableSketch;
            let mut s = KllSketch::with_seed(128, 3);
            for i in 0..50_000 {
                s.insert(f64::from(i));
            }
            let mut restored = KllSketch::decode(&s.encode()).unwrap();
            for i in 50_000..100_000 {
                restored.insert(f64::from(i));
            }
            let mut other = KllSketch::with_seed(128, 4);
            other.insert(1.0);
            restored.merge(&other).unwrap();
            assert_eq!(restored.count(), 100_001);
            let est = restored.query(0.5).unwrap();
            assert!((est / 100_000.0 - 0.5).abs() < 0.03);
        }

        #[test]
        fn v2_round_trip_replays_future_compactions_bitwise() {
            let mut live = KllSketch::with_seed(128, 7);
            for i in 0..100_000 {
                live.insert(f64::from(i));
            }
            let mut restored = KllSketch::decode(&live.encode()).unwrap();
            // Insert the same tail into both: with the RNG state on the
            // wire, every future coin flip (and thus every compaction)
            // is identical, so all queries stay bit-identical.
            for i in 100_000..200_000 {
                live.insert(f64::from(i));
                restored.insert(f64::from(i));
            }
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(live.query(q).unwrap(), restored.query(q).unwrap(), "q={q}");
            }
        }

        #[test]
        fn v1_payload_still_decodes() {
            // A v1 payload is a v2 payload minus the trailing RNG state,
            // with the version byte rewritten.
            let mut s = KllSketch::with_seed(64, 3);
            for i in 0..10_000 {
                s.insert(f64::from(i));
            }
            let mut bytes = s.encode_legacy();
            bytes[1] = 1; // version byte
            bytes.truncate(bytes.len() - 8); // drop the RNG state
            let restored = KllSketch::decode(&bytes).unwrap();
            assert_eq!(restored.count(), s.count());
            for q in [0.5, 0.99] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap());
            }
        }

        #[test]
        fn v2_payload_still_decodes() {
            let mut s = KllSketch::with_seed(64, 3);
            for i in 0..10_000 {
                s.insert(f64::from(i));
            }
            let bytes = s.encode_legacy();
            assert_eq!(bytes[1], 2);
            let restored = KllSketch::decode(&bytes).unwrap();
            assert_eq!(restored.count(), s.count());
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap());
            }
        }

        #[test]
        fn v3_is_smaller_than_v2() {
            let mut s = KllSketch::with_seed(350, 5);
            for i in 0..1_000_000 {
                s.insert(f64::from(i));
            }
            let (v3, v2) = (s.encode().len(), s.encode_legacy().len());
            assert!(v3 < v2, "v3 {v3} bytes vs v2 {v2} bytes");
        }

        #[test]
        fn quantile_from_bytes_matches_decode_then_query() {
            use qsketch_core::flatwire::SketchView;
            let mut s = KllSketch::with_seed(350, 17);
            for i in 0..200_000 {
                s.insert(((i * 2_654_435_761u64) % 200_000) as f64);
            }
            for bytes in [s.encode(), s.encode_legacy()] {
                let decoded = KllSketch::decode(&bytes).unwrap();
                for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    let via_decode = decoded.query(q).unwrap();
                    let via_view = KllSketch::quantile_from_bytes(&bytes, q).unwrap();
                    assert_eq!(via_view.to_bits(), via_decode.to_bits(), "q={q}");
                }
                assert_eq!(KllSketch::count_from_bytes(&bytes).unwrap(), 200_000);
                let (lo, hi) = KllSketch::bounds_from_bytes(&bytes).unwrap();
                assert_eq!((lo, hi), (s.min(), s.max()));
            }
        }

        #[test]
        fn payload_tracks_retained_items() {
            let mut s = KllSketch::with_seed(350, 5);
            for i in 0..1_000_000 {
                s.insert(f64::from(i));
            }
            let bytes = s.encode();
            // ~8 bytes per retained item plus small framing.
            assert!(bytes.len() < s.retained() * 9 + 64);
        }

        #[test]
        fn nan_item_rejected() {
            let mut s = KllSketch::with_seed(64, 1);
            s.insert(1.0);
            let mut bytes = s.encode_legacy();
            // Overwrite the single item with a NaN pattern. The item is the
            // second-to-last word: the trailing 8 bytes are the v2 RNG state.
            let nan = f64::NAN.to_le_bytes();
            let n = bytes.len();
            bytes[n - 16..n - 8].copy_from_slice(&nan);
            assert!(KllSketch::decode(&bytes).is_err());
        }

        #[test]
        fn v3_truncations_and_flips_never_panic() {
            use qsketch_core::flatwire::SketchView;
            let mut s = KllSketch::with_seed(64, 1);
            for i in 0..5_000 {
                s.insert(f64::from(i));
            }
            let bytes = s.encode();
            for cut in 0..bytes.len() {
                let _ = KllSketch::decode(&bytes[..cut]);
                let _ = KllSketch::quantile_from_bytes(&bytes[..cut], 0.5);
            }
            for i in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[i] ^= 0xA5;
                let _ = KllSketch::decode(&flipped);
                let _ = KllSketch::quantile_from_bytes(&flipped, 0.5);
            }
        }
    }
}

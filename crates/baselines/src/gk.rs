//! Greenwald–Khanna ε-approximate quantile summary (SIGMOD'01).

use qsketch_core::sketch::{check_quantile, QuantileSketch, QueryError};

/// One GK tuple: a stored value with its rank uncertainty.
#[derive(Debug, Clone, Copy)]
struct Tuple {
    /// Stored stream value.
    v: f64,
    /// Gap: `r_min(vᵢ) − r_min(vᵢ₋₁)`.
    g: u64,
    /// Rank spread: `r_max(vᵢ) − r_min(vᵢ)`.
    delta: u64,
}

/// The Greenwald–Khanna summary: a sorted list of `(v, g, Δ)` tuples
/// guaranteeing ε·n additive rank error using `O((1/ε)·log(εn))` space.
///
/// This is a *cash register* algorithm (insert-only) per the taxonomy of
/// §5.1, included as the classical deterministic baseline the evaluated
/// sketches descend from.
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    tuples: Vec<Tuple>,
    count: u64,
    /// Inserts since the last compression sweep.
    since_compress: u64,
}

impl GkSketch {
    /// Create a summary with additive rank-error bound `epsilon` ∈ (0, 1).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must lie in (0,1), got {epsilon}"
        );
        Self {
            epsilon,
            tuples: Vec::new(),
            count: 0,
            since_compress: 0,
        }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of retained tuples.
    pub fn retained(&self) -> usize {
        self.tuples.len()
    }

    /// Remove tuples whose combined uncertainty stays under the 2εn band
    /// (the COMPRESS operation of the GK paper).
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        // Walk middle tuples, merging each into its successor when the
        // merged uncertainty fits the band. The last tuple (max) is kept
        // verbatim.
        for i in 1..self.tuples.len() {
            let t = self.tuples[i];
            let keep_min = out.len() == 1; // never merge into the min tuple
            let prev = out.last_mut().expect("out is non-empty");
            let mergeable = !keep_min && prev.g + t.g + t.delta <= threshold;
            if mergeable {
                // Merge prev into t: t absorbs prev's gap.
                let merged = Tuple {
                    v: t.v,
                    g: prev.g + t.g,
                    delta: t.delta,
                };
                *prev = merged;
            } else {
                out.push(t);
            }
        }
        self.tuples = out;
    }
}

impl QuantileSketch for GkSketch {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN inserted into GK sketch");
        self.count += 1;
        // Find insertion position in the sorted tuple list.
        let pos = self.tuples.partition_point(|t| t.v < value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New min or max: known exactly.
            0
        } else {
            (2.0 * self.epsilon * self.count as f64).floor() as u64
        };
        self.tuples.insert(
            pos,
            Tuple {
                v: value,
                g: 1,
                delta,
            },
        );
        self.since_compress += 1;
        // Compress every ⌊1/(2ε)⌋ inserts, as in the original paper.
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        let target = (q * self.count as f64).ceil() as u64;
        let bound = (self.epsilon * self.count as f64) as u64;
        let mut r_min = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            // First tuple whose max possible rank covers target + slack.
            if r_min + t.delta >= target.saturating_sub(bound).max(1)
                && r_min >= target.saturating_sub(bound)
            {
                return Ok(t.v);
            }
        }
        Ok(self.tuples.last().expect("non-empty").v)
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        self.tuples.len() * std::mem::size_of::<Tuple>() + 3 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "GK"
    }
}

pub use codec::MAGIC as WIRE_MAGIC;

/// Wire format: magic `0x60`, version 1. Encodes ε, scalar state, and the
/// sorted `(v, g, Δ)` tuple list. GK is fully deterministic, so a decoded
/// summary replays future inserts identically to the original.
mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0x60;
    const VERSION: u8 = 1;
    const MAX_TUPLES: u64 = 1 << 24;

    impl SketchSerialize for GkSketch {
        fn encode(&self) -> Vec<u8> {
            let mut w = Writer::with_header(MAGIC, VERSION);
            w.f64(self.epsilon);
            w.varint(self.count);
            w.varint(self.since_compress);
            w.varint(self.tuples.len() as u64);
            for t in &self.tuples {
                w.f64(t.v);
                w.varint(t.g);
                w.varint(t.delta);
            }
            w.finish()
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, VERSION)?;
            let epsilon = r.f64()?;
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(DecodeError::Corrupt(format!(
                    "epsilon {epsilon} outside (0,1)"
                )));
            }
            let count = r.varint()?;
            let since_compress = r.varint()?;
            let n = r.varint()?;
            if n > MAX_TUPLES {
                return Err(DecodeError::Corrupt(format!(
                    "tuple count {n} exceeds limit {MAX_TUPLES}"
                )));
            }
            let mut tuples = Vec::with_capacity(n as usize);
            let mut total_g = 0u64;
            let mut prev = f64::NEG_INFINITY;
            for _ in 0..n {
                let v = r.f64()?;
                if v.is_nan() {
                    return Err(DecodeError::Corrupt("NaN tuple value".into()));
                }
                if v < prev {
                    return Err(DecodeError::Corrupt("tuples out of order".into()));
                }
                prev = v;
                let g = r.varint()?;
                let delta = r.varint()?;
                total_g = total_g
                    .checked_add(g)
                    .ok_or_else(|| DecodeError::Corrupt("gap sum overflow".into()))?;
                tuples.push(Tuple { v, g, delta });
            }
            // Every insert contributes exactly one unit of gap; COMPRESS
            // preserves the total, so Σg must equal the stream count.
            if total_g != count {
                return Err(DecodeError::Corrupt(format!(
                    "gap sum {total_g} != count {count}"
                )));
            }
            r.expect_exhausted()?;
            Ok(Self {
                epsilon,
                tuples,
                count,
                since_compress,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_is_bit_identical_and_replays() {
            let mut live = GkSketch::new(0.01);
            for i in 0..50_000 {
                live.insert(((i * 2_654_435_761u64) % 50_000) as f64);
            }
            let mut restored = GkSketch::decode(&live.encode()).unwrap();
            assert_eq!(restored.retained(), live.retained());
            for i in 0..20_000 {
                let v = f64::from(i) * 1.7;
                live.insert(v);
                restored.insert(v);
            }
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(
                    restored.query(q).unwrap().to_bits(),
                    live.query(q).unwrap().to_bits(),
                    "q={q}"
                );
            }
        }

        #[test]
        fn corrupt_gap_sum_rejected() {
            let mut s = GkSketch::new(0.05);
            for i in 0..1_000 {
                s.insert(f64::from(i));
            }
            let mut bytes = s.encode();
            // Flip a bit in the count varint (first byte after the
            // 2-byte header + 8-byte epsilon) without touching tuples.
            bytes[10] ^= 0x01;
            assert!(GkSketch::decode(&bytes).is_err());
        }

        #[test]
        fn truncated_payload_rejected() {
            let mut s = GkSketch::new(0.05);
            for i in 0..1_000 {
                s.insert(f64::from(i));
            }
            let mut bytes = s.encode();
            bytes.truncate(bytes.len() / 3);
            assert!(GkSketch::decode(&bytes).is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_errors() {
        let s = GkSketch::new(0.01);
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn rank_error_within_epsilon() {
        let eps = 0.01;
        let mut s = GkSketch::new(eps);
        let n = 100_000u64;
        for i in 0..n {
            s.insert(((i * 2_654_435_761) % n) as f64);
        }
        for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let est = s.query(q).unwrap();
            let rank_err = ((est + 1.0) / n as f64 - q).abs();
            assert!(rank_err <= 2.0 * eps, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut s = GkSketch::new(0.01);
        for i in 0..200_000 {
            s.insert(f64::from(i));
        }
        assert!(
            s.retained() < 4_000,
            "GK retained {} tuples for 200k inserts",
            s.retained()
        );
    }

    #[test]
    fn min_and_max_exact() {
        let mut s = GkSketch::new(0.05);
        for i in 0..10_000 {
            s.insert(f64::from(i));
        }
        assert_eq!(s.query(1.0).unwrap(), 9_999.0);
        // The minimum tuple is never merged away.
        let low = s.query(0.0001).unwrap();
        assert!(low <= 10_000.0 * 0.05 * 2.0, "low {low}");
    }

    #[test]
    fn small_stream_exact() {
        let mut s = GkSketch::new(0.01);
        for v in [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0] {
            s.insert(v);
        }
        assert_eq!(s.query(0.5).unwrap(), 11.0);
        assert_eq!(s.query(0.9).unwrap(), 30.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        GkSketch::new(0.0);
    }
}

//! Related-work baselines from §5.2 of the paper.
//!
//! The paper's evaluation covers five sketches; its related-work section
//! positions them against older/adjacent algorithms, all of which are
//! implemented here so the harness can run extended comparisons:
//!
//! * [`GkSketch`] — the Greenwald–Khanna deterministic summary
//!   (SIGMOD'01), ancestor of the additive-rank-error line that KLL
//!   optimises (§5.1 discusses its GKAdaptive/GKArray descendants),
//! * [`RandomSketch`] — the MRL buffer-collapse sampler of §5.2.1, the
//!   direct ancestor KLL improves upon,
//! * [`HdrHistogram`] — the high-dynamic-range histogram of §5.2.2 that
//!   DDSketch was originally evaluated against,
//! * [`DyadicCountSketch`] — the best *turnstile* algorithm per §5.2.3
//!   (insertions *and* deletions via Count-Sketches over dyadic levels),
//! * [`TDigest`] — Dunning & Ertl's t-digest (§5.2.4), the
//!   value-clustering sketch ReqSketch was originally compared against.
//!
//! All implement the same [`qsketch_core::QuantileSketch`] trait as the
//! five paper sketches; the experiment binaries include GK and t-digest
//! behind `--with-baselines`, and `benches/related_work.rs` reproduces the
//! §5.2 comparisons.

mod dcs;
mod gk;
mod hdr;
mod random;
mod tdigest;

pub use dcs::DyadicCountSketch;
pub use gk::{GkSketch, WIRE_MAGIC as GK_WIRE_MAGIC};
pub use hdr::HdrHistogram;
pub use random::RandomSketch;
pub use tdigest::{TDigest, WIRE_MAGIC as TDIGEST_WIRE_MAGIC};

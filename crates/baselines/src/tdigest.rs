//! t-digest (Dunning & Ertl), the merging variant with the `k₁` scale
//! function.

use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};

/// A weighted centroid: mean of the clustered values and their count.
#[derive(Debug, Clone, Copy)]
struct Centroid {
    mean: f64,
    weight: u64,
}

/// The merging t-digest (§5.2.4 of the paper): incoming values buffer up
/// and periodically merge into a sorted list of centroids whose maximum
/// size is governed by the scale function
/// `k(q) = (δ/2π)·asin(2q−1)` — clusters near the extremes stay tiny, so
/// tail quantiles are accurate, while mid quantiles use coarser clusters.
///
/// t-digest "does not provide a theoretical bound on its estimation error
/// and its merging algorithm can weaken the accuracy of the original
/// sketches" (§5.2.4) — it is included here as the empirical comparator
/// ReqSketch was originally evaluated against.
#[derive(Debug, Clone)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    count: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Create a digest with compression parameter `δ` (typical: 100–500;
    /// larger means more centroids and better accuracy).
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 10.0, "compression must be >= 10");
        let buffer_cap = (compression as usize) * 5;
        Self {
            compression,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(buffer_cap),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The compression parameter δ.
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Number of centroids currently held (after flushing the buffer).
    pub fn num_centroids(&mut self) -> usize {
        self.flush();
        self.centroids.len()
    }

    /// Scale function `k₁(q) = (δ/2π)·asin(2q−1)`.
    fn k_scale(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).asin()
    }

    /// Values buffered before a merge pass. Derived from δ alone (not
    /// from the buffer allocation) so flush points are a pure function
    /// of the insert sequence — which the wire format relies on for
    /// replay-identical recovery.
    fn flush_threshold(&self) -> usize {
        (self.compression as usize) * 5
    }

    /// Merge buffered values into the centroid list.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut incoming: Vec<Centroid> = std::mem::take(&mut self.buffer)
            .into_iter()
            .map(|v| Centroid { mean: v, weight: 1 })
            .collect();
        incoming.extend_from_slice(&self.centroids);
        incoming.sort_unstable_by(|a, b| a.mean.partial_cmp(&b.mean).expect("NaN in digest"));

        let total: u64 = incoming.iter().map(|c| c.weight).sum();
        let mut merged: Vec<Centroid> = Vec::with_capacity(self.centroids.len() + 16);
        let mut seen = 0u64;
        let mut acc = incoming[0];
        let mut k_lower = self.k_scale(0.0);

        for c in &incoming[1..] {
            let q_if_merged = (seen + acc.weight + c.weight) as f64 / total as f64;
            if self.k_scale(q_if_merged) - k_lower <= 1.0 {
                // Weighted-mean merge.
                let w = acc.weight + c.weight;
                acc.mean = (acc.mean * acc.weight as f64 + c.mean * c.weight as f64) / w as f64;
                acc.weight = w;
            } else {
                seen += acc.weight;
                merged.push(acc);
                k_lower = self.k_scale(seen as f64 / total as f64);
                acc = *c;
            }
        }
        merged.push(acc);
        self.centroids = merged;
    }
}

impl QuantileSketch for TDigest {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN inserted into t-digest");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(value);
        if self.buffer.len() >= self.flush_threshold() {
            self.flush();
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        // Queries take &self: flush into a scratch clone when the buffer is
        // dirty (querying is not t-digest's hot path).
        if !self.buffer.is_empty() {
            let mut scratch = self.clone();
            scratch.flush();
            return scratch.query(q);
        }

        let total = self.count as f64;
        let target = q * total;
        let mut seen = 0.0;
        for (i, c) in self.centroids.iter().enumerate() {
            let w = c.weight as f64;
            if seen + w >= target {
                // Interpolate within the centroid against its neighbours.
                let frac = ((target - seen) / w).clamp(0.0, 1.0);
                let lo = if i == 0 {
                    self.min
                } else {
                    (self.centroids[i - 1].mean + c.mean) / 2.0
                };
                let hi = if i + 1 == self.centroids.len() {
                    self.max
                } else {
                    (c.mean + self.centroids[i + 1].mean) / 2.0
                };
                return Ok((lo + (hi - lo) * frac).clamp(self.min, self.max));
            }
            seen += w;
        }
        Ok(self.max)
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        self.centroids.len() * std::mem::size_of::<Centroid>()
            + self.buffer.len() * std::mem::size_of::<f64>()
            + 4 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "t-digest"
    }
}

impl MergeableSketch for TDigest {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if (self.compression - other.compression).abs() > 1e-12 {
            return Err(MergeError::IncompatibleParameters(format!(
                "compression mismatch: {} vs {}",
                self.compression, other.compression
            )));
        }
        // Append the other's centroids as weighted inputs and re-cluster —
        // the accuracy-weakening merge §5.2.4 refers to.
        self.flush();
        let mut scratch = other.clone();
        scratch.flush();
        self.centroids.extend_from_slice(&scratch.centroids);
        self.centroids
            .sort_unstable_by(|a, b| a.mean.partial_cmp(&b.mean).expect("NaN in digest"));
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Re-cluster via an empty-buffer flush trick: force one merge pass.
        self.buffer.push(self.centroids[0].mean);
        self.centroids[0].weight -= 1;
        if self.centroids[0].weight == 0 {
            self.centroids.remove(0);
        }
        self.flush();
        Ok(())
    }
}

pub use codec::MAGIC as WIRE_MAGIC;

/// Wire format: magic `0x7D`, version 1. Encodes δ, scalar state, the
/// centroid list as `(mean, weight)` pairs, and the unflushed insert
/// buffer verbatim — t-digest is deterministic, so preserving the buffer
/// (and its flush threshold, rederived from δ) makes a decoded digest
/// replay future inserts identically.
mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0x7D;
    const VERSION: u8 = 1;
    const MAX_CENTROIDS: u64 = 1 << 22;

    impl SketchSerialize for TDigest {
        fn encode(&self) -> Vec<u8> {
            let mut w = Writer::with_header(MAGIC, VERSION);
            w.f64(self.compression);
            w.varint(self.count);
            w.f64(self.min);
            w.f64(self.max);
            w.varint(self.centroids.len() as u64);
            for c in &self.centroids {
                w.f64(c.mean);
                w.varint(c.weight);
            }
            w.f64_slice(&self.buffer);
            w.finish()
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, VERSION)?;
            let compression = r.f64()?;
            // NaN must fail too, hence the negated form is spelled out.
            if compression.is_nan() || compression < 10.0 {
                return Err(DecodeError::Corrupt(format!(
                    "compression {compression} below minimum 10"
                )));
            }
            let count = r.varint()?;
            let min = r.f64()?;
            let max = r.f64()?;
            if count > 0 && (min.is_nan() || max.is_nan() || min > max) {
                return Err(DecodeError::Corrupt("inconsistent min/max".into()));
            }
            let n = r.varint()?;
            if n > MAX_CENTROIDS {
                return Err(DecodeError::Corrupt(format!(
                    "centroid count {n} exceeds limit {MAX_CENTROIDS}"
                )));
            }
            let mut centroids = Vec::with_capacity(n as usize);
            let mut mass = 0u64;
            let mut prev = f64::NEG_INFINITY;
            for _ in 0..n {
                let mean = r.f64()?;
                if mean.is_nan() {
                    return Err(DecodeError::Corrupt("NaN centroid mean".into()));
                }
                if mean < prev {
                    return Err(DecodeError::Corrupt("centroids out of order".into()));
                }
                prev = mean;
                let weight = r.varint()?;
                if weight == 0 {
                    return Err(DecodeError::Corrupt("zero-weight centroid".into()));
                }
                mass = mass
                    .checked_add(weight)
                    .ok_or_else(|| DecodeError::Corrupt("weight overflow".into()))?;
                centroids.push(Centroid { mean, weight });
            }
            let buffer_cap = (compression as usize) * 5;
            let raw = r.f64_vec(buffer_cap as u64)?;
            if raw.iter().any(|v| v.is_nan()) {
                return Err(DecodeError::Corrupt("NaN in insert buffer".into()));
            }
            if mass + raw.len() as u64 != count {
                return Err(DecodeError::Corrupt(format!(
                    "centroid mass {mass} + buffer {} != count {count}",
                    raw.len()
                )));
            }
            r.expect_exhausted()?;
            let mut buffer = Vec::with_capacity(buffer_cap);
            buffer.extend_from_slice(&raw);
            Ok(Self {
                compression,
                centroids,
                buffer,
                count,
                min,
                max,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_with_dirty_buffer_replays_identically() {
            let mut live = TDigest::new(100.0);
            // 50_250 is not a multiple of the 500-value flush threshold,
            // so the buffer is non-empty at encode time.
            for i in 0..50_250u64 {
                live.insert(((i * 2_654_435_761) % 50_250) as f64);
            }
            assert!(!live.buffer.is_empty());
            let mut restored = TDigest::decode(&live.encode()).unwrap();
            assert_eq!(restored.buffer.len(), live.buffer.len());
            for i in 0..10_000 {
                let v = f64::from(i) * 0.93;
                live.insert(v);
                restored.insert(v);
            }
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(
                    restored.query(q).unwrap().to_bits(),
                    live.query(q).unwrap().to_bits(),
                    "q={q}"
                );
            }
        }

        #[test]
        fn mass_mismatch_rejected() {
            let mut t = TDigest::new(100.0);
            for i in 0..5_000 {
                t.insert(f64::from(i));
            }
            let mut bytes = t.encode();
            // Flip a bit in the count varint (after header + compression).
            bytes[10] ^= 0x01;
            assert!(TDigest::decode(&bytes).is_err());
        }

        #[test]
        fn truncated_payload_rejected() {
            let mut t = TDigest::new(100.0);
            for i in 0..5_000 {
                t.insert(f64::from(i));
            }
            let mut bytes = t.encode();
            bytes.truncate(bytes.len() - 5);
            assert!(TDigest::decode(&bytes).is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64, compression: f64) -> TDigest {
        let mut t = TDigest::new(compression);
        for i in 0..n {
            t.insert(((i * 2_654_435_761) % n) as f64);
        }
        t
    }

    #[test]
    fn empty_query_errors() {
        let t = TDigest::new(100.0);
        assert_eq!(t.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn tail_quantiles_tight() {
        let n = 200_000u64;
        let t = filled(n, 200.0);
        for q in [0.01, 0.99] {
            let est = t.query(q).unwrap();
            let rank_err = (est / n as f64 - q).abs();
            assert!(rank_err < 0.005, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn mid_quantiles_reasonable() {
        let n = 200_000u64;
        let t = filled(n, 200.0);
        for q in [0.25, 0.5, 0.75] {
            let est = t.query(q).unwrap();
            let rank_err = (est / n as f64 - q).abs();
            assert!(rank_err < 0.02, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn centroid_count_bounded_by_compression() {
        let mut t = filled(500_000, 100.0);
        let c = t.num_centroids();
        assert!(c <= 200, "centroids {c} exceed ~2δ");
    }

    #[test]
    fn min_max_exact() {
        let t = filled(50_000, 100.0);
        assert_eq!(t.query(1.0).unwrap(), 49_999.0);
        assert_eq!(t.min, 0.0);
    }

    #[test]
    fn merge_combines_mass() {
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        for i in 0..50_000 {
            a.insert(f64::from(i));
            b.insert(f64::from(i + 50_000));
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 100_000);
        let est = a.query(0.5).unwrap();
        assert!((est / 100_000.0 - 0.5).abs() < 0.02, "median {est}");
    }

    #[test]
    fn merge_rejects_mismatched_compression() {
        let mut a = TDigest::new(100.0);
        let b = TDigest::new(200.0);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn query_with_dirty_buffer() {
        let mut t = TDigest::new(100.0);
        for i in 0..10 {
            t.insert(f64::from(i));
        }
        // Buffer not yet flushed; query must still answer.
        let est = t.query(0.5).unwrap();
        assert!((0.0..=9.0).contains(&est));
    }
}

//! HDR Histogram (§5.2.2): the fixed-point high-dynamic-range histogram,
//! "a modern histogram with fast insertion speeds, mergeability property
//! and strong relative accuracy claims" that DDSketch was originally
//! evaluated against.
//!
//! HDR divides the value range into exponential *half-octaves*: each
//! doubling of magnitude gets `2^significant_bits` linearly spaced
//! sub-buckets, giving a bounded relative error of
//! `1 / 2^significant_bits` per bucket. Unlike DDSketch's γ-geometric
//! buckets it tracks values as scaled integers, so it needs the value
//! range (`highest_trackable`) up front — one of the reasons §5.2.2 finds
//! its total size worse than DDSketch's.

use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};

/// HDR histogram over positive values, tracked to a fixed precision.
#[derive(Debug, Clone)]
pub struct HdrHistogram {
    /// log2 of sub-buckets per half-octave.
    significant_bits: u32,
    /// Number of sub-buckets in bucket 0 (twice the per-half count).
    sub_bucket_count: u64,
    sub_bucket_half_count: u64,
    /// Values above this saturate into the top bucket.
    highest_trackable: u64,
    /// Count slots, laid out bucket-major.
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
}

impl HdrHistogram {
    /// Create a histogram tracking integer magnitudes `1..=highest`
    /// with `significant_bits` of sub-bucket precision (2 bits ≈ 25 %
    /// error, 10 bits ≈ 0.1 %; DataDog's comparison used ~2 decimal
    /// digits ≈ 7 bits).
    pub fn new(significant_bits: u32, highest: u64) -> Self {
        assert!((1..=14).contains(&significant_bits), "precision out of range");
        assert!(highest >= 2, "range too small");
        let sub_bucket_half_count = 1u64 << significant_bits;
        let sub_bucket_count = sub_bucket_half_count * 2;
        // Number of buckets needed so the top bucket reaches `highest`.
        let mut bucket_count = 1u64;
        let mut smallest_untrackable = sub_bucket_count;
        while smallest_untrackable < highest {
            smallest_untrackable <<= 1;
            bucket_count += 1;
        }
        let slots = (bucket_count + 1) * sub_bucket_half_count;
        Self {
            significant_bits,
            sub_bucket_count,
            sub_bucket_half_count,
            highest_trackable: highest,
            counts: vec![0; slots as usize],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Guaranteed per-bucket relative error: `1/2^significant_bits`.
    pub fn relative_error(&self) -> f64 {
        1.0 / self.sub_bucket_half_count as f64
    }

    /// Slot index for an integer magnitude `v ≥ 1` (the canonical HDR
    /// `countsArrayIndex`: bucket from the leading-zero count, sub-bucket
    /// from a shift).
    fn slot_for(&self, v: u64) -> usize {
        let v = v.clamp(1, self.highest_trackable);
        let mask = self.sub_bucket_count - 1;
        // With `significant_bits + 1` bits in bucket 0, values below
        // `sub_bucket_count` have bucket 0; each doubling beyond adds one.
        let leading_zero_count_base = 64 - self.significant_bits - 1;
        let bucket = leading_zero_count_base - (v | mask).leading_zeros();
        let sub = (v >> bucket) as i64;
        let base = ((u64::from(bucket) + 1) * self.sub_bucket_half_count) as i64;
        (base + sub - self.sub_bucket_half_count as i64) as usize
    }

    /// Lowest integer magnitude a slot covers.
    fn value_for(&self, slot: usize) -> u64 {
        let slot = slot as u64;
        let bucket = slot / self.sub_bucket_half_count;
        let sub = slot % self.sub_bucket_half_count + self.sub_bucket_half_count;
        if bucket == 0 {
            sub - self.sub_bucket_half_count
        } else {
            sub << (bucket - 1)
        }
    }

    /// Midpoint estimate for a slot: the centre of `[lowest, next_lowest)`.
    fn midpoint_for(&self, slot: usize) -> f64 {
        let lo = self.value_for(slot);
        let next = self.value_for(slot + 1).max(lo + 1);
        (lo + next - 1) as f64 / 2.0
    }

    /// Allocated count slots (the "total sketch size" axis of §5.2.2).
    pub fn allocated_slots(&self) -> usize {
        self.counts.len()
    }
}

impl QuantileSketch for HdrHistogram {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN inserted into HDR histogram");
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let v = value.max(1.0).round() as u64;
        let slot = self.slot_for(v);
        self.counts[slot] += 1;
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.total == 0 {
            return Err(QueryError::Empty);
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Ok(self.midpoint_for(slot).clamp(self.min, self.max));
            }
        }
        Ok(self.max)
    }

    fn count(&self) -> u64 {
        self.total
    }

    fn memory_footprint(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>() + 6 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "HDR"
    }
}

impl MergeableSketch for HdrHistogram {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.significant_bits != other.significant_bits
            || self.highest_trackable != other.highest_trackable
        {
            return Err(MergeError::IncompatibleParameters(
                "HDR precision/range mismatch".into(),
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_errors() {
        let h = HdrHistogram::new(7, 1_000_000);
        assert_eq!(h.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn slot_round_trip_covers_value() {
        let h = HdrHistogram::new(7, 10_000_000);
        for v in [1u64, 2, 100, 127, 128, 129, 1000, 65_535, 1_000_000, 9_999_999] {
            let slot = h.slot_for(v);
            let lo = h.value_for(slot);
            let hi = h.value_for(slot + 1);
            assert!(lo <= v && v < hi.max(lo + 1), "v={v} slot=[{lo},{hi})");
        }
    }

    #[test]
    fn relative_error_guarantee() {
        // The bucket midpoint must sit within the per-bucket relative
        // error of any magnitude mapped to the bucket.
        let h = HdrHistogram::new(7, 100_000_000);
        let alpha = h.relative_error();
        let mut v = 1.0f64;
        while v < 5e7 {
            let vi = v.round().max(1.0) as u64;
            let slot = h.slot_for(vi);
            let est = h.midpoint_for(slot);
            let rel = (est - vi as f64).abs() / vi as f64;
            assert!(rel <= alpha + 1e-9, "v={vi} est={est} rel={rel}");
            v *= 2.3;
        }
    }

    #[test]
    fn quantiles_on_uniform_integers() {
        let mut h = HdrHistogram::new(10, 1 << 22);
        let n = 200_000;
        for i in 1..=n {
            h.insert(i as f64);
        }
        for q in [0.25, 0.5, 0.9, 0.99] {
            let truth = q * n as f64;
            let est = h.query(q).unwrap();
            assert!(
                ((est - truth) / truth).abs() < 0.002,
                "q={q} est={est} truth={truth}"
            );
        }
    }

    #[test]
    fn saturates_above_range_instead_of_failing() {
        let mut h = HdrHistogram::new(7, 1_000);
        h.insert(5.0);
        h.insert(1e9); // clamped into the top bucket
        assert_eq!(h.count(), 2);
        assert!(h.query(1.0).unwrap() <= 1e9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = HdrHistogram::new(7, 1_000_000);
        let mut b = HdrHistogram::new(7, 1_000_000);
        for i in 1..=10_000 {
            a.insert(i as f64);
            b.insert((i + 10_000) as f64);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 20_000);
        let est = a.query(0.5).unwrap();
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.01, "median {est}");
    }

    #[test]
    fn merge_rejects_mismatched_precision() {
        let mut a = HdrHistogram::new(7, 1_000_000);
        let b = HdrHistogram::new(8, 1_000_000);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn size_exceeds_ddsketch_for_same_accuracy() {
        // §5.2.2: HDR "performed worse on ... total sketch size" than
        // DDSketch. At ~0.8% error over [1, 1e8], HDR must pre-allocate
        // slots for the whole range; DDSketch only pays for occupied
        // buckets.
        use qsketch_ddsketch::DdSketch;
        let mut hdr = HdrHistogram::new(7, 100_000_000);
        let mut dds = DdSketch::unbounded(0.0078);
        for i in 1..=100_000u64 {
            hdr.insert(i as f64);
            dds.insert(i as f64);
        }
        assert!(
            hdr.memory_footprint() > dds.memory_footprint(),
            "HDR {} vs DDS {}",
            hdr.memory_footprint(),
            dds.memory_footprint()
        );
    }
}

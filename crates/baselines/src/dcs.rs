//! Dyadic Count Sketch (§5.2.3): the best *turnstile* quantile algorithm
//! in Luo et al.'s study — supports deletions, at the price of a larger
//! memory footprint and prior knowledge of the value universe (the two
//! reasons the paper excludes it from its main evaluation).
//!
//! DCS "maintains log(u) dyadic levels in increasing order where the iᵗʰ
//! level has u/2ⁱ intervals of size 2ⁱ"; a Count-Sketch per level tracks
//! interval frequencies, and the rank of `x` is recovered by summing the
//! O(log u) dyadic intervals decomposing `[0, x)`. Quantile queries binary
//! search the rank estimator.

use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};

/// One Count-Sketch (Charikar–Chen–Farach-Colton): `d` rows of `w`
/// signed counters with pairwise-independent hash/sign functions.
#[derive(Debug, Clone)]
struct CountSketch {
    d: usize,
    w: usize,
    counters: Vec<i64>,
    /// Per-row hash seeds.
    seeds: Vec<u64>,
}

impl CountSketch {
    fn new(d: usize, w: usize, seed: u64) -> Self {
        Self {
            d,
            w,
            counters: vec![0; d * w],
            seeds: (0..d as u64)
                .map(|r| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(r.wrapping_mul(0x517C_C1B7_2722_0A95)))
                .collect(),
        }
    }

    #[inline]
    fn hash(seed: u64, id: u64) -> u64 {
        // SplitMix64 finalizer: cheap, well-mixed.
        let mut z = id.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn update(&mut self, id: u64, delta: i64) {
        for r in 0..self.d {
            let h = Self::hash(self.seeds[r], id);
            let col = (h >> 1) as usize % self.w;
            let sign = if h & 1 == 1 { 1 } else { -1 };
            self.counters[r * self.w + col] += sign * delta;
        }
    }

    fn estimate(&self, id: u64) -> i64 {
        let mut row_estimates: Vec<i64> = (0..self.d)
            .map(|r| {
                let h = Self::hash(self.seeds[r], id);
                let col = (h >> 1) as usize % self.w;
                let sign = if h & 1 == 1 { 1 } else { -1 };
                sign * self.counters[r * self.w + col]
            })
            .collect();
        row_estimates.sort_unstable();
        row_estimates[self.d / 2]
    }

    fn absorb(&mut self, other: &Self) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }
}

/// Dyadic Count Sketch over the integer universe `[0, 2^log_universe)`.
///
/// Incoming `f64` values are rounded and clamped into the universe — DCS
/// requires the domain up front ("its larger memory footprint requiring
/// prior knowledge of size", §5.2.3).
#[derive(Debug, Clone)]
pub struct DyadicCountSketch {
    log_universe: u32,
    /// One Count-Sketch per dyadic level `1..=log_universe`; level 0
    /// (unit intervals) is included, the top level (whole universe) is
    /// not needed.
    levels: Vec<CountSketch>,
    /// Live count (inserts − deletes).
    count: i64,
    seed: u64,
    d: usize,
    w: usize,
}

impl DyadicCountSketch {
    /// Create a DCS over `[0, 2^log_universe)` with `d × w` Count-Sketch
    /// tables per level.
    pub fn new(log_universe: u32, d: usize, w: usize) -> Self {
        Self::with_seed(log_universe, d, w, 0xDC5)
    }

    /// Create with an explicit hash seed.
    pub fn with_seed(log_universe: u32, d: usize, w: usize, seed: u64) -> Self {
        assert!((2..=40).contains(&log_universe), "universe out of range");
        assert!(d >= 1 && d % 2 == 1, "need an odd number of rows for the median");
        assert!(w >= 2, "need at least two columns");
        Self {
            log_universe,
            levels: (0..log_universe)
                .map(|l| CountSketch::new(d, w, seed ^ (u64::from(l) << 32)))
                .collect(),
            count: 0,
            seed,
            d,
            w,
        }
    }

    fn clamp_to_universe(&self, value: f64) -> u64 {
        let top = (1u64 << self.log_universe) - 1;
        if value <= 0.0 {
            0
        } else {
            (value.round() as u64).min(top)
        }
    }

    fn update(&mut self, value: f64, delta: i64) {
        let x = self.clamp_to_universe(value);
        for (level, cs) in self.levels.iter_mut().enumerate() {
            cs.update(x >> level, delta);
        }
        self.count += delta;
    }

    /// Record a deletion (turnstile model, §5.1).
    pub fn delete(&mut self, value: f64) {
        self.update(value, -1);
    }

    /// Estimated number of live elements `< x`.
    pub fn rank(&self, x: f64) -> i64 {
        let x = self.clamp_to_universe(x);
        let mut rank = 0i64;
        for level in 0..self.log_universe {
            if (x >> level) & 1 == 1 {
                let id = (x >> (level + 1)) << 1;
                rank += self.levels[level as usize].estimate(id);
            }
        }
        rank
    }

    /// Number of allocated counters (the footprint axis of §5.2.3).
    pub fn allocated_counters(&self) -> usize {
        self.levels.len() * self.d * self.w
    }
}

impl QuantileSketch for DyadicCountSketch {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN inserted into DCS");
        self.update(value, 1);
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count <= 0 {
            return Err(QueryError::Empty);
        }
        let target = (q * self.count as f64).ceil() as i64;
        // Binary search the smallest x with rank(x) >= target, i.e. at
        // least `target` elements < x; the quantile is x - 1's bucket.
        let mut lo = 0u64;
        let mut hi = 1u64 << self.log_universe;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rank(mid as f64) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok((lo.saturating_sub(1)) as f64)
    }

    fn count(&self) -> u64 {
        self.count.max(0) as u64
    }

    fn memory_footprint(&self) -> usize {
        self.allocated_counters() * std::mem::size_of::<i64>()
            + self.levels.len() * self.d * std::mem::size_of::<u64>()
            + 4 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "DCS"
    }
}

impl MergeableSketch for DyadicCountSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.log_universe != other.log_universe
            || self.d != other.d
            || self.w != other.w
            || self.seed != other.seed
        {
            return Err(MergeError::IncompatibleParameters(
                "DCS universe/table/seed mismatch".into(),
            ));
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.absorb(b);
        }
        self.count += other.count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64, seed: u64) -> DyadicCountSketch {
        let mut s = DyadicCountSketch::with_seed(20, 5, 1024, seed);
        for i in 0..n {
            s.insert(((i * 2_654_435_761) % n) as f64);
        }
        s
    }

    #[test]
    fn empty_query_errors() {
        let s = DyadicCountSketch::new(16, 5, 64);
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn rank_estimates_close_on_uniform_integers() {
        let n = 100_000u64;
        let s = filled(n, 3);
        for x in [10_000u64, 50_000, 90_000] {
            let est = s.rank(x as f64);
            let err = (est - x as i64).abs() as f64 / n as f64;
            assert!(err < 0.02, "rank({x}) = {est}, err {err}");
        }
    }

    #[test]
    fn quantiles_close_on_uniform_integers() {
        let n = 100_000u64;
        let s = filled(n, 5);
        for q in [0.25, 0.5, 0.9] {
            let est = s.query(q).unwrap();
            let rank_err = (est / n as f64 - q).abs();
            assert!(rank_err < 0.02, "q={q} est={est}");
        }
    }

    #[test]
    fn turnstile_deletions_shift_quantiles() {
        let n = 50_000u64;
        let mut s = DyadicCountSketch::with_seed(20, 5, 1024, 7);
        for i in 0..n {
            s.insert(i as f64);
        }
        for i in 0..n / 2 {
            s.delete(i as f64);
        }
        assert_eq!(s.count(), n / 2);
        let est = s.query(0.5).unwrap();
        // Live data is [n/2, n): median ~ 3n/4.
        let truth = 3.0 * n as f64 / 4.0;
        assert!(
            (est - truth).abs() / (n as f64) < 0.05,
            "median after deletes {est} vs {truth}"
        );
    }

    #[test]
    fn footprint_larger_than_kll_at_comparable_accuracy() {
        // §5.2.3: "Due to its larger memory footprint ... and being
        // outperformed by KLL Sketch, DCS is not included".
        use qsketch_kll::KllSketch;
        let dcs = filled(100_000, 9);
        let mut kll = KllSketch::with_seed(350, 9);
        for i in 0..100_000u64 {
            QuantileSketch::insert(&mut kll, i as f64);
        }
        assert!(
            dcs.memory_footprint() > 10 * kll.memory_footprint(),
            "DCS {} vs KLL {}",
            dcs.memory_footprint(),
            kll.memory_footprint()
        );
    }

    #[test]
    fn merge_combines_live_counts() {
        let mut a = DyadicCountSketch::with_seed(18, 5, 256, 11);
        let mut b = DyadicCountSketch::with_seed(18, 5, 256, 11);
        for i in 0..10_000 {
            a.insert(f64::from(i));
            b.insert(f64::from(i + 10_000));
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 20_000);
        let est = a.query(0.5).unwrap();
        assert!((est - 10_000.0).abs() / 20_000.0_f64 < 0.03, "median {est}");
    }

    #[test]
    fn merge_rejects_mismatched_seed() {
        let mut a = DyadicCountSketch::with_seed(18, 5, 256, 1);
        let b = DyadicCountSketch::with_seed(18, 5, 256, 2);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn out_of_universe_values_clamped() {
        let mut s = DyadicCountSketch::new(10, 5, 64);
        s.insert(-5.0);
        s.insert(1e9);
        assert_eq!(s.count(), 2);
        let est = s.query(1.0).unwrap();
        assert!(est <= 1024.0);
    }
}

//! The *Random* algorithm (§5.2.1): Manku–Rajagopalan–Lindsay style
//! buffer-collapse sampling, the ancestor KLL descends from.
//!
//! A fixed pool of `r` buffers of capacity `k` holds weighted samples.
//! Incoming items fill an active weight-1 buffer; when every buffer is
//! full, the two smallest-weight buffers are *collapsed*: their contents
//! are merged in sorted order and alternate elements are discarded, the
//! survivors forming one buffer of doubled weight ("the collapse function
//! increases the weight of the remaining elements by a factor of 2",
//! §5.2.1). Queries conceptually replicate each element by its weight and
//! index at `⌈qN⌉`.

use qsketch_core::rng::CoinFlipper;
use qsketch_core::sketch::{check_quantile, QuantileSketch, QueryError};
use qsketch_kll::SortedView;

/// One weighted buffer.
#[derive(Debug, Clone)]
struct Buffer {
    items: Vec<f64>,
    weight: u64,
}

/// The Random quantile sketch.
#[derive(Debug, Clone)]
pub struct RandomSketch {
    /// Buffer capacity.
    k: usize,
    /// Number of buffers.
    r: usize,
    buffers: Vec<Buffer>,
    count: u64,
    min: f64,
    max: f64,
    rng: CoinFlipper,
}

impl RandomSketch {
    /// Create with `r` buffers of capacity `k` (k even, r ≥ 2).
    pub fn new(k: usize, r: usize) -> Self {
        Self::with_seed(k, r, 0x7A4D_0111)
    }

    /// Create with an explicit PRNG seed.
    pub fn with_seed(k: usize, r: usize, seed: u64) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "buffer capacity must be even and >= 2");
        assert!(r >= 2, "need at least two buffers");
        Self {
            k,
            r,
            buffers: Vec::with_capacity(r),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rng: CoinFlipper::new(seed),
        }
    }

    /// Total retained items.
    pub fn retained(&self) -> usize {
        self.buffers.iter().map(|b| b.items.len()).sum()
    }

    /// Collapse the two smallest-weight full buffers into one.
    fn collapse(&mut self) {
        // Indices of the two smallest weights.
        let mut order: Vec<usize> = (0..self.buffers.len()).collect();
        order.sort_by_key(|&i| self.buffers[i].weight);
        let (ia, ib) = (order[0], order[1]);
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let b = self.buffers.remove(hi);
        let a = self.buffers.remove(lo);

        // Weighted merge: replicate-by-relative-weight then sample
        // alternates. Weights here are always powers of two and collapse
        // picks the two smallest, so in practice wa == wb; handle the
        // general case by expanding indices.
        let mut merged: Vec<(f64, u64)> = Vec::with_capacity(a.items.len() + b.items.len());
        merged.extend(a.items.iter().map(|&v| (v, a.weight)));
        merged.extend(b.items.iter().map(|&v| (v, b.weight)));
        merged.sort_unstable_by(|x, y| x.0.partial_cmp(&y.0).expect("NaN in sketch"));

        let total_weight: u64 = merged.iter().map(|(_, w)| w).sum();
        let new_weight = (total_weight / self.k as u64).max(1);
        // Sample k items at evenly spaced weighted ranks with a random
        // phase — the randomised collapse of §5.2.1.
        let phase = if self.rng.flip() { new_weight / 2 } else { new_weight / 4 };
        let mut out = Vec::with_capacity(self.k);
        let mut cum = 0u64;
        let mut next_pick = phase + 1;
        for (v, w) in merged {
            cum += w;
            while cum >= next_pick && out.len() < self.k {
                out.push(v);
                next_pick += new_weight;
            }
        }
        self.buffers.push(Buffer {
            items: out,
            weight: new_weight,
        });
    }

    fn active_buffer(&mut self) -> &mut Buffer {
        // Reuse a non-full weight-1 buffer if one exists.
        if let Some(i) = self
            .buffers
            .iter()
            .position(|b| b.weight == 1 && b.items.len() < self.k)
        {
            return &mut self.buffers[i];
        }
        if self.buffers.len() == self.r {
            self.collapse();
        }
        self.buffers.push(Buffer {
            items: Vec::with_capacity(self.k),
            weight: 1,
        });
        let last = self.buffers.len() - 1;
        &mut self.buffers[last]
    }

    /// Weighted sorted view over the retained samples.
    pub fn sorted_view(&self) -> SortedView {
        let mut items = Vec::with_capacity(self.retained());
        for b in &self.buffers {
            items.extend(b.items.iter().map(|&v| (v, b.weight)));
        }
        SortedView::new(items)
    }
}

impl QuantileSketch for RandomSketch {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN inserted into Random sketch");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.active_buffer().items.push(value);
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        if q == 1.0 {
            return Ok(self.max);
        }
        let view = self.sorted_view();
        Ok(view
            .quantile(q, view.total_weight())
            .clamp(self.min, self.max))
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        self.retained() * std::mem::size_of::<f64>()
            + self.buffers.len() * 2 * std::mem::size_of::<u64>()
            + 4 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_errors() {
        let s = RandomSketch::new(100, 8);
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn small_stream_exact() {
        let mut s = RandomSketch::new(100, 8);
        for v in [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0] {
            s.insert(v);
        }
        assert_eq!(s.query(0.5).unwrap(), 11.0);
        assert_eq!(s.query(0.9).unwrap(), 30.0);
    }

    #[test]
    fn rank_error_reasonable_on_large_stream() {
        let n = 200_000u64;
        let mut s = RandomSketch::with_seed(500, 10, 3);
        for i in 0..n {
            s.insert(((i * 2_654_435_761) % n) as f64);
        }
        for q in [0.25, 0.5, 0.75, 0.9] {
            let est = s.query(q).unwrap();
            let rank_err = ((est + 1.0) / n as f64 - q).abs();
            assert!(rank_err < 0.05, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn space_is_bounded() {
        let mut s = RandomSketch::new(200, 8);
        for i in 0..500_000 {
            s.insert(f64::from(i));
        }
        assert!(s.retained() <= 200 * 8, "retained {}", s.retained());
    }

    #[test]
    fn weights_track_stream_size() {
        let n = 100_000u64;
        let mut s = RandomSketch::with_seed(200, 8, 5);
        for i in 0..n {
            s.insert(i as f64);
        }
        let total = s.sorted_view().total_weight();
        // Collapse sampling loses at most ~one buffer's weight per
        // collapse round.
        assert!(
            (total as f64 - n as f64).abs() / (n as f64) < 0.05,
            "total weight {total} vs n {n}"
        );
    }

    #[test]
    fn kll_beats_random_at_equal_space() {
        // §5.2.1/§3.1: KLL improves on Random's accuracy at the same
        // space. Compare both at ~1600 retained samples.
        use qsketch_kll::KllSketch;
        let n = 400_000u64;
        let mut random = RandomSketch::with_seed(200, 8, 7);
        let mut kll = KllSketch::with_seed(550, 7);
        for i in 0..n {
            let v = ((i * 2_654_435_761) % n) as f64;
            random.insert(v);
            QuantileSketch::insert(&mut kll, v);
        }
        let worst = |s: &dyn Fn(f64) -> f64| -> f64 {
            [0.25, 0.5, 0.75, 0.9, 0.99]
                .iter()
                .map(|&q| (s(q) / n as f64 - q).abs())
                .fold(0.0, f64::max)
        };
        let r_err = worst(&|q| random.query(q).unwrap());
        let k_err = worst(&|q| kll.query(q).unwrap());
        // Not a strict per-run dominance claim; allow KLL a small slack
        // but verify it is at least in the same class.
        assert!(k_err <= r_err * 2.0 + 0.01, "KLL {k_err} vs Random {r_err}");
    }
}

//! The DDSketch front-end: index mapping + bucket stores + zero/negative
//! handling.

use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};

use crate::mapping::LogarithmicMapping;
use crate::store::{BucketStore, CollapsingLowestDenseStore, UnboundedDenseStore};

/// DDSketch over `f64` values, generic in the bucket store.
///
/// Positive values land in `positives`, negative values are mirrored into
/// `negatives` (indexed by `⌈log_γ(−x)⌉`), and exact zeros are counted
/// separately — the scheme used by the reference implementation the paper
/// benchmarks. All of the paper's data sets are positive, but the mirrored
/// store keeps the sketch total.
#[derive(Debug, Clone)]
pub struct DdSketch<S: BucketStore = UnboundedDenseStore> {
    mapping: LogarithmicMapping,
    positives: S,
    negatives: S,
    zero_count: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl DdSketch<UnboundedDenseStore> {
    /// DDSketch with an unbounded dense store — the paper's primary
    /// configuration (§4.2).
    pub fn unbounded(alpha: f64) -> Self {
        Self::with_store(alpha, UnboundedDenseStore::new(), UnboundedDenseStore::new())
    }

    /// The exact configuration of §4.2: α = 0.01, unbounded dense store.
    pub fn paper_configuration() -> Self {
        Self::unbounded(crate::PAPER_ALPHA)
    }
}

impl DdSketch<CollapsingLowestDenseStore> {
    /// DDSketch with a bounded, collapsing-lowest dense store — the
    /// 1024-bucket variant compared in §4.5.5.
    pub fn collapsing(alpha: f64, max_buckets: usize) -> Self {
        Self::with_store(
            alpha,
            CollapsingLowestDenseStore::new(max_buckets),
            CollapsingLowestDenseStore::new(max_buckets),
        )
    }
}

impl<S: BucketStore> DdSketch<S> {
    /// Build a sketch from explicit stores (used by the ablation benches).
    pub fn with_store(alpha: f64, positives: S, negatives: S) -> Self {
        Self {
            mapping: LogarithmicMapping::new(alpha),
            positives,
            negatives,
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The index mapping (γ, α).
    pub fn mapping(&self) -> &LogarithmicMapping {
        &self.mapping
    }

    /// Maximum relative error parameter α.
    pub fn alpha(&self) -> f64 {
        self.mapping.alpha()
    }

    /// Number of non-empty buckets across both stores (§4.3's reported
    /// bucket counts).
    pub fn non_empty_buckets(&self) -> usize {
        self.positives.non_empty_buckets() + self.negatives.non_empty_buckets()
    }

    /// Smallest inserted value (exact), `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest inserted value (exact), `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimated rank of `x`: the number of inserted values `≤ x`, read
    /// off the bucket counts (the CDF query dual to `query`).
    pub fn rank(&self, x: f64) -> u64 {
        let mut cum = 0u64;
        if x >= 0.0 {
            // All negatives are <= x.
            cum += self.negatives.total();
            if x > 0.0 || self.zero_count > 0 {
                cum += self.zero_count;
            }
            if x > 0.0 {
                let xi = self.mapping.index(x);
                for (i, c) in self.positives.iter_ascending() {
                    if i > xi {
                        break;
                    }
                    cum += c;
                }
            }
        } else {
            let xi = self.mapping.index(-x);
            // Negative values <= x are those with mirrored index >= xi.
            for (i, c) in self.negatives.iter_ascending() {
                if i >= xi {
                    cum += c;
                }
            }
        }
        cum
    }

    /// Estimated CDF at `x`: `rank(x) / count`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.rank(x) as f64 / self.count as f64
    }

    /// The quantile value implied by walking buckets in ascending value
    /// order until the cumulative count reaches `rank` (1-based).
    fn value_at_rank(&self, rank: u64) -> f64 {
        let mut cum = 0u64;

        // Negative buckets: most-negative values have the *largest* mirrored
        // index, so walk descending.
        let mut neg: Vec<(i32, u64)> = self.negatives.iter_ascending().collect();
        neg.reverse();
        for (i, c) in neg {
            cum += c;
            if cum >= rank {
                return -self.mapping.value(i);
            }
        }

        cum += self.zero_count;
        if cum >= rank {
            return 0.0;
        }

        for (i, c) in self.positives.iter_ascending() {
            cum += c;
            if cum >= rank {
                return self.mapping.value(i);
            }
        }

        // rank beyond total (can only happen through clamping): largest
        // estimate available.
        self.max
    }
}

impl<S: BucketStore> DdSketch<S> {
    /// Per-value fallback for batch blocks containing NaN, zeros, or
    /// negatives: the ln-free mapping plus run coalescing of consecutive
    /// same-bucket values, processing each value exactly as scalar
    /// `insert` would (same NaN skip, same zero counting, same min/max
    /// update order).
    fn insert_run_coalesced(&mut self, values: &[f64]) {
        // Pending run: sign (true = positives store), bucket index, count.
        let mut run: Option<(bool, i32, u64)> = None;
        for &value in values {
            if value.is_nan() {
                continue;
            }
            self.count += 1;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            let keyed = if value > 0.0 {
                (true, self.mapping.index_fast(value))
            } else if value < 0.0 {
                (false, self.mapping.index_fast(-value))
            } else {
                self.zero_count += 1;
                continue; // zeros don't touch the stores; keep the run open
            };
            match run {
                Some((pos, idx, ref mut n)) if (pos, idx) == keyed => *n += 1,
                _ => {
                    if let Some((pos, idx, n)) = run.take() {
                        let store = if pos { &mut self.positives } else { &mut self.negatives };
                        store.add(idx, n);
                    }
                    run = Some((keyed.0, keyed.1, 1));
                }
            }
        }
        if let Some((pos, idx, n)) = run {
            let store = if pos { &mut self.positives } else { &mut self.negatives };
            store.add(idx, n);
        }
    }
}

impl<S: BucketStore> QuantileSketch for DdSketch<S> {
    fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return; // trait-level NaN policy: ignore
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value > 0.0 {
            self.positives.add(self.mapping.index(value), 1);
        } else if value < 0.0 {
            self.negatives.add(self.mapping.index(-value), 1);
        } else {
            self.zero_count += 1;
        }
    }

    /// Insert `count` occurrences of `value` at once — pre-aggregated
    /// ingestion (e.g. rollups) costs one bucket update regardless of
    /// weight, an advantage histogram sketches have over sampling
    /// sketches.
    fn insert_n(&mut self, value: f64, count: u64) {
        if count == 0 || value.is_nan() {
            return;
        }
        self.count += count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value > 0.0 {
            self.positives.add(self.mapping.index(value), count);
        } else if value < 0.0 {
            self.negatives.add(self.mapping.index(-value), count);
        } else {
            self.zero_count += count;
        }
    }

    /// Batch kernel: blocked, ln-free, branch-free in the hot loop.
    ///
    /// Each 128-value block that is entirely positive (the common case for
    /// the paper's value distributions) takes the fast path: a single
    /// vectorizable pass of
    /// [`index_checked`](LogarithmicMapping::index_checked) fills an index
    /// array plus needs-exact flags, the (provably rare) flagged lanes are
    /// redone through the exact `ln` mapping, min/max fold over the block,
    /// and the whole index block goes to the store's bulk
    /// [`add_block`](BucketStore::add_block) (grow once, increment without
    /// per-value range checks). Blocks containing NaN, zeros, or negatives
    /// fall back to a per-value run-coalescing loop with the same ln-free
    /// mapping.
    ///
    /// Bit-identity with the scalar path: the guarded fast index always
    /// equals the `ln` index (see [`qsketch_core::fastlog`]); min/max of
    /// an all-positive, NaN-free block is order-independent; and bucket
    /// counts are plain `u64` additions, so the serialized store is
    /// bit-identical to the scalar path's.
    fn insert_batch(&mut self, values: &[f64]) {
        const BLOCK: usize = 128;
        let mut idx = [0i32; BLOCK];
        // Fixed-size blocks: every loop below runs over exactly BLOCK
        // elements, so the compiler drops bounds checks and trip-count
        // prologues and vectorizes cleanly. The tail (and any block
        // containing NaN, zeros, or negatives) takes the per-value path.
        let mut blocks = values.chunks_exact(BLOCK);
        for block in blocks.by_ref() {
            let block: &[f64; BLOCK] = block.try_into().expect("chunks_exact");
            // Screen + min/max pass. lo/hi are only used when the block
            // is all-positive (min/max of an all-positive, NaN-free
            // block is order-independent; the cmp-selects are
            // `vminpd`/`vmaxpd`, valid because NaN-containing blocks
            // are discarded).
            let mut all_pos = true;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in block {
                all_pos &= v > 0.0; // also rejects NaN
                lo = if v < lo { v } else { lo };
                hi = if v > hi { v } else { hi };
            }
            if !all_pos {
                self.insert_run_coalesced(block);
                continue;
            }
            // Branch-free speculative index pass — no libm calls, so
            // the compiler unrolls and vectorizes it.
            let mut any = false;
            for i in 0..BLOCK {
                let (index, needs_exact) = self.mapping.index_checked(block[i]);
                idx[i] = index;
                any |= needs_exact;
            }
            if any {
                // Rare (the guard band covers ~7 in 100 000 values):
                // recompute the block, redoing flagged lanes exactly.
                for i in 0..BLOCK {
                    let (index, needs_exact) = self.mapping.index_checked(block[i]);
                    idx[i] = if needs_exact {
                        self.mapping.index(block[i])
                    } else {
                        index
                    };
                }
            }
            self.min = self.min.min(lo);
            self.max = self.max.max(hi);
            self.count += BLOCK as u64;
            self.positives.add_block(&idx);
        }
        self.insert_run_coalesced(blocks.remainder());
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let est = self.value_at_rank(rank);
        // Clamp into the observed range: the bucket midpoint of the extreme
        // buckets can poke past the true min/max.
        Ok(est.clamp(self.min, self.max))
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        // Allocated count slots plus the scalar state (offsets, min/max
        // indices, counts) — the accounting behind Table 3's 1.84–5.42 KB.
        (self.positives.allocated_buckets() + self.negatives.allocated_buckets())
            * std::mem::size_of::<u64>()
            + 6 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "DDS"
    }
}

impl<S: BucketStore + Clone> MergeableSketch for DdSketch<S> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if !self.mapping.is_mergeable_with(&other.mapping) {
            return Err(MergeError::IncompatibleParameters(format!(
                "gamma mismatch: {} vs {}",
                self.mapping.gamma(),
                other.mapping.gamma()
            )));
        }
        for (i, c) in other.positives.iter_ascending() {
            self.positives.add(i, c);
        }
        for (i, c) in other.negatives.iter_ascending() {
            self.negatives.add(i, c);
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_errors() {
        let s = DdSketch::unbounded(0.01);
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn relative_error_guarantee_on_sequential_data() {
        let mut s = DdSketch::unbounded(0.01);
        let n = 100_000;
        for i in 1..=n {
            s.insert(i as f64);
        }
        for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99] {
            let truth = (q * n as f64).ceil();
            let est = s.query(q).unwrap();
            let rel = ((est - truth) / truth).abs();
            assert!(rel <= 0.01 + 1e-9, "q={q} rel={rel}");
        }
    }

    #[test]
    fn relative_error_guarantee_across_magnitudes() {
        // Values spanning 12 decades still answer within alpha.
        let mut s = DdSketch::unbounded(0.01);
        let mut values = Vec::new();
        let mut x = 1e-6;
        while x < 1e6 {
            values.push(x);
            x *= 1.003;
        }
        for &v in &values {
            s.insert(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.5, 0.99] {
            let truth = values[((q * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
            let est = s.query(q).unwrap();
            let rel = ((est - truth) / truth).abs();
            assert!(rel <= 0.01 + 1e-9, "q={q} rel={rel}");
        }
    }

    #[test]
    fn handles_zeros_and_negatives() {
        let mut s = DdSketch::unbounded(0.01);
        for v in [-100.0, -10.0, 0.0, 0.0, 10.0, 100.0, 1000.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 7);
        // rank ceil(0.3*7)=3 -> the first zero.
        assert_eq!(s.query(0.3).unwrap(), 0.0);
        // Lowest quantile is negative, within 1% of -100.
        let low = s.query(0.1).unwrap();
        assert!(((low + 100.0) / 100.0).abs() <= 0.01 + 1e-9, "low {low}");
        // Upper within 1% of 1000.
        let hi = s.query(1.0).unwrap();
        assert!(((hi - 1000.0) / 1000.0).abs() <= 0.01 + 1e-9, "hi {hi}");
    }

    #[test]
    fn merge_preserves_guarantee() {
        let mut a = DdSketch::unbounded(0.01);
        let mut b = DdSketch::unbounded(0.01);
        for i in 1..=50_000 {
            a.insert(i as f64);
            b.insert((i + 50_000) as f64);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 100_000);
        for q in [0.25, 0.5, 0.75, 0.99] {
            let truth = (q * 100_000.0_f64).ceil();
            let est = a.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
    }

    #[test]
    fn merge_rejects_gamma_mismatch() {
        let mut a = DdSketch::unbounded(0.01);
        let b = DdSketch::unbounded(0.02);
        a.insert(1.0);
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, MergeError::IncompatibleParameters(_)));
    }

    #[test]
    fn merge_is_count_exact() {
        // Histogram merge adds counts exactly — unlike sampling sketches
        // there is no randomness (§2.4).
        let mut a = DdSketch::unbounded(0.01);
        let mut b = DdSketch::unbounded(0.01);
        for i in 1..=1000 {
            a.insert(i as f64);
            b.insert(i as f64);
        }
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        for q in [0.1, 0.5, 0.9] {
            // Same distribution twice: quantiles unchanged.
            assert_eq!(merged.query(q).unwrap(), a.query(q).unwrap(), "q={q}");
        }
    }

    #[test]
    fn collapsing_store_preserves_upper_quantiles() {
        // §4.5.5: with 1024 buckets the collapsing store stays close to the
        // unbounded store for upper quantiles.
        let mut unbounded = DdSketch::unbounded(0.01);
        let mut bounded = DdSketch::collapsing(0.01, 128);
        let mut x = 1.0;
        for _ in 0..200_000 {
            x = if x > 1e8 { 1.0 } else { x * 1.0001 };
            unbounded.insert(x);
            bounded.insert(x);
        }
        let u = unbounded.query(0.99).unwrap();
        let b = bounded.query(0.99).unwrap();
        assert!(((u - b) / u).abs() < 0.05, "unbounded {u} vs bounded {b}");
    }

    #[test]
    fn bucket_count_depends_on_range_not_size(){
        // §4.3: bucket count is independent of stream length.
        let mut small = DdSketch::unbounded(0.01);
        let mut large = DdSketch::unbounded(0.01);
        for i in 0..1_000 {
            small.insert(1.0 + (i % 100) as f64);
        }
        for i in 0..100_000 {
            large.insert(1.0 + (i % 100) as f64);
        }
        assert_eq!(small.non_empty_buckets(), large.non_empty_buckets());
    }

    #[test]
    fn single_value_stream() {
        let mut s = DdSketch::unbounded(0.01);
        for _ in 0..100 {
            s.insert(42.0);
        }
        for q in [0.01, 0.5, 1.0] {
            let est = s.query(q).unwrap();
            assert!(((est - 42.0) / 42.0).abs() <= 0.01 + 1e-9);
        }
    }

    #[test]
    fn insert_n_equals_repeated_inserts() {
        let mut a = DdSketch::unbounded(0.01);
        let mut b = DdSketch::unbounded(0.01);
        for (v, n) in [(3.5, 100u64), (42.0, 17), (0.0, 5), (-2.0, 3)] {
            a.insert_n(v, n);
            for _ in 0..n {
                b.insert(v);
            }
        }
        assert_eq!(a.count(), b.count());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(a.query(q).unwrap(), b.query(q).unwrap(), "q={q}");
        }
    }

    #[test]
    fn rank_and_cdf_track_true_ranks() {
        let mut s = DdSketch::unbounded(0.01);
        let n = 10_000;
        for i in 1..=n {
            s.insert(i as f64);
        }
        for x in [100.0, 2_500.0, 9_999.0] {
            let est = s.rank(x) as f64;
            assert!(
                (est - x).abs() / (n as f64) < 0.02,
                "rank({x}) = {est}"
            );
        }
        assert_eq!(s.rank(0.0), 0);
        assert_eq!(s.rank(1e12), n);
        assert!((s.cdf(5_000.0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn rank_with_negatives_and_zero() {
        let mut s = DdSketch::unbounded(0.01);
        for v in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            s.insert(v);
        }
        assert_eq!(s.rank(-20.0), 0);
        assert_eq!(s.rank(-0.5), 2);
        assert_eq!(s.rank(0.0), 3);
        assert_eq!(s.rank(100.0), 5);
    }

    #[test]
    fn query_results_are_monotone_in_q() {
        let mut s = DdSketch::unbounded(0.02);
        let mut x = 0.5;
        for _ in 0..10_000 {
            x = (x * 1103.515245 + 1.2345) % 1000.0 + 0.001;
            s.insert(x);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 1..=100 {
            let q = i as f64 / 100.0;
            let v = s.query(q).unwrap();
            assert!(v >= prev, "quantiles must be monotone: q={q}");
            prev = v;
        }
    }
}

/// Wire format: magic `0xD0`, version 3 (flatwire — FORMATS.md §3.4;
/// version 2 was never issued for DDSketch, so the numbering stays
/// aligned across sketches). Encodes α, scalar state, and both stores as
/// delta + prefix-varint compressed `(index, count)` runs — positives in
/// ascending index order, negatives in *descending* index order, which is
/// ascending value order, so a quantile query walks the bytes in a single
/// pass ([`qsketch_core::flatwire::SketchView`]). Version-1 payloads
/// (LEB128, fixed 4-byte indices) still decode. Only the unbounded-store
/// sketch is encodable — a collapsed store has already discarded
/// information that the receiving side could not validate.
pub use codec::MAGIC as WIRE_MAGIC;

mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
    use qsketch_core::flatwire::{self, BucketRunCursor, FlatReader, RunDirection, SketchView};
    use qsketch_core::sketch::SketchError;

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0xD0;
    const LEGACY_VERSION: u8 = 1;
    const FLAT_VERSION: u8 = 3;
    /// Upper bound on buckets accepted from a payload (a 2048-bucket
    /// sketch already spans 17 decades at α = 0.01, §4.8).
    const MAX_BUCKETS: u64 = 1 << 22;

    fn write_store(w: &mut Writer, store: &UnboundedDenseStore) {
        let buckets: Vec<(i32, u64)> = store.iter_ascending().collect();
        w.varint(buckets.len() as u64);
        for (i, c) in buckets {
            w.i32(i);
            w.varint(c);
        }
    }

    fn read_store(r: &mut Reader<'_>) -> Result<UnboundedDenseStore, DecodeError> {
        let n = r.varint()?;
        if n > MAX_BUCKETS {
            return Err(DecodeError::Corrupt(format!("{n} buckets exceeds limit")));
        }
        let mut store = UnboundedDenseStore::new();
        for _ in 0..n {
            let i = r.i32()?;
            // The dense store allocates the whole index *span*: a hostile
            // index pair like (i32::MIN, i32::MAX) would demand a 16 GiB
            // count array. Bound the index magnitude before adding; 2^22
            // buckets at alpha = 0.01 already cover tens of thousands of
            // decades, far past any real payload.
            if u64::from(i.unsigned_abs()) > MAX_BUCKETS {
                return Err(DecodeError::Corrupt(format!("bucket index {i} out of range")));
            }
            let c = r.varint()?;
            store.add(i, c);
        }
        Ok(store)
    }

    /// The fixed-position scalar fields of a v3 payload.
    struct FlatHeader {
        alpha: f64,
        zero_count: u64,
        count: u64,
        min: f64,
        max: f64,
    }

    fn read_flat_header(r: &mut FlatReader<'_>) -> Result<FlatHeader, DecodeError> {
        let alpha = r.f64()?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(DecodeError::Corrupt(format!("alpha {alpha} out of range")));
        }
        // A subnormal-tiny alpha passes the range check but rounds
        // (1+α)/(1−α) to exactly 1 — no usable bucket base.
        if (1.0 + alpha) / (1.0 - alpha) <= 1.0 {
            return Err(DecodeError::Corrupt(format!(
                "alpha {alpha} collapses gamma to 1"
            )));
        }
        let zero_count = r.uvarint()?;
        let count = r.uvarint()?;
        let min = r.f64()?;
        let max = r.f64()?;
        if min.is_nan() || max.is_nan() {
            return Err(DecodeError::Corrupt("NaN extremes".into()));
        }
        if count > 0 && min > max {
            return Err(DecodeError::Corrupt("min above max".into()));
        }
        Ok(FlatHeader {
            alpha,
            zero_count,
            count,
            min,
            max,
        })
    }

    /// Read one store's run header, returning `(bucket count, run bytes)`.
    fn read_flat_run<'a>(r: &mut FlatReader<'a>) -> Result<(u64, &'a [u8]), DecodeError> {
        let n = r.uvarint()?;
        if n > MAX_BUCKETS {
            return Err(DecodeError::Corrupt(format!("{n} buckets exceeds limit")));
        }
        let byte_len = r.uvarint()?;
        let byte_len = usize::try_from(byte_len)
            .ok()
            .filter(|&b| b <= r.remaining())
            .ok_or(DecodeError::UnexpectedEnd)?;
        Ok((n, r.slice(byte_len)?))
    }

    /// Append a store as a delta-compressed run with a `(count, byte
    /// length)` header. Negative stores are written highest-index-first
    /// (ascending value order).
    fn write_flat_store(out: &mut Vec<u8>, store: &UnboundedDenseStore, descending: bool) {
        let mut buckets: Vec<(i32, u64)> = store.iter_ascending().collect();
        if descending {
            buckets.reverse();
        }
        let mut run = Vec::new();
        flatwire::write_bucket_run(&mut run, &buckets);
        flatwire::write_uvarint(out, buckets.len() as u64);
        flatwire::write_uvarint(out, run.len() as u64);
        out.extend_from_slice(&run);
    }

    /// Drain a run into an [`UnboundedDenseStore`], enforcing the run's
    /// byte length and index bounds.
    fn read_store_from_run(
        n: u64,
        run: &[u8],
        direction: RunDirection,
    ) -> Result<UnboundedDenseStore, DecodeError> {
        let mut cursor = BucketRunCursor::new(run, n, direction, MAX_BUCKETS as i64);
        let mut store = UnboundedDenseStore::new();
        while let Some((i, c)) = cursor.next()? {
            store.add(i, c);
        }
        if cursor.bytes_read() != run.len() {
            return Err(DecodeError::Corrupt("store run length mismatch".into()));
        }
        Ok(store)
    }

    impl DdSketch<UnboundedDenseStore> {
        /// Encode in the previous wire generation (magic `0xD0`, version
        /// 1: LEB128 varints, fixed 4-byte bucket indices). Kept so the
        /// committed back-compat fixtures can be regenerated and so
        /// operators can write payloads for pre-v3 readers.
        pub fn encode_legacy(&self) -> Vec<u8> {
            let mut w = Writer::with_header(MAGIC, LEGACY_VERSION);
            w.f64(self.mapping.alpha());
            w.varint(self.zero_count);
            w.varint(self.count);
            w.f64(self.min);
            w.f64(self.max);
            write_store(&mut w, &self.positives);
            write_store(&mut w, &self.negatives);
            w.finish()
        }

        /// Decode a pre-flatwire (v1) payload.
        fn decode_legacy(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
            let alpha = r.f64()?;
            if !(alpha > 0.0 && alpha < 1.0) {
                return Err(DecodeError::Corrupt(format!("alpha {alpha} out of range")));
            }
            // A subnormal-tiny alpha passes the range check but rounds
            // (1+α)/(1−α) to exactly 1 — no usable bucket base.
            if (1.0 + alpha) / (1.0 - alpha) <= 1.0 {
                return Err(DecodeError::Corrupt(format!(
                    "alpha {alpha} collapses gamma to 1"
                )));
            }
            let zero_count = r.varint()?;
            let count = r.varint()?;
            let min = r.f64()?;
            let max = r.f64()?;
            if min.is_nan() || max.is_nan() {
                return Err(DecodeError::Corrupt("NaN extremes".into()));
            }
            if count > 0 && min > max {
                return Err(DecodeError::Corrupt("min above max".into()));
            }
            let positives = read_store(&mut r)?;
            let negatives = read_store(&mut r)?;
            r.expect_exhausted()?;
            let stored = positives
                .total()
                .checked_add(negatives.total())
                .and_then(|t| t.checked_add(zero_count));
            if stored != Some(count) {
                return Err(DecodeError::Corrupt(format!(
                    "bucket totals disagree with count {count}"
                )));
            }
            Ok(Self {
                mapping: LogarithmicMapping::new(alpha),
                positives,
                negatives,
                zero_count,
                count,
                min,
                max,
            })
        }
    }

    impl SketchSerialize for DdSketch<UnboundedDenseStore> {
        fn encode(&self) -> Vec<u8> {
            let mut out = vec![MAGIC, FLAT_VERSION];
            flatwire::write_f64(&mut out, self.mapping.alpha());
            flatwire::write_uvarint(&mut out, self.zero_count);
            flatwire::write_uvarint(&mut out, self.count);
            flatwire::write_f64(&mut out, self.min);
            flatwire::write_f64(&mut out, self.max);
            write_flat_store(&mut out, &self.positives, false);
            write_flat_store(&mut out, &self.negatives, true);
            out
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return Self::decode_legacy(bytes);
            }
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            let (pos_n, pos_run) = read_flat_run(&mut r)?;
            let positives = read_store_from_run(pos_n, pos_run, RunDirection::Ascending)?;
            let (neg_n, neg_run) = read_flat_run(&mut r)?;
            let negatives = read_store_from_run(neg_n, neg_run, RunDirection::Descending)?;
            r.expect_exhausted()?;
            let stored = positives
                .total()
                .checked_add(negatives.total())
                .and_then(|t| t.checked_add(h.zero_count));
            if stored != Some(h.count) {
                return Err(DecodeError::Corrupt(format!(
                    "bucket totals disagree with count {}",
                    h.count
                )));
            }
            Ok(Self {
                mapping: LogarithmicMapping::new(h.alpha),
                positives,
                negatives,
                zero_count: h.zero_count,
                count: h.count,
                min: h.min,
                max: h.max,
            })
        }
    }

    impl SketchView for DdSketch<UnboundedDenseStore> {
        fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                Ok(read_flat_header(&mut r)?.count)
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.f64()?; // alpha
                r.varint()?; // zero_count
                r.varint()
            }
        }

        fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                let h = read_flat_header(&mut r)?;
                Ok((h.min, h.max))
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.f64()?; // alpha
                r.varint()?; // zero_count
                r.varint()?; // count
                Ok((r.f64()?, r.f64()?))
            }
        }

        fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return flatwire::quantile_via_decode::<Self>(bytes, q);
            }
            qsketch_core::sketch::check_quantile(q)?;
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            if h.count == 0 {
                return Err(QueryError::Empty.into());
            }
            // Same rank arithmetic and walk order as the in-memory
            // `value_at_rank`: negatives in ascending value order (the
            // wire already stores them highest-index-first), then zeros,
            // then positives.
            let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
            let mapping = LogarithmicMapping::new(h.alpha);
            let (pos_n, pos_run) = read_flat_run(&mut r)?;
            let (neg_n, neg_run) = read_flat_run(&mut r)?;
            let mut cum = 0u64;
            let overflow = || DecodeError::Corrupt("bucket counts overflow".into());
            let mut negatives =
                BucketRunCursor::new(neg_run, neg_n, RunDirection::Descending, MAX_BUCKETS as i64);
            let mut est = None;
            while let Some((i, c)) = negatives.next()? {
                cum = cum.checked_add(c).ok_or_else(overflow)?;
                if cum >= rank {
                    est = Some(-mapping.value(i));
                    break;
                }
            }
            if est.is_none() {
                cum = cum.checked_add(h.zero_count).ok_or_else(overflow)?;
                if cum >= rank {
                    est = Some(0.0);
                }
            }
            if est.is_none() {
                let mut positives = BucketRunCursor::new(
                    pos_run,
                    pos_n,
                    RunDirection::Ascending,
                    MAX_BUCKETS as i64,
                );
                while let Some((i, c)) = positives.next()? {
                    cum = cum.checked_add(c).ok_or_else(overflow)?;
                    if cum >= rank {
                        est = Some(mapping.value(i));
                        break;
                    }
                }
            }
            // Rank beyond the stored totals falls back to the tracked max,
            // exactly as the in-memory walk does.
            Ok(est.unwrap_or(h.max).clamp(h.min, h.max))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use qsketch_core::sketch::MergeableSketch;

        #[test]
        fn round_trip_preserves_queries() {
            let mut s = DdSketch::unbounded(0.01);
            for i in 1..=50_000 {
                s.insert(i as f64 * 0.37);
            }
            s.insert(-5.0);
            s.insert(0.0);
            let bytes = s.encode();
            let restored = DdSketch::decode(&bytes).unwrap();
            assert_eq!(restored.count(), s.count());
            for q in [0.05, 0.5, 0.99, 1.0] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap(), "q={q}");
            }
        }

        #[test]
        fn decoded_sketch_still_merges_and_inserts() {
            let mut a = DdSketch::unbounded(0.01);
            let mut b = DdSketch::unbounded(0.01);
            for i in 1..=10_000 {
                a.insert(i as f64);
                b.insert((i + 10_000) as f64);
            }
            let mut restored = DdSketch::decode(&a.encode()).unwrap();
            restored.merge(&b).unwrap();
            restored.insert(123.0);
            assert_eq!(restored.count(), 20_001);
        }

        #[test]
        fn empty_sketch_round_trips() {
            let s = DdSketch::unbounded(0.02);
            let restored = DdSketch::decode(&s.encode()).unwrap();
            assert_eq!(restored.count(), 0);
            assert!(restored.query(0.5).is_err());
        }

        #[test]
        fn corrupt_count_rejected() {
            let mut s = DdSketch::unbounded(0.01);
            s.insert(1.0);
            let mut bytes = s.encode();
            // The payload ends with the (empty) negatives run header:
            // flipping its byte-length varint declares bytes that are
            // not there.
            let last = bytes.len() - 1;
            bytes[last] = bytes[last].wrapping_add(1);
            assert!(DdSketch::decode(&bytes).is_err());
        }

        #[test]
        fn payload_is_compact() {
            let mut s = DdSketch::unbounded(0.01);
            for i in 1..=1_000_000 {
                s.insert(i as f64);
            }
            let bytes = s.encode();
            // ~700 non-empty buckets x ~7 bytes + header: far below the
            // dense in-memory footprint.
            assert!(bytes.len() < 16 * 1024, "payload {} bytes", bytes.len());
        }

        fn mixed_sketch() -> DdSketch {
            let mut s = DdSketch::unbounded(0.01);
            for i in 1..=50_000u64 {
                match i % 97 {
                    0 => s.insert(0.0),
                    k if k < 20 => s.insert(-(i as f64) * 0.11),
                    _ => s.insert(i as f64 * 0.37),
                }
            }
            s
        }

        #[test]
        fn v1_payload_still_decodes() {
            let s = mixed_sketch();
            let legacy = s.encode_legacy();
            assert_eq!(legacy[..2], [MAGIC, 1]);
            let restored = DdSketch::decode(&legacy).unwrap();
            assert_eq!(restored.count(), s.count());
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap(), "q={q}");
            }
        }

        #[test]
        fn v3_is_smaller_than_v1() {
            let mut s = DdSketch::unbounded(0.01);
            for i in 1..=1_000_000 {
                s.insert(i as f64);
            }
            let v3 = s.encode();
            let v1 = s.encode_legacy();
            assert_eq!(v3[..2], [MAGIC, 3]);
            // Delta + prefix-varint indices vs fixed 4-byte indices: the
            // dense consecutive-index runs compress to ~2 bytes/bucket.
            assert!(
                v3.len() * 2 < v1.len(),
                "v3 {} bytes vs v1 {} bytes",
                v3.len(),
                v1.len()
            );
        }

        #[test]
        fn quantile_from_bytes_matches_decode_then_query() {
            use qsketch_core::flatwire::SketchView;
            let s = mixed_sketch();
            for bytes in [s.encode(), s.encode_legacy()] {
                let decoded = DdSketch::decode(&bytes).unwrap();
                assert_eq!(DdSketch::count_from_bytes(&bytes).unwrap(), s.count());
                assert_eq!(
                    DdSketch::bounds_from_bytes(&bytes).unwrap(),
                    (decoded.min, decoded.max)
                );
                for q in [0.001, 0.01, 0.2, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                    let from_bytes = DdSketch::quantile_from_bytes(&bytes, q).unwrap();
                    let via_decode = decoded.query(q).unwrap();
                    assert_eq!(
                        from_bytes.to_bits(),
                        via_decode.to_bits(),
                        "q={q} from_bytes={from_bytes} via_decode={via_decode}"
                    );
                }
            }
        }

        #[test]
        fn v3_truncations_and_flips_never_panic() {
            use qsketch_core::flatwire::SketchView;
            let mut s = DdSketch::unbounded(0.02);
            for i in 1..=2_000u64 {
                if i % 31 == 0 {
                    s.insert(0.0);
                } else if i % 7 == 0 {
                    s.insert(-(i as f64));
                } else {
                    s.insert(i as f64);
                }
            }
            let bytes = s.encode();
            for len in 0..bytes.len() {
                let truncated = &bytes[..len];
                let _ = DdSketch::decode(truncated);
                let _ = DdSketch::quantile_from_bytes(truncated, 0.5);
            }
            for i in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[i] ^= 0xA5;
                let _ = DdSketch::decode(&flipped);
                let _ = DdSketch::quantile_from_bytes(&flipped, 0.5);
            }
        }
    }
}

//! DDSketch (§3.3 of the paper): a deterministic, histogram-based quantile
//! sketch with *relative-error* guarantees.
//!
//! A bucket `B_i` counts the stream elements falling in `(γ^{i-1}, γ^i]`
//! where `γ = (1+α)/(1-α)` and `α` is the maximum relative error. A value
//! `x > 0` is indexed by `i = ⌈log_γ(x)⌉`, and the `q`-quantile estimate for
//! a query landing in bucket `i` is the bucket midpoint `2γ^i/(γ+1)`, which
//! is within relative error `α` of every value the bucket can contain.
//!
//! Two bucket stores are provided, matching the configurations the paper
//! evaluates (§4.2–4.3):
//!
//! * [`store::UnboundedDenseStore`] — a contiguous count array that grows
//!   with the observed range (the paper's main configuration; starts at 64
//!   buckets),
//! * [`store::CollapsingLowestDenseStore`] — a bounded array that collapses
//!   the lowest buckets when full, sacrificing low-quantile accuracy
//!   (the 1024-bucket variant of §4.5.5).
//!
//! # Example
//!
//! ```
//! use qsketch_ddsketch::DdSketch;
//! use qsketch_core::QuantileSketch;
//!
//! let mut dd = DdSketch::unbounded(0.01); // α = 1%, γ = 1.0202
//! for i in 1..=100_000 {
//!     dd.insert(i as f64);
//! }
//! let est = dd.query(0.99).unwrap();
//! let truth = 99_000.0;
//! assert!(((est - truth) / truth).abs() <= 0.01);
//! ```

mod mapping;
mod sketch;
pub mod store;

pub use mapping::{IndexMapping, LinearInterpolatedMapping, LogarithmicMapping};
pub use sketch::{DdSketch, WIRE_MAGIC};

/// The relative-error parameter used in the paper's experiments (§4.2):
/// α = 0.01, hence γ = 1.0202.
pub const PAPER_ALPHA: f64 = 0.01;

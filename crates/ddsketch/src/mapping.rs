//! The logarithmic index mapping at the heart of DDSketch and UDDSketch.

use qsketch_core::fastlog::FastCeilIndexer;

/// Maps positive values to bucket indices via `i = ⌈log_γ(x)⌉` and back to
/// the bucket midpoint `2γ^i/(γ+1)` (§3.3).
///
/// Bucket `i` covers `(γ^{i-1}, γ^i]`; the midpoint estimate is within
/// relative error `α` of any value in the bucket because
/// `γ = (1+α)/(1-α)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogarithmicMapping {
    alpha: f64,
    gamma: f64,
    /// Cached indexer: the exact `1/ln γ` path plus the ln-free
    /// polynomial fast path (bit-identical by construction) used by the
    /// batch insert kernels.
    indexer: FastCeilIndexer,
}

impl LogarithmicMapping {
    /// Build a mapping with maximum relative error `alpha` ∈ (0, 1).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative accuracy must lie in (0,1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            gamma,
            indexer: FastCeilIndexer::new(gamma),
        }
    }

    /// Build a mapping from an explicit `γ` (used when merging sketches that
    /// must agree on γ, and by UDDSketch whose collapses square γ).
    pub fn with_gamma(gamma: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
        // Invert γ = (1+α)/(1-α).
        let alpha = (gamma - 1.0) / (gamma + 1.0);
        Self {
            alpha,
            gamma,
            indexer: FastCeilIndexer::new(gamma),
        }
    }

    /// The maximum relative error α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The bucket-width base γ.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Bucket index of a positive value: `⌈log_γ(x)⌉`, computed through
    /// `ln` — the paper-faithful reference path used by scalar inserts.
    #[inline]
    pub fn index(&self, x: f64) -> i32 {
        debug_assert!(x > 0.0, "logarithmic mapping requires positive values");
        self.indexer.index_exact(x)
    }

    /// Bucket index via the ln-free polynomial `log2` with an exact
    /// fallback inside the proven error band — always returns the same
    /// index as [`index`](Self::index) (see [`qsketch_core::fastlog`]).
    /// The batch insert kernels use this.
    #[inline]
    pub fn index_fast(&self, x: f64) -> i32 {
        debug_assert!(x > 0.0, "logarithmic mapping requires positive values");
        self.indexer.index(x)
    }

    /// Branch-free speculative index plus a "needs exact fallback" flag —
    /// the building block of the blocked batch kernels, which run it
    /// across a whole block (vectorized), then redo only flagged lanes
    /// through [`index`](Self::index). See
    /// [`FastCeilIndexer::index_checked`].
    #[inline(always)]
    pub fn index_checked(&self, x: f64) -> (i32, bool) {
        self.indexer.index_checked(x)
    }

    /// Midpoint estimate `2γ^i/(γ+1)` for bucket `i` (§3.3).
    #[inline]
    pub fn value(&self, index: i32) -> f64 {
        2.0 * self.gamma.powi(index) / (self.gamma + 1.0)
    }

    /// Lower edge `γ^{i-1}` of bucket `i`.
    #[inline]
    pub fn lower_bound(&self, index: i32) -> f64 {
        self.gamma.powi(index - 1)
    }

    /// Upper edge `γ^i` of bucket `i`.
    #[inline]
    pub fn upper_bound(&self, index: i32) -> f64 {
        self.gamma.powi(index)
    }

    /// True if two mappings share γ closely enough to merge bucket-for-bucket.
    pub fn is_mergeable_with(&self, other: &Self) -> bool {
        (self.gamma - other.gamma).abs() < 1e-12 * self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gamma_value() {
        // §4.2: α = 0.01 gives γ = 1.0202.
        let m = LogarithmicMapping::new(0.01);
        assert!((m.gamma() - 1.0202).abs() < 1e-4, "gamma {}", m.gamma());
    }

    #[test]
    fn index_covers_half_open_interval() {
        let m = LogarithmicMapping::new(0.01);
        for i in [-10, -1, 0, 1, 5, 100] {
            let lo = m.lower_bound(i);
            let hi = m.upper_bound(i);
            // Just above the lower edge and at the upper edge map to i.
            assert_eq!(m.index(lo * 1.000000001), i, "just above lower edge of {i}");
            assert_eq!(m.index(hi * 0.999999999), i, "just below upper edge of {i}");
        }
    }

    #[test]
    fn midpoint_within_alpha_of_bucket_contents() {
        // §3.3: both worst cases (value at either bucket edge) err < α.
        for alpha in [0.001, 0.01, 0.05, 0.2] {
            let m = LogarithmicMapping::new(alpha);
            for i in [-50, -1, 0, 1, 7, 200] {
                let est = m.value(i);
                let lo = m.lower_bound(i);
                let hi = m.upper_bound(i);
                let err_lo = (est - lo) / lo;
                let err_hi = (hi - est) / hi;
                assert!(err_lo <= alpha + 1e-12, "alpha {alpha} i {i} lo err {err_lo}");
                assert!(err_hi <= alpha + 1e-12, "alpha {alpha} i {i} hi err {err_hi}");
            }
        }
    }

    #[test]
    fn round_trip_error_bounded() {
        let m = LogarithmicMapping::new(0.01);
        let mut x = 1e-6;
        while x < 1e12 {
            let est = m.value(m.index(x));
            assert!(((est - x) / x).abs() <= 0.01 + 1e-9, "x={x} est={est}");
            x *= 1.7;
        }
    }

    #[test]
    fn paper_range_claim_2048_buckets() {
        // §4.8: 2048 contiguous positive buckets support values up to
        // ~6.13e17 at α = 0.01.
        let m = LogarithmicMapping::new(0.01);
        let top = m.upper_bound(2048);
        assert!(
            (5.0e17..7.0e17).contains(&top),
            "2048-bucket range {top:e}"
        );
    }

    #[test]
    fn paper_range_claim_1024_buckets() {
        // §4.3: 1024 buckets accept values in [1, 7.69e8] at α = 0.01.
        let m = LogarithmicMapping::new(0.01);
        let top = m.upper_bound(1024);
        assert!((7.0e8..9.0e8).contains(&top), "1024-bucket range {top:e}");
    }

    #[test]
    fn with_gamma_round_trips_alpha() {
        let m = LogarithmicMapping::new(0.01);
        let m2 = LogarithmicMapping::with_gamma(m.gamma());
        assert!((m2.alpha() - 0.01).abs() < 1e-12);
        assert!(m.is_mergeable_with(&m2));
    }

    #[test]
    fn different_alphas_not_mergeable() {
        let a = LogarithmicMapping::new(0.01);
        let b = LogarithmicMapping::new(0.02);
        assert!(!a.is_mergeable_with(&b));
    }

    #[test]
    #[should_panic(expected = "relative accuracy")]
    fn rejects_alpha_of_one() {
        LogarithmicMapping::new(1.0);
    }

    #[test]
    fn fast_index_agrees_with_logarithmic_index() {
        // The bit-exactness contract the batch kernels rely on: sweep
        // across magnitudes plus adversarial ulp-walks over bucket edges,
        // where an unguarded approximate log would flip the ceiling.
        for alpha in [0.001, 0.01, 0.05] {
            let m = LogarithmicMapping::new(alpha);
            let mut x = 1e-9;
            while x < 1e9 {
                assert_eq!(m.index_fast(x), m.index(x), "alpha={alpha} x={x}");
                x *= 1.0007;
            }
            for i in [-40, -1, 0, 1, 13, 512] {
                let mut y = m.upper_bound(i) * (1.0 - 32.0 * f64::EPSILON);
                for _ in 0..65 {
                    assert_eq!(m.index_fast(y), m.index(y), "alpha={alpha} edge {i}");
                    y = f64::from_bits(y.to_bits() + 1);
                }
            }
        }
    }

    #[test]
    fn index_is_monotone() {
        let m = LogarithmicMapping::new(0.05);
        let mut prev = i32::MIN;
        let mut x = 1e-3;
        while x < 1e6 {
            let i = m.index(x);
            assert!(i >= prev);
            prev = i;
            x *= 1.31;
        }
    }
}

/// A bucket-index mapping: the exchangeable component of DDSketch-family
/// sketches (the reference implementation ships logarithmic,
/// linearly-interpolated, and cubically-interpolated variants).
pub trait IndexMapping {
    /// Bucket index of a positive value.
    fn index(&self, x: f64) -> i32;
    /// Representative estimate for a bucket, within the accuracy
    /// guarantee of every value the bucket can contain.
    fn value(&self, index: i32) -> f64;
    /// The guaranteed maximum relative error.
    fn alpha(&self) -> f64;
}

impl IndexMapping for LogarithmicMapping {
    fn index(&self, x: f64) -> i32 {
        LogarithmicMapping::index(self, x)
    }
    fn value(&self, index: i32) -> f64 {
        LogarithmicMapping::value(self, index)
    }
    fn alpha(&self) -> f64 {
        LogarithmicMapping::alpha(self)
    }
}

/// Linearly-interpolated logarithm mapping: replaces the `ln` call of the
/// logarithmic mapping with IEEE-754 bit extraction plus a linear
/// interpolation of `log2` between powers of two — the trick the DataDog
/// implementation uses to cut insertion cost.
///
/// The interpolated "log" grows between `1×` and `2×` as fast as the true
/// natural log within each octave, so bucket widths of `ln γ`
/// interpolated-log2 units guarantee every bucket spans a value ratio
/// ≤ γ, preserving the α relative-error bound at the cost of
/// `1/ln 2 ≈ 1.44×` more buckets for the same α (measured in the
/// `ablation_mapping` bench and asserted in tests below).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolatedMapping {
    alpha: f64,
    /// Bucket width in interpolated-log2 units: `ln γ`.
    bucket_width: f64,
    inv_bucket_width: f64,
}

impl LinearInterpolatedMapping {
    /// Build a mapping with maximum relative error `alpha` ∈ (0, 1).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative accuracy must lie in (0,1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let bucket_width = gamma.ln();
        Self {
            alpha,
            bucket_width,
            inv_bucket_width: 1.0 / bucket_width,
        }
    }

    /// `e + (m − 1)` for `x = m · 2^e`, `m ∈ [1, 2)`: piecewise-linear,
    /// strictly increasing, agrees with `log2` at powers of two. Pure bit
    /// arithmetic — no transcendental call.
    #[inline]
    fn interpolated_log2(x: f64) -> f64 {
        debug_assert!(x > 0.0 && x.is_finite());
        let bits = x.to_bits();
        let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
        // Mantissa with the exponent field forced to 0 => m in [1, 2).
        let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
        exponent as f64 + (mantissa - 1.0)
    }

    /// Inverse of [`Self::interpolated_log2`].
    #[inline]
    fn inv_interpolated_log2(y: f64) -> f64 {
        let k = y.floor();
        let frac = y - k;
        (1.0 + frac) * 2f64.powi(k as i32)
    }
}

impl IndexMapping for LinearInterpolatedMapping {
    #[inline]
    fn index(&self, x: f64) -> i32 {
        (Self::interpolated_log2(x) * self.inv_bucket_width).ceil() as i32
    }

    fn value(&self, index: i32) -> f64 {
        // Arithmetic midpoint of the bucket's value edges: relative error
        // (v2−v1)/(v2+v1) ≤ (e^w − 1)/(e^w + 1) = α.
        let lo = Self::inv_interpolated_log2((f64::from(index) - 1.0) * self.bucket_width);
        let hi = Self::inv_interpolated_log2(f64::from(index) * self.bucket_width);
        (lo + hi) / 2.0
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod interp_tests {
    use super::*;

    #[test]
    fn interpolated_log2_exact_at_powers_of_two() {
        for e in [-10i32, -1, 0, 1, 7, 30] {
            let x = 2f64.powi(e);
            assert_eq!(LinearInterpolatedMapping::interpolated_log2(x), f64::from(e));
        }
    }

    #[test]
    fn interpolated_log2_monotone_and_close_to_log2() {
        let mut prev = f64::NEG_INFINITY;
        let mut x = 1e-6;
        while x < 1e9 {
            let a = LinearInterpolatedMapping::interpolated_log2(x);
            assert!(a >= prev);
            prev = a;
            // Interpolation error of log2 between octaves is < 0.0861.
            assert!((a - x.log2()).abs() < 0.0861, "x={x}");
            x *= 1.37;
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut x = 1e-5;
        while x < 1e8 {
            let y = LinearInterpolatedMapping::interpolated_log2(x);
            let back = LinearInterpolatedMapping::inv_interpolated_log2(y);
            assert!((back - x).abs() / x < 1e-12, "x={x} back={back}");
            x *= 1.77;
        }
    }

    #[test]
    fn guarantee_holds_across_magnitudes() {
        for alpha in [0.005, 0.01, 0.05] {
            let m = LinearInterpolatedMapping::new(alpha);
            let mut x = 1e-6;
            while x < 1e9 {
                let est = m.value(m.index(x));
                let rel = ((est - x) / x).abs();
                assert!(rel <= alpha + 1e-12, "alpha={alpha} x={x} rel={rel}");
                x *= 1.083;
            }
        }
    }

    #[test]
    fn costs_more_buckets_than_logarithmic() {
        // The price of the fast index: ~1/ln2 more buckets per decade.
        let log_m = LogarithmicMapping::new(0.01);
        let lin_m = LinearInterpolatedMapping::new(0.01);
        let log_buckets = log_m.index(1e6) - log_m.index(1.0);
        let lin_buckets = IndexMapping::index(&lin_m, 1e6) - IndexMapping::index(&lin_m, 1.0);
        let ratio = f64::from(lin_buckets) / f64::from(log_buckets);
        assert!(
            (1.3..1.6).contains(&ratio),
            "bucket ratio {ratio} (expected ~1/ln2 = 1.44)"
        );
    }

    #[test]
    fn trait_object_usable() {
        let mappings: Vec<Box<dyn IndexMapping>> = vec![
            Box::new(LogarithmicMapping::new(0.01)),
            Box::new(LinearInterpolatedMapping::new(0.01)),
        ];
        for m in &mappings {
            let est = m.value(m.index(123.456));
            assert!(((est - 123.456) / 123.456).abs() <= m.alpha() + 1e-12);
        }
    }
}

//! The bounded dense store that collapses its lowest buckets when full.

use super::BucketStore;

/// A dense store limited to `max_buckets` slots. When an insert would
/// exceed the limit, the lowest buckets are folded into the lowest retained
/// bucket (§3.3: "the buckets holding lower values will be merged, which
/// would violate the accuracy guarantees of the lower quantiles").
///
/// The paper evaluates DDSketch with a 1024-bucket collapsing dense store in
/// §4.5.5 and finds its accuracy within 0.14 % of the unbounded store.
#[derive(Debug, Clone)]
pub struct CollapsingLowestDenseStore {
    counts: Vec<u64>,
    /// Bucket index of `counts[0]`; meaningless while empty.
    offset: i32,
    total: u64,
    max_buckets: usize,
    /// True once a collapse has occurred (low-quantile guarantees void).
    collapsed: bool,
}

impl CollapsingLowestDenseStore {
    /// Create a store bounded to `max_buckets` (≥ 2).
    pub fn new(max_buckets: usize) -> Self {
        assert!(max_buckets >= 2, "need at least two buckets");
        Self {
            counts: Vec::new(),
            offset: 0,
            total: 0,
            max_buckets,
            collapsed: false,
        }
    }

    /// True once any lowest-bucket collapse has happened.
    pub fn has_collapsed(&self) -> bool {
        self.collapsed
    }

    /// The configured bucket budget.
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Count in bucket `index` (after collapses, low indices read 0; their
    /// mass lives in the lowest retained bucket).
    pub fn count_at(&self, index: i32) -> u64 {
        let pos = index as i64 - self.offset as i64;
        if pos < 0 || pos >= self.counts.len() as i64 {
            0
        } else {
            self.counts[pos as usize]
        }
    }

    /// Fold every bucket below `new_min_index` into `new_min_index`.
    fn collapse_below(&mut self, new_min_index: i32) {
        let cut = (new_min_index as i64 - self.offset as i64).clamp(0, self.counts.len() as i64)
            as usize;
        if cut == 0 {
            return;
        }
        let folded: u64 = self.counts[..cut].iter().sum();
        self.counts.drain(..cut);
        if self.counts.is_empty() {
            self.counts.push(0);
        }
        self.counts[0] += folded;
        self.offset = new_min_index;
        if folded > 0 {
            self.collapsed = true;
        }
    }
}

impl BucketStore for CollapsingLowestDenseStore {
    fn add(&mut self, index: i32, count: u64) {
        if count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.offset = index;
            self.counts.push(0);
        }
        let mut pos = index as i64 - self.offset as i64;
        if pos < 0 {
            // Need room below the current range.
            let needed = self.counts.len() + (-pos) as usize;
            if needed > self.max_buckets {
                // The new value itself falls into the collapsed region:
                // fold it into the current lowest bucket.
                self.counts[0] += count;
                self.total += count;
                self.collapsed = true;
                return;
            }
            let extra = (-pos) as usize;
            let mut grown = vec![0u64; extra + self.counts.len()];
            grown[extra..].copy_from_slice(&self.counts);
            self.counts = grown;
            self.offset = index;
            pos = 0;
        } else if pos >= self.counts.len() as i64 {
            let needed = pos as usize + 1;
            if needed > self.max_buckets {
                // Make room at the top by collapsing the bottom.
                let new_min = index - self.max_buckets as i32 + 1;
                self.collapse_below(new_min);
                pos = index as i64 - self.offset as i64;
                self.counts.resize(self.max_buckets, 0);
            } else {
                self.counts.resize(needed, 0);
            }
        }
        self.counts[pos as usize] += count;
        self.total += count;
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn non_empty_buckets(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    fn allocated_buckets(&self) -> usize {
        self.counts.len()
    }

    fn iter_ascending(&self) -> Box<dyn Iterator<Item = (i32, u64)> + '_> {
        let offset = self.offset;
        Box::new(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(move |(i, &c)| (offset + i as i32, c)),
        )
    }

    fn min_index(&self) -> Option<i32> {
        self.counts
            .iter()
            .position(|&c| c > 0)
            .map(|i| self.offset + i as i32)
    }

    fn max_index(&self) -> Option<i32> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| self.offset + i as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_dense_until_full() {
        let mut s = CollapsingLowestDenseStore::new(100);
        for i in 0..50 {
            s.add(i, 1);
        }
        assert!(!s.has_collapsed());
        assert_eq!(s.total(), 50);
        assert_eq!(s.min_index(), Some(0));
        assert_eq!(s.max_index(), Some(49));
    }

    #[test]
    fn collapses_lowest_when_range_exceeds_budget() {
        let mut s = CollapsingLowestDenseStore::new(10);
        for i in 0..20 {
            s.add(i, 1);
        }
        assert!(s.has_collapsed());
        assert_eq!(s.total(), 20, "no mass lost in collapse");
        // Only the top 10 indices remain; the folded mass sits at the new
        // minimum.
        assert_eq!(s.max_index(), Some(19));
        assert_eq!(s.min_index(), Some(10));
        assert_eq!(s.count_at(10), 11); // 0..=10 folded together
    }

    #[test]
    fn low_insert_after_collapse_folds_into_bottom() {
        let mut s = CollapsingLowestDenseStore::new(10);
        for i in 0..20 {
            s.add(i, 1);
        }
        s.add(-5, 7);
        assert_eq!(s.total(), 27);
        assert_eq!(s.count_at(10), 18);
    }

    #[test]
    fn downward_growth_within_budget_is_exact() {
        let mut s = CollapsingLowestDenseStore::new(100);
        s.add(50, 1);
        s.add(20, 2);
        assert!(!s.has_collapsed());
        assert_eq!(s.count_at(20), 2);
        assert_eq!(s.count_at(50), 1);
    }

    #[test]
    fn iter_ascending_after_collapse() {
        let mut s = CollapsingLowestDenseStore::new(4);
        for i in 0..8 {
            s.add(i, 1);
        }
        let items: Vec<(i32, u64)> = s.iter_ascending().collect();
        assert_eq!(items, vec![(4, 5), (5, 1), (6, 1), (7, 1)]);
    }

    #[test]
    fn upper_counts_untouched_by_collapse() {
        // §3.3: collapsing only violates *lower*-quantile accuracy.
        let mut s = CollapsingLowestDenseStore::new(5);
        for i in 0..5 {
            s.add(i, 10);
        }
        s.add(9, 1); // forces collapse of indices < 5
        assert_eq!(s.count_at(9), 1);
        assert_eq!(s.max_index(), Some(9));
        let total_after: u64 = s.iter_ascending().map(|(_, c)| c).sum();
        assert_eq!(total_after, 51);
    }
}

//! The unbounded dense store: a contiguous count array with an index offset.

use super::BucketStore;

/// Initial number of allocated buckets (§4.3: "DDSketch with an unbounded
/// dense store would initially create a count array of 64 buckets").
const INITIAL_CAPACITY: usize = 64;

/// Headroom factor applied when the array has to grow, amortising
/// reallocation over range extensions.
const GROWTH_SLACK: usize = 64;

/// A dense, contiguous array of bucket counts covering
/// `[offset, offset + counts.len())`; grows to fit the observed index
/// range and never collapses.
#[derive(Debug, Clone, Default)]
pub struct UnboundedDenseStore {
    counts: Vec<u64>,
    /// Bucket index of `counts[0]`. Meaningless while `counts` is empty.
    offset: i32,
    total: u64,
}

impl UnboundedDenseStore {
    /// Create an empty store; the first `add` allocates the initial 64
    /// slots (§4.3) centred on the first index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count in bucket `index` (0 when outside the allocated range).
    pub fn count_at(&self, index: i32) -> u64 {
        if self.counts.is_empty() {
            return 0;
        }
        let pos = index as i64 - self.offset as i64;
        if pos < 0 || pos >= self.counts.len() as i64 {
            0
        } else {
            self.counts[pos as usize]
        }
    }

    /// Grow (if needed) so `index` is in range, returning its array slot.
    fn slot_for(&mut self, index: i32) -> usize {
        if self.counts.is_empty() {
            // Centre the initial allocation on the first observed index.
            self.offset = index - (INITIAL_CAPACITY as i32) / 2;
            self.counts = vec![0; INITIAL_CAPACITY];
        }
        let mut pos = index as i64 - self.offset as i64;
        if pos < 0 {
            // Extend downward.
            let extra = (-pos) as usize + GROWTH_SLACK;
            let mut grown = vec![0u64; extra + self.counts.len()];
            grown[extra..].copy_from_slice(&self.counts);
            self.counts = grown;
            self.offset -= extra as i32;
            pos = index as i64 - self.offset as i64;
        } else if pos >= self.counts.len() as i64 {
            // Extend upward.
            let new_len = pos as usize + 1 + GROWTH_SLACK;
            self.counts.resize(new_len, 0);
        }
        pos as usize
    }
}

impl BucketStore for UnboundedDenseStore {
    fn add(&mut self, index: i32, count: u64) {
        if count == 0 {
            return;
        }
        let slot = self.slot_for(index);
        self.counts[slot] += count;
        self.total += count;
    }

    /// Bulk path for the batch insert kernels: one vectorizable min/max
    /// scan over the block's indices, at most two growth steps, then a
    /// tight increment loop with no per-value range branches. The
    /// resulting counts are plain `u64` sums, identical to per-value
    /// `add`s in any order.
    fn add_block(&mut self, indices: &[i32]) {
        if indices.is_empty() {
            return;
        }
        // First touch matches the scalar path (initial allocation is
        // centred on the first observed index), then one growth to the
        // block's full range.
        self.slot_for(indices[0]);
        let mut lo = indices[0];
        let mut hi = indices[0];
        for &i in indices {
            lo = lo.min(i);
            hi = hi.max(i);
        }
        self.slot_for(lo);
        self.slot_for(hi);
        let offset = self.offset as i64;
        for &i in indices {
            self.counts[(i as i64 - offset) as usize] += 1;
        }
        self.total += indices.len() as u64;
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn non_empty_buckets(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    fn allocated_buckets(&self) -> usize {
        self.counts.len()
    }

    fn iter_ascending(&self) -> Box<dyn Iterator<Item = (i32, u64)> + '_> {
        let offset = self.offset;
        Box::new(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(move |(i, &c)| (offset + i as i32, c)),
        )
    }

    fn min_index(&self) -> Option<i32> {
        self.counts
            .iter()
            .position(|&c| c > 0)
            .map(|i| self.offset + i as i32)
    }

    fn max_index(&self) -> Option<i32> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| self.offset + i as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store() {
        let s = UnboundedDenseStore::new();
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.min_index(), None);
        assert_eq!(s.max_index(), None);
        assert_eq!(s.count_at(5), 0);
    }

    #[test]
    fn first_add_allocates_initial_capacity() {
        let mut s = UnboundedDenseStore::new();
        s.add(100, 1);
        assert_eq!(s.allocated_buckets(), 64);
        assert_eq!(s.count_at(100), 1);
        assert_eq!(s.min_index(), Some(100));
        assert_eq!(s.max_index(), Some(100));
    }

    #[test]
    fn grows_downward_and_upward() {
        let mut s = UnboundedDenseStore::new();
        s.add(0, 1);
        s.add(-500, 2);
        s.add(500, 3);
        assert_eq!(s.count_at(0), 1);
        assert_eq!(s.count_at(-500), 2);
        assert_eq!(s.count_at(500), 3);
        assert_eq!(s.total(), 6);
        assert_eq!(s.min_index(), Some(-500));
        assert_eq!(s.max_index(), Some(500));
    }

    #[test]
    fn iter_ascending_order_and_contents() {
        let mut s = UnboundedDenseStore::new();
        for (i, c) in [(3, 5u64), (-2, 1), (7, 2)] {
            s.add(i, c);
        }
        let items: Vec<(i32, u64)> = s.iter_ascending().collect();
        assert_eq!(items, vec![(-2, 1), (3, 5), (7, 2)]);
    }

    #[test]
    fn accumulates_counts() {
        let mut s = UnboundedDenseStore::new();
        s.add(10, 1);
        s.add(10, 4);
        assert_eq!(s.count_at(10), 5);
        assert_eq!(s.non_empty_buckets(), 1);
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut s = UnboundedDenseStore::new();
        s.add(10, 0);
        assert!(s.is_empty());
        assert_eq!(s.allocated_buckets(), 0);
    }
}

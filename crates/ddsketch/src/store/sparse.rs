//! A sparse, hash-backed bucket store.
//!
//! The dense stores pay for the whole index *span*; data whose occupied
//! buckets are few but widely scattered (e.g. mixtures of microseconds and
//! hours in the same latency stream) waste most of those slots. The sparse
//! store pays only for occupied buckets, at the price of hashing on the
//! insert path and sorting on the query path — quantifying exactly the
//! array-vs-map trade-off the paper uses to explain the DDSketch/UDDSketch
//! performance gap (§4.3, §4.4).

use std::collections::HashMap;

use super::BucketStore;

/// Hash-map bucket store: `O(1)` inserts independent of range, occupied
/// buckets only.
#[derive(Debug, Clone, Default)]
pub struct SparseStore {
    counts: HashMap<i32, u64>,
    total: u64,
}

impl SparseStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count in bucket `index`.
    pub fn count_at(&self, index: i32) -> u64 {
        self.counts.get(&index).copied().unwrap_or(0)
    }
}

impl BucketStore for SparseStore {
    fn add(&mut self, index: i32, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(index).or_insert(0) += count;
        self.total += count;
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn non_empty_buckets(&self) -> usize {
        self.counts.len()
    }

    fn allocated_buckets(&self) -> usize {
        self.counts.len()
    }

    fn iter_ascending(&self) -> Box<dyn Iterator<Item = (i32, u64)> + '_> {
        let mut items: Vec<(i32, u64)> = self.counts.iter().map(|(&i, &c)| (i, c)).collect();
        items.sort_unstable_by_key(|&(i, _)| i);
        Box::new(items.into_iter())
    }

    fn min_index(&self) -> Option<i32> {
        self.counts.keys().min().copied()
    }

    fn max_index(&self) -> Option<i32> {
        self.counts.keys().max().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store() {
        let s = SparseStore::new();
        assert!(s.is_empty());
        assert_eq!(s.min_index(), None);
        assert_eq!(s.allocated_buckets(), 0);
    }

    #[test]
    fn scattered_indices_cost_only_occupied_buckets() {
        let mut s = SparseStore::new();
        s.add(-1_000_000, 1);
        s.add(0, 2);
        s.add(1_000_000, 3);
        assert_eq!(s.allocated_buckets(), 3);
        assert_eq!(s.total(), 6);
        assert_eq!(s.min_index(), Some(-1_000_000));
        assert_eq!(s.max_index(), Some(1_000_000));
    }

    #[test]
    fn iter_ascending_sorted() {
        let mut s = SparseStore::new();
        for i in [5, -3, 9, 0] {
            s.add(i, 1);
        }
        let idx: Vec<i32> = s.iter_ascending().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![-3, 0, 5, 9]);
    }

    #[test]
    fn accumulates() {
        let mut s = SparseStore::new();
        s.add(7, 2);
        s.add(7, 3);
        assert_eq!(s.count_at(7), 5);
        assert_eq!(s.non_empty_buckets(), 1);
    }

    #[test]
    fn sketch_over_sparse_store_keeps_guarantee() {
        use crate::sketch::DdSketch;
        use qsketch_core::QuantileSketch;
        let mut s = DdSketch::with_store(0.01, SparseStore::new(), SparseStore::new());
        // Values scattered over 12 decades: dense stores would allocate
        // thousands of slots; sparse pays per occupied bucket.
        let mut values = Vec::new();
        let mut x = 1e-6;
        while x < 1e6 {
            values.push(x);
            s.insert(x);
            x *= 1.09;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.99] {
            let truth = values[((q * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
            let est = s.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
        assert_eq!(s.count(), values.len() as u64);
    }

    #[test]
    fn sparse_beats_dense_on_scattered_data_size() {
        use crate::sketch::DdSketch;
        use qsketch_core::QuantileSketch;
        let mut sparse = DdSketch::with_store(0.01, SparseStore::new(), SparseStore::new());
        let mut dense = DdSketch::unbounded(0.01);
        // Two clusters twelve decades apart.
        for i in 0..1000 {
            let lo = 1e-6 * (1.0 + (i % 10) as f64);
            let hi = 1e6 * (1.0 + (i % 10) as f64);
            sparse.insert(lo);
            sparse.insert(hi);
            dense.insert(lo);
            dense.insert(hi);
        }
        assert!(
            sparse.non_empty_buckets() < 64,
            "sparse occupied {}",
            sparse.non_empty_buckets()
        );
        assert!(
            sparse.memory_footprint() < dense.memory_footprint() / 10,
            "sparse {} vs dense {}",
            sparse.memory_footprint(),
            dense.memory_footprint()
        );
    }
}

//! Bucket stores for DDSketch.
//!
//! The store maps a bucket index (possibly negative — indices are
//! `⌈log_γ(x)⌉`, so values below 1 land at non-positive indices) to a count.
//! The paper's data-structure analysis (§4.3) attributes DDSketch's speed to
//! its contiguous array stores; the trait lets the sketch and the ablation
//! benches swap implementations.

mod collapsing;
mod dense;
mod sparse;

pub use collapsing::CollapsingLowestDenseStore;
pub use dense::UnboundedDenseStore;
pub use sparse::SparseStore;

/// A map from bucket index to count, append-heavy and iteration-friendly.
pub trait BucketStore {
    /// Add `count` to bucket `index`. May collapse buckets in bounded
    /// stores.
    fn add(&mut self, index: i32, count: u64);

    /// Add one occurrence of every index in `indices` — the batch-kernel
    /// bulk entry point. Logically identical to calling
    /// [`add`](Self::add)`(i, 1)` for each index in order (bucket counts
    /// are plain `u64` additions, so the serialized store is
    /// bit-identical); dense stores override it to grow once per block
    /// and increment without per-value range checks.
    fn add_block(&mut self, indices: &[i32]) {
        // Default: coalesce runs of equal consecutive indices into one
        // `add`, preserving first-touch order of distinct indices.
        let mut i = 0;
        while i < indices.len() {
            let cur = indices[i];
            let start = i;
            i += 1;
            while i < indices.len() && indices[i] == cur {
                i += 1;
            }
            self.add(cur, (i - start) as u64);
        }
    }

    /// Total count across all buckets.
    fn total(&self) -> u64;

    /// Number of non-empty buckets.
    fn non_empty_buckets(&self) -> usize;

    /// Number of allocated bucket slots (≥ non-empty count for dense
    /// stores); this is what the Table 3 memory accounting charges.
    fn allocated_buckets(&self) -> usize;

    /// Iterate `(index, count)` over non-empty buckets in ascending index
    /// order.
    fn iter_ascending(&self) -> Box<dyn Iterator<Item = (i32, u64)> + '_>;

    /// Smallest non-empty bucket index, if any.
    fn min_index(&self) -> Option<i32>;

    /// Largest non-empty bucket index, if any.
    fn max_index(&self) -> Option<i32>;

    /// True if no counts are stored.
    fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each table/figure has a dedicated binary (see DESIGN.md's experiment
//! index); this library provides what they share:
//!
//! * [`registry`] — a uniform handle ([`registry::AnySketch`]) over the
//!   five evaluated sketches (plus the §5.2 baselines), constructed with
//!   the paper's §4.2 parameters,
//! * [`spec`] — sketch configuration as a value ([`SketchSpec`]):
//!   parameterised constructors, a parseable/printable textual form
//!   (`--sketch kll:350`), and the bridge to the serialized wire headers,
//! * [`table`] — plain-text table rendering for experiment output,
//! * [`cli`] — the `--quick` / `--full` scale switch shared by all
//!   binaries (quick keeps laptop runtimes; full uses the paper's stream
//!   sizes),
//! * [`timing`] — monotonic timing helpers for the speed experiments
//!   (§4.4), which the paper runs single-threaded and standalone.

pub mod cli;
pub mod experiments;
pub mod registry;
pub mod spec;
pub mod table;
pub mod timing;

pub use registry::{AnySketch, SketchKind};
pub use spec::{ParseSpecError, SketchSpec};

//! Sketch configuration as a value: [`SketchSpec`].
//!
//! [`SketchKind`] names *which* sketch to run;
//! `SketchSpec` additionally carries the parameters — so one type can
//! feed the harness's `build()` path, the CLI (`--sketch kll:350`), and
//! the serialized wire headers (every parameter a spec holds is exactly
//! what the sketch's `encode()` writes after magic + version).
//!
//! The textual form is `name[:param[:param]]`, lowercase, e.g.
//! `kll:350`, `dds:0.01`, `moments:12:compressed`; a bare name uses the
//! paper's §4.2 parameters. [`std::fmt::Display`] emits the same grammar
//! [`std::str::FromStr`] parses, so specs round-trip through strings.

use std::fmt;
use std::str::FromStr;

use qsketch_baselines::{GkSketch, TDigest};
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use qsketch_moments::MomentsSketch;
use qsketch_req::{RankAccuracy, ReqSketch};
use qsketch_uddsketch::UddSketch;

use crate::registry::{AnySketch, SketchKind};

/// A fully-parameterised sketch configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchSpec {
    /// ReqSketch (HRA) with `num_sections` sections.
    Req {
        /// The section-size parameter (the paper's `num_sections`).
        num_sections: usize,
    },
    /// KLL with compactor-size parameter `k`.
    Kll {
        /// Maximum compactor size.
        k: u16,
    },
    /// UDDSketch with initial accuracy `alpha` and a bucket budget.
    Udds {
        /// Initial accuracy α₀ (deteriorates as collapses occur).
        alpha: f64,
        /// Bucket budget triggering uniform collapses.
        max_buckets: usize,
    },
    /// DDSketch (unbounded dense store) with accuracy `alpha`.
    Dds {
        /// Relative-error guarantee α.
        alpha: f64,
    },
    /// Moments sketch with `num_moments` power sums.
    Moments {
        /// Number of moments `k`.
        num_moments: usize,
        /// Whether inserts are arcsinh-compressed (§4.2 prescribes this
        /// for the heavy-tailed Pareto/Power data sets).
        compressed: bool,
    },
    /// Greenwald–Khanna with rank-error bound `epsilon`.
    Gk {
        /// Additive rank-error bound ε.
        epsilon: f64,
    },
    /// t-digest with compression parameter `delta`.
    TDigest {
        /// The compression parameter δ.
        compression: f64,
    },
}

/// Error from parsing a spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError(String);

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad sketch spec: {}", self.0)
    }
}

impl std::error::Error for ParseSpecError {}

impl SketchSpec {
    /// ReqSketch spec.
    pub fn req(num_sections: usize) -> Self {
        SketchSpec::Req { num_sections }
    }

    /// KLL spec.
    pub fn kll(k: u16) -> Self {
        SketchSpec::Kll { k }
    }

    /// UDDSketch spec with the paper's 1024-bucket budget.
    pub fn udds(alpha: f64) -> Self {
        SketchSpec::Udds {
            alpha,
            max_buckets: qsketch_uddsketch::PAPER_MAX_BUCKETS,
        }
    }

    /// DDSketch spec.
    pub fn dds(alpha: f64) -> Self {
        SketchSpec::Dds { alpha }
    }

    /// Moments spec (uncompressed inserts).
    pub fn moments(num_moments: usize) -> Self {
        SketchSpec::Moments {
            num_moments,
            compressed: false,
        }
    }

    /// GK spec.
    pub fn gk(epsilon: f64) -> Self {
        SketchSpec::Gk { epsilon }
    }

    /// t-digest spec.
    pub fn tdigest(compression: f64) -> Self {
        SketchSpec::TDigest { compression }
    }

    /// The §4.2 paper configuration for `kind` (`compress_moments`
    /// selects the arcsinh-transform variant of the Moments sketch).
    pub fn paper(kind: SketchKind, compress_moments: bool) -> Self {
        match kind {
            SketchKind::Req => Self::req(qsketch_req::PAPER_K),
            SketchKind::Kll => Self::kll(qsketch_kll::PAPER_K),
            SketchKind::Udds => SketchSpec::Udds {
                alpha: qsketch_uddsketch::initial_alpha(
                    qsketch_uddsketch::PAPER_ALPHA_K,
                    qsketch_uddsketch::PAPER_NUM_COLLAPSES,
                ),
                max_buckets: qsketch_uddsketch::PAPER_MAX_BUCKETS,
            },
            SketchKind::Dds => Self::dds(qsketch_ddsketch::PAPER_ALPHA),
            SketchKind::Moments => SketchSpec::Moments {
                num_moments: qsketch_moments::PAPER_NUM_MOMENTS,
                compressed: compress_moments,
            },
            SketchKind::Gk => Self::gk(0.01),
            SketchKind::TDigest => Self::tdigest(200.0),
        }
    }

    /// Which kind this spec builds.
    pub fn kind(&self) -> SketchKind {
        match self {
            SketchSpec::Req { .. } => SketchKind::Req,
            SketchSpec::Kll { .. } => SketchKind::Kll,
            SketchSpec::Udds { .. } => SketchKind::Udds,
            SketchSpec::Dds { .. } => SketchKind::Dds,
            SketchSpec::Moments { .. } => SketchKind::Moments,
            SketchSpec::Gk { .. } => SketchKind::Gk,
            SketchSpec::TDigest { .. } => SketchKind::TDigest,
        }
    }

    /// Validate parameter ranges (the same checks the sketch
    /// constructors assert; surfaced as `Err` so the CLI can report
    /// them without panicking).
    pub fn validate(&self) -> Result<(), ParseSpecError> {
        let err = |msg: String| Err(ParseSpecError(msg));
        match *self {
            SketchSpec::Req { num_sections: 0 } => err("req needs num_sections >= 1".into()),
            SketchSpec::Kll { k } if k < 8 => err(format!("kll needs k >= 8, got {k}")),
            SketchSpec::Udds { alpha, max_buckets } => {
                if !(alpha > 0.0 && alpha < 1.0) {
                    err(format!("udds alpha must lie in (0,1), got {alpha}"))
                } else if max_buckets < 2 {
                    err("udds needs at least two buckets".into())
                } else {
                    Ok(())
                }
            }
            SketchSpec::Dds { alpha } if !(alpha > 0.0 && alpha < 1.0) => {
                err(format!("dds alpha must lie in (0,1), got {alpha}"))
            }
            SketchSpec::Moments { num_moments, .. } if !(2..=15).contains(&num_moments) => {
                err(format!("moments needs 2..=15 moments, got {num_moments}"))
            }
            SketchSpec::Gk { epsilon } if !(epsilon > 0.0 && epsilon < 1.0) => {
                err(format!("gk epsilon must lie in (0,1), got {epsilon}"))
            }
            SketchSpec::TDigest { compression } if compression.is_nan() || compression < 10.0 => {
                err(format!("tdigest compression must be >= 10, got {compression}"))
            }
            _ => Ok(()),
        }
    }

    /// Build the configured sketch. `seed` drives the randomised
    /// sketches (KLL, REQ); deterministic sketches ignore it.
    pub fn build(&self, seed: u64) -> AnySketch {
        match *self {
            SketchSpec::Req { num_sections } => AnySketch::Req(ReqSketch::with_seed(
                num_sections,
                RankAccuracy::High,
                seed,
            )),
            SketchSpec::Kll { k } => AnySketch::Kll(KllSketch::with_seed(k, seed)),
            SketchSpec::Udds { alpha, max_buckets } => {
                AnySketch::Udds(UddSketch::new(alpha, max_buckets))
            }
            SketchSpec::Dds { alpha } => AnySketch::Dds(DdSketch::unbounded(alpha)),
            SketchSpec::Moments {
                num_moments,
                compressed,
            } => AnySketch::Moments(if compressed {
                MomentsSketch::with_compression(num_moments)
            } else {
                MomentsSketch::new(num_moments)
            }),
            SketchSpec::Gk { epsilon } => AnySketch::Gk(GkSketch::new(epsilon)),
            SketchSpec::TDigest { compression } => AnySketch::TDigest(TDigest::new(compression)),
        }
    }
}

impl fmt::Display for SketchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchSpec::Req { num_sections } => write!(f, "req:{num_sections}"),
            SketchSpec::Kll { k } => write!(f, "kll:{k}"),
            SketchSpec::Udds { alpha, max_buckets } => {
                write!(f, "udds:{alpha}:{max_buckets}")
            }
            SketchSpec::Dds { alpha } => write!(f, "dds:{alpha}"),
            SketchSpec::Moments {
                num_moments,
                compressed,
            } => {
                if *compressed {
                    write!(f, "moments:{num_moments}:compressed")
                } else {
                    write!(f, "moments:{num_moments}")
                }
            }
            SketchSpec::Gk { epsilon } => write!(f, "gk:{epsilon}"),
            SketchSpec::TDigest { compression } => write!(f, "tdigest:{compression}"),
        }
    }
}

impl FromStr for SketchSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn num<T: FromStr>(part: &str, what: &str) -> Result<T, ParseSpecError> {
            part.parse()
                .map_err(|_| ParseSpecError(format!("bad {what}: {part}")))
        }

        let mut parts = s.trim().split(':');
        let name = parts.next().unwrap_or("").to_ascii_lowercase();
        let args: Vec<&str> = parts.collect();
        let arg = |i: usize| args.get(i).copied();
        if args.len() > 2 {
            return Err(ParseSpecError(format!("too many parameters in {s:?}")));
        }

        let spec = match name.as_str() {
            "req" => Self::req(match arg(0) {
                Some(p) => num(p, "req num_sections")?,
                None => qsketch_req::PAPER_K,
            }),
            "kll" => Self::kll(match arg(0) {
                Some(p) => num(p, "kll k")?,
                None => qsketch_kll::PAPER_K,
            }),
            "udds" => match arg(0) {
                Some(p) => SketchSpec::Udds {
                    alpha: num(p, "udds alpha")?,
                    max_buckets: match arg(1) {
                        Some(b) => num(b, "udds max_buckets")?,
                        None => qsketch_uddsketch::PAPER_MAX_BUCKETS,
                    },
                },
                None => Self::paper(SketchKind::Udds, false),
            },
            "dds" => Self::dds(match arg(0) {
                Some(p) => num(p, "dds alpha")?,
                None => qsketch_ddsketch::PAPER_ALPHA,
            }),
            "moments" => SketchSpec::Moments {
                num_moments: match arg(0) {
                    Some(p) => num(p, "moments count")?,
                    None => qsketch_moments::PAPER_NUM_MOMENTS,
                },
                compressed: match arg(1) {
                    None | Some("raw") => false,
                    Some("compressed") => true,
                    Some(other) => {
                        return Err(ParseSpecError(format!(
                            "moments mode must be raw|compressed, got {other}"
                        )))
                    }
                },
            },
            "gk" => Self::gk(match arg(0) {
                Some(p) => num(p, "gk epsilon")?,
                None => 0.01,
            }),
            "tdigest" | "t-digest" => Self::tdigest(match arg(0) {
                Some(p) => num(p, "tdigest compression")?,
                None => 200.0,
            }),
            other => {
                return Err(ParseSpecError(format!(
                    "unknown sketch {other:?} (expected req|kll|udds|dds|moments|gk|tdigest)"
                )))
            }
        };
        if !matches!(spec, SketchSpec::Udds { .. } | SketchSpec::Moments { .. })
            && args.len() > 1
        {
            return Err(ParseSpecError(format!("too many parameters in {s:?}")));
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::QuantileSketch;

    #[test]
    fn parse_bare_names_use_paper_parameters() {
        for (text, kind) in [
            ("req", SketchKind::Req),
            ("kll", SketchKind::Kll),
            ("udds", SketchKind::Udds),
            ("dds", SketchKind::Dds),
            ("moments", SketchKind::Moments),
            ("gk", SketchKind::Gk),
            ("tdigest", SketchKind::TDigest),
        ] {
            let spec: SketchSpec = text.parse().unwrap();
            assert_eq!(spec.kind(), kind, "{text}");
            assert_eq!(spec, SketchSpec::paper(kind, false), "{text}");
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let specs = [
            SketchSpec::req(40),
            SketchSpec::kll(200),
            SketchSpec::udds(0.002),
            SketchSpec::dds(0.05),
            SketchSpec::moments(10),
            SketchSpec::Moments {
                num_moments: 8,
                compressed: true,
            },
            SketchSpec::gk(0.02),
            SketchSpec::tdigest(100.0),
        ];
        for spec in specs {
            let text = spec.to_string();
            let back: SketchSpec = text.parse().unwrap();
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn parse_with_parameters() {
        assert_eq!("kll:200".parse::<SketchSpec>().unwrap(), SketchSpec::kll(200));
        assert_eq!(
            "dds:0.02".parse::<SketchSpec>().unwrap(),
            SketchSpec::dds(0.02)
        );
        assert_eq!(
            "udds:0.01:512".parse::<SketchSpec>().unwrap(),
            SketchSpec::Udds {
                alpha: 0.01,
                max_buckets: 512
            }
        );
        assert_eq!(
            "moments:8:compressed".parse::<SketchSpec>().unwrap(),
            SketchSpec::Moments {
                num_moments: 8,
                compressed: true
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "bogus",
            "kll:abc",
            "kll:0",
            "dds:1.5",
            "gk:0",
            "tdigest:1",
            "moments:99",
            "moments:8:sideways",
            "kll:200:extra",
            "",
        ] {
            assert!(bad.parse::<SketchSpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn build_produces_working_sketches() {
        for kind in SketchKind::ALL {
            let spec = SketchSpec::paper(kind, false);
            let mut s = spec.build(7);
            for i in 1..=5_000 {
                s.insert(f64::from(i));
            }
            assert_eq!(s.count(), 5_000, "{}", kind.label());
            assert!(s.query(0.5).is_ok());
            assert_eq!(s.kind(), kind);
        }
    }

    #[test]
    fn spec_reconstructed_from_live_sketch() {
        for kind in SketchKind::ALL {
            for compress in [false, true] {
                let spec = SketchSpec::paper(kind, compress);
                let sketch = spec.build(3);
                assert_eq!(sketch.spec(), spec, "{}", kind.label());
            }
        }
    }
}

//! Fig. 6a–d: average relative error per data set, grouped into mid /
//! upper / p99 quantiles, measured in windowed streaming runs (§4.2,
//! §4.5).

use crate::cli::Args;
use crate::experiments::{accuracy_stats, scaled_config};
use crate::table::{fmt_pct, Table};
use qsketch_core::quantiles::QuantileGroup;
use qsketch_datagen::DataSet;
use qsketch_streamsim::NetworkDelay;

/// Run the experiment and render one sub-table per data set (Fig. 6a–6d).
pub fn run(args: &Args) -> String {
    run_with_delay(args, NetworkDelay::None, "Fig. 6: accuracy by data set")
}

/// Shared with §4.6 (same experiment, different delay model).
pub fn run_with_delay(args: &Args, delay: NetworkDelay, title: &str) -> String {
    let cfg = scaled_config(args, delay);
    let runs = args.runs_or(3);
    let sketches = args.sketches();

    let mut out = format!(
        "{title}\n(windows of {} events; {} measured windows/run x {runs} runs; \
         mean relative error)\n\n",
        cfg.events_per_sec * cfg.window_secs,
        cfg.num_windows - 1,
    );

    for dataset in DataSet::ALL {
        out.push_str(&format!("--- {} ---\n", dataset.label()));
        let mut header: Vec<String> = vec!["sketch".into()];
        header.extend(QuantileGroup::ALL.iter().map(|g| g.label().to_string()));
        header.push("p99 ±95%CI".into());
        header.push("late loss".into());
        let mut table = Table::new(header);
        for &kind in &sketches {
            let outcome = accuracy_stats(kind, dataset, &cfg, runs, args.seed);
            let mut row = vec![kind.label().to_string()];
            for group in QuantileGroup::ALL {
                row.push(fmt_pct(outcome.group_mean(group)));
            }
            row.push(fmt_pct(outcome.q_ci(0.99)));
            row.push(format!("{:.2}%", outcome.loss_fraction() * 100.0));
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    out.push_str(
        "Paper (Fig. 6): UDDS best overall (error << 1% threshold); DDS consistent\n\
         ~<=1% everywhere; REQ extremely accurate on upper/p99 (HRA); KLL suffers on\n\
         long-tailed upper quantiles (Pareto p99 worst); Moments fine on synthetic,\n\
         weak on real-world (NYT/Power) data.\n",
    );
    out
}

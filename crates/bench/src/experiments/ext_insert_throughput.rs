//! Extension experiment (beyond the paper): scalar vs. batched insert
//! throughput for the five paper sketches.
//!
//! Fig. 5a measures the paper's metric — per-element insert time through
//! the one-value-at-a-time API. This experiment measures what a streaming
//! system actually does: values arrive in batches (the sharded engine
//! hands its workers [`DEFAULT_BATCH_SIZE`]-value chunks), and every
//! sketch overrides [`QuantileSketch::insert_batch`] with a kernel that
//! exploits that:
//!
//! * **DDS/UDDS** — the blocked ln-free index
//!   ([`qsketch_core::fastlog::FastCeilIndexer::index_checked`])
//!   replaces one `ln` per value with a vectorized polynomial pass, and
//!   bucket updates go through bulk/coalesced store paths.
//! * **KLL/REQ** — chunks sized to the remaining level-0 room are
//!   appended as slices, deferring the compaction check from per-value to
//!   per-chunk.
//! * **Moments** — a 4-wide blocked power-sum accumulation the compiler
//!   can keep in registers.
//!
//! Both paths are timed over the same pre-generated streams (all four
//! paper data sets), best-of-`reps` to suppress scheduler noise, and the
//! batch kernels are bit-identical to scalar inserts (enforced by the
//! `batch_insert_equivalence` property suite) — so any speedup is free.
//!
//! The rendered table reports per-(sketch, data set) throughput; the JSON
//! aggregates per sketch as `sketch -> {scalar_mvps, batch_mvps,
//! speedup}` (total values / total best-time across the four data sets).
//! A `REGRESSION` line is printed if any sketch's batch path falls more
//! than 5 % below its scalar path — `ci/check.sh` greps for it.

use std::time::Instant;

use crate::cli::{Args, Scale};
use crate::registry::SketchKind;
use crate::table::Table;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{DataSet, ValueStream, PAPER_EVENTS_PER_UPDATE};
use qsketch_streamsim::engine::DEFAULT_BATCH_SIZE;

/// Batch size for the chunked path: the engine's shard-worker batch, so
/// the measured speedup is the one the engine actually sees.
const CHUNK: usize = DEFAULT_BATCH_SIZE;

/// Any sketch whose batch path dips below this fraction of its scalar
/// throughput is flagged as a regression.
const REGRESSION_FLOOR: f64 = 0.95;

/// Values per (sketch, data set) stream.
fn stream_len(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 20_000,
        Scale::Quick => 400_000,
        Scale::Full => 4_000_000,
    }
}

/// Timed repetitions per path (best-of; each rep fills a fresh sketch).
fn reps(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 1,
        Scale::Quick => 3,
        Scale::Full => 5,
    }
}

/// One measured (sketch, data set) cell.
struct Cell {
    dataset: &'static str,
    scalar_mvps: f64,
    batch_mvps: f64,
    scalar_best_ns: f64,
    batch_best_ns: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.batch_mvps / self.scalar_mvps
    }
}

/// Per-sketch aggregate over the four data sets.
struct SketchResult {
    sketch: &'static str,
    cells: Vec<Cell>,
    scalar_mvps: f64,
    batch_mvps: f64,
    speedup: f64,
}

/// Run the experiment and render the table (the JSON lives in
/// [`run_with_json`]).
pub fn run(args: &Args) -> String {
    run_with_json(args).0
}

/// Run the experiment; returns `(rendered table, JSON document)`. The
/// binary writes the JSON to `BENCH_insert.json`.
pub fn run_with_json(args: &Args) -> (String, String) {
    let n = stream_len(args.scale);
    let r = reps(args.scale);
    // The batch kernels are what distinguish the five paper sketches;
    // the baselines only have the default (scalar-loop) insert_batch.
    let sketches: Vec<SketchKind> = args
        .sketches()
        .into_iter()
        .filter(|k| SketchKind::PAPER_FIVE.contains(k))
        .collect();

    let mut out = format!(
        "Ext: insert throughput, scalar insert() vs insert_batch() \
         ({n} values per data set,\nbatch chunk = {CHUNK} values \
         (the engine's shard batch), best of {r} runs)\n\n"
    );
    let mut table = Table::new([
        "sketch",
        "dataset",
        "scalar Mv/s",
        "batch Mv/s",
        "speedup",
    ]);

    let mut results: Vec<SketchResult> = Vec::new();
    for &kind in &sketches {
        let mut cells = Vec::new();
        for &ds in &DataSet::ALL {
            let cell = measure(kind, ds, n, r, args.seed);
            table.row(vec![
                kind.label().to_string(),
                cell.dataset.to_string(),
                format!("{:.2}", cell.scalar_mvps),
                format!("{:.2}", cell.batch_mvps),
                format!("{:.2}x", cell.speedup()),
            ]);
            cells.push(cell);
        }
        // Aggregate: total values over total best-time, so slow data
        // sets weigh in proportion to the time they actually take.
        let total_values = (n * cells.len()) as f64;
        let scalar_ns: f64 = cells.iter().map(|c| c.scalar_best_ns).sum();
        let batch_ns: f64 = cells.iter().map(|c| c.batch_best_ns).sum();
        let scalar_mvps = total_values / scalar_ns * 1e3;
        let batch_mvps = total_values / batch_ns * 1e3;
        table.row(vec![
            kind.label().to_string(),
            "ALL".to_string(),
            format!("{scalar_mvps:.2}"),
            format!("{batch_mvps:.2}"),
            format!("{:.2}x", batch_mvps / scalar_mvps),
        ]);
        results.push(SketchResult {
            sketch: kind.label(),
            cells,
            scalar_mvps,
            batch_mvps,
            speedup: batch_mvps / scalar_mvps,
        });
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: scalar is the paper's per-element API (Fig. 5a's metric); batch is\n\
         the chunked path the sharded engine drives. DDS/UDDS gains come from the\n\
         blocked ln-free index + bulk store updates, KLL/REQ from slice appends with\n\
         per-chunk compaction checks, Moments from the blocked power-sum kernel.\n\
         Both paths produce bit-identical sketch state.\n",
    );

    let mut regressed = false;
    for res in &results {
        if res.speedup < REGRESSION_FLOOR {
            regressed = true;
            out.push_str(&format!(
                "REGRESSION: {} batch path is {:.2}x scalar (floor {REGRESSION_FLOOR})\n",
                res.sketch, res.speedup
            ));
        }
    }
    if !regressed {
        out.push_str("\nAll batch kernels at or above the scalar floor.\n");
    }

    (out, render_json(args, n, r, &results))
}

/// Time both insert paths for one (sketch, data set) pair.
fn measure(kind: SketchKind, ds: DataSet, n: usize, reps: usize, seed: u64) -> Cell {
    // Pre-generate once so value generation is outside both timed loops
    // and identical between them.
    let mut gen = ds.generator(seed, PAPER_EVENTS_PER_UPDATE);
    let values: Vec<f64> = (0..n).map(|_| gen.next_value()).collect();

    let mut scalar_best_ns = f64::INFINITY;
    let mut batch_best_ns = f64::INFINITY;
    for _ in 0..reps {
        let mut sketch = kind.build_for(seed, ds);
        let start = Instant::now();
        for &v in &values {
            sketch.insert(v);
        }
        scalar_best_ns = scalar_best_ns.min(start.elapsed().as_nanos() as f64);
        std::hint::black_box(sketch.count());

        let mut sketch = kind.build_for(seed, ds);
        let start = Instant::now();
        for chunk in values.chunks(CHUNK) {
            sketch.insert_batch(chunk);
        }
        batch_best_ns = batch_best_ns.min(start.elapsed().as_nanos() as f64);
        std::hint::black_box(sketch.count());
    }

    Cell {
        dataset: ds.label(),
        scalar_mvps: n as f64 / scalar_best_ns * 1e3,
        batch_mvps: n as f64 / batch_best_ns * 1e3,
        scalar_best_ns,
        batch_best_ns,
    }
}

/// Hand-rolled JSON document (no serde in the offline build). Schema:
/// `{"sketches": {<label>: {"scalar_mvps": .., "batch_mvps": ..,
/// "speedup": .., "datasets": [..]}}}`.
fn render_json(args: &Args, n: usize, reps: usize, results: &[SketchResult]) -> String {
    let scale = match args.scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let mut json = format!(
        "{{\"experiment\":\"ext_insert_throughput\",\"scale\":\"{scale}\",\
         \"values_per_dataset\":{n},\"reps\":{reps},\"chunk\":{CHUNK},\
         \"seed\":{seed},\"sketches\":{{",
        seed = args.seed,
    );
    for (i, res) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\"{}\":{{\"scalar_mvps\":{:.3},\"batch_mvps\":{:.3},\
             \"speedup\":{:.4},\"datasets\":[",
            res.sketch, res.scalar_mvps, res.batch_mvps, res.speedup
        ));
        for (j, c) in res.cells.iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"dataset\":\"{}\",\"scalar_mvps\":{:.3},\
                 \"batch_mvps\":{:.3},\"speedup\":{:.4}}}",
                c.dataset,
                c.scalar_mvps,
                c.batch_mvps,
                c.speedup()
            ));
        }
        json.push_str("]}");
    }
    json.push_str("}}");
    json
}

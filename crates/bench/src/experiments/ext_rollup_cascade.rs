//! Extension experiment (beyond the paper): error growth down the
//! rollup cascade.
//!
//! The paper's Fig. 8 shows UDDSketch's α deteriorating under repeated
//! merge; a hierarchical rollup store is exactly the workload where
//! that bites, because every coarser tier is built by merging the tier
//! below it. This experiment ingests 64 closed windows of the Fig. 8
//! adaptability stream (Binomial(30, 0.4) switching to U(30, 100) —
//! the switch forces UDDSketch collapses) into a four-tier
//! [`RollupStore`] (widths 1/4/16/64 windows, nothing aged out), then
//! measures the mean relative error of every tier's slots against an
//! exact per-range oracle:
//!
//! * **depth 0** (width 1) — sketches as ingested, never merged,
//! * **depth 1–3** (widths 4/16/64) — each built from the tier below
//!   by `merge_tree`, so depth *d* carries *d* cascade levels of merge
//!   degradation.
//!
//! Each probe is a slot-aligned range query, so it decomposes to
//! exactly one stored sketch (asserted) and the per-depth error is the
//! cascade's doing, not the query planner's. All five paper sketches
//! run, plus the stream-fusion UDDSketch variant
//! ([`FusedUddSketch`], arxiv 2101.06758) whose merge re-targets the
//! coarser operand's grid instead of collapsing both — the UDDS rows
//! also report the α the deepest slot ended at, which is where
//! standard and fused merge visibly diverge.
//!
//! The binary writes `BENCH_rollup.json` at the repo root
//! (quick/full scales only); the committed copy is the reference
//! measurement.

use crate::cli::{Args, Scale};
use crate::registry::{AnySketch, SketchKind};
use crate::table::{fmt_pct, Table};
use qsketch_core::codec::SketchSerialize;
use qsketch_core::error::{relative_error, ErrorStats};
use qsketch_core::exact::ExactQuantiles;
use qsketch_core::quantiles::QUERIED;
use qsketch_core::sketch::MergeableSketch;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{paper_adaptability_stream, ValueStream};
use qsketch_streamsim::rollup::{RollupConfig, RollupStore, TierSpec};
use qsketch_uddsketch::FusedUddSketch;

/// Tier widths in windows: each level is a 4-way merge of the one
/// below, giving cascade depths 0–3 over [`WINDOWS`] leaf windows.
pub const TIER_WIDTHS: [u64; 4] = [1, 4, 16, 64];

/// Leaf windows ingested per run (= the widest tier's slot width, so
/// the deepest slot covers the whole stream).
pub const WINDOWS: u64 = 64;

fn window_values(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 512,
        Scale::Quick => 8_192,
        Scale::Full => 65_536,
    }
}

/// One sketch's measurement: per-depth error stats (indexed like
/// [`TIER_WIDTHS`]) and, where the sketch has one, the worst α any
/// deepest-tier slot ended at.
struct CascadeRow {
    label: &'static str,
    per_depth: Vec<ErrorStats>,
    alpha_deepest: Option<f64>,
}

impl CascadeRow {
    fn new(label: &'static str) -> Self {
        Self {
            label,
            per_depth: vec![ErrorStats::new(); TIER_WIDTHS.len()],
            alpha_deepest: None,
        }
    }
}

/// Ingest `values` as [`WINDOWS`] windows of `wv` values into a fresh
/// four-tier store and record every tier's slot errors into `row`.
fn run_cascade<S, F, A>(factory: F, alpha_of: A, values: &[f64], wv: u64, row: &mut CascadeRow)
where
    S: QuantileSketch + MergeableSketch + SketchSerialize + Clone,
    F: Fn() -> S,
    A: Fn(&S) -> Option<f64>,
{
    let tiers = TIER_WIDTHS
        .iter()
        .map(|&width| TierSpec {
            width,
            keep: WINDOWS as usize,
        })
        .collect();
    let mut store = RollupStore::new(RollupConfig::new(tiers)).expect("valid tier ladder");
    for w in 0..WINDOWS {
        let mut sketch = factory();
        let lo = (w * wv) as usize;
        sketch.insert_batch(&values[lo..lo + wv as usize]);
        store.ingest_window(w, sketch).expect("in-order ingest");
    }

    for (depth, &width) in TIER_WIDTHS.iter().enumerate() {
        for k in 0..WINDOWS / width {
            let (t0, t1) = (k * width, (k + 1) * width);
            let answer = store.range_query(t0, t1).expect("range query");
            assert_eq!(
                answer.merged_slots, 1,
                "slot-aligned [{t0}, {t1}) should decompose to one stored sketch"
            );
            let sketch = answer.sketch.expect("fully covered range");
            let lo = (t0 * wv) as usize;
            let hi = (t1 * wv) as usize;
            let mut oracle = ExactQuantiles::with_capacity(hi - lo);
            oracle.extend(values[lo..hi].iter().copied());
            for &q in QUERIED.iter() {
                let truth = oracle.query(q).expect("non-empty oracle");
                if let Ok(est) = sketch.query(q) {
                    row.per_depth[depth].record(relative_error(truth, est));
                }
            }
            if depth + 1 == TIER_WIDTHS.len() {
                if let Some(alpha) = alpha_of(&sketch) {
                    row.alpha_deepest =
                        Some(row.alpha_deepest.map_or(alpha, |a: f64| a.max(alpha)));
                }
            }
        }
    }
}

/// Run the experiment and render the report (the JSON lives in
/// [`run_with_json`]).
pub fn run(args: &Args) -> String {
    run_with_json(args).0
}

/// Run the experiment; returns `(rendered report, JSON document)`. The
/// binary writes the JSON to `BENCH_rollup.json` at the repo root.
pub fn run_with_json(args: &Args) -> (String, String) {
    let wv = window_values(args.scale);
    let runs = args.runs_or(3);
    let half = WINDOWS * wv / 2;

    let mut rows: Vec<CascadeRow> = SketchKind::PAPER_FIVE
        .iter()
        .map(|k| CascadeRow::new(k.label()))
        .collect();
    rows.push(CascadeRow::new("UDDS-fused"));

    for run in 0..runs {
        let run_seed = args.seed.wrapping_add(run as u64 * 7919);
        let mut stream = paper_adaptability_stream(run_seed, half);
        let values = stream.take_vec((WINDOWS * wv) as usize);
        for (si, &kind) in SketchKind::PAPER_FIVE.iter().enumerate() {
            run_cascade(
                || kind.build(run_seed, false),
                |s: &AnySketch| match s {
                    AnySketch::Udds(u) => Some(u.current_alpha()),
                    _ => None,
                },
                &values,
                wv,
                &mut rows[si],
            );
        }
        let fused_index = rows.len() - 1;
        run_cascade(
            FusedUddSketch::paper_configuration,
            |s: &FusedUddSketch| Some(s.current_alpha()),
            &values,
            wv,
            &mut rows[fused_index],
        );
    }

    let mut out = format!(
        "Ext: rollup cascade — {WINDOWS} windows × {wv} values, tiers {TIER_WIDTHS:?} \
         (windows), adaptability stream, {runs} run(s)\n\n"
    );
    let mut header: Vec<String> = vec!["sketch".into()];
    header.extend(
        TIER_WIDTHS
            .iter()
            .enumerate()
            .map(|(d, w)| format!("depth {d} (w={w})")),
    );
    header.push("α at depth 3".into());
    let mut table = Table::new(header);
    for row in &rows {
        let mut cells = vec![row.label.to_string()];
        for stats in &row.per_depth {
            cells.push(if stats.is_empty() {
                "n/a".into()
            } else {
                fmt_pct(stats.mean())
            });
        }
        cells.push(match row.alpha_deepest {
            Some(a) => format!("{a:.5}"),
            None => "—".into(),
        });
        table.row(cells);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: depth d is a slot built by d cascade levels of merge_tree; every\n\
         probe is slot-aligned so it decomposes to exactly one stored sketch. KLL/REQ\n\
         merge losslessly-in-guarantee down the cascade, while both UDDSketch merge\n\
         modes coarsen their grid (grow α) as merged slots overflow the bucket\n\
         budget. The two modes trade differently: standard merge must align operand\n\
         grids by doubling (power-of-two exponents, perfectly nesting collapses),\n\
         where the fused rule adopts the coarser operand's grid as-is and rescales\n\
         by the smallest sufficient factor — cheaper when cascade inputs have\n\
         already diverged, but its proportional bucket splits can occupy more\n\
         buckets than nested doubling when (as here) every child shares one γ₀.\n\
         The α column is the measurement, not the slogan.\n",
    );

    let scale = match args.scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let widths: Vec<String> = TIER_WIDTHS.iter().map(|w| w.to_string()).collect();
    let mut json = format!(
        "{{\"experiment\":\"ext_rollup_cascade\",\"scale\":\"{scale}\",\
         \"windows\":{WINDOWS},\"window_values\":{wv},\"runs\":{runs},\
         \"tier_widths\":[{}],\"rows\":[",
        widths.join(",")
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let depths: Vec<String> = row
            .per_depth
            .iter()
            .zip(TIER_WIDTHS.iter())
            .map(|(stats, w)| {
                format!(
                    "{{\"width\":{w},\"mean_rel_err\":{:.6}}}",
                    if stats.is_empty() { f64::NAN } else { stats.mean() }
                )
            })
            .collect();
        json.push_str(&format!(
            "{{\"sketch\":\"{}\",\"depths\":[{}],\"alpha_deepest\":{}}}",
            row.label,
            depths.join(","),
            match row.alpha_deepest {
                Some(a) => format!("{a:.6}"),
                None => "null".into(),
            }
        ));
    }
    json.push_str("]}");
    (out, json)
}

//! Extension experiment (beyond the paper): the space/accuracy frontier.
//!
//! §6 notes that the sampling sketches' "sample size can be increased to
//! increase accuracy"; this experiment makes that trade-off concrete for
//! *every* sketch by sweeping each one's size parameter on the same
//! Pareto stream and reporting memory footprint against p50/p99 relative
//! error — the plot a practitioner needs to pick a configuration.

use crate::cli::{Args, Scale};
use crate::table::{fmt_kb, fmt_pct, Table};
use qsketch_core::error::relative_error;
use qsketch_core::exact::ExactQuantiles;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{DataSet, ValueStream};
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use qsketch_moments::MomentsSketch;
use qsketch_req::{RankAccuracy, ReqSketch};
use qsketch_uddsketch::UddSketch;

fn stream_len(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 20_000,
        Scale::Quick => 400_000,
        Scale::Full => 4_000_000,
    }
}

/// Run the sweep and render one frontier row per configuration.
pub fn run(args: &Args) -> String {
    let n = stream_len(args.scale);
    let mut gen = DataSet::Pareto.generator(args.seed, 50);
    let values = gen.take_vec(n);
    let mut oracle = ExactQuantiles::with_capacity(n);
    oracle.extend(values.iter().copied());
    let truth_p50 = oracle.query(0.5).expect("non-empty");
    let truth_p99 = oracle.query(0.99).expect("non-empty");

    let mut out = format!(
        "Extension: space/accuracy frontier on a {n}-element Pareto stream\n\n"
    );
    let mut table = Table::new(["configuration", "memory (KB)", "p50 err", "p99 err"]);

    let runs = args.runs_or(3) as u64;
    // Each configuration is averaged over `runs` seeds: the randomized
    // sketches' tail error varies run to run on a heavy-tailed stream.
    macro_rules! row {
        ($label:expr, $make:expr) => {{
            let mut p50_sum = 0.0;
            let mut p99_sum = 0.0;
            let mut mem = 0usize;
            for r in 0..runs {
                let seed = args.seed.wrapping_add(r * 7919);
                let mut s = $make(seed);
                for &v in &values {
                    s.insert(v);
                }
                p50_sum += s
                    .query(0.5)
                    .map(|e| relative_error(truth_p50, e))
                    .unwrap_or(f64::NAN);
                p99_sum += s
                    .query(0.99)
                    .map(|e| relative_error(truth_p99, e))
                    .unwrap_or(f64::NAN);
                mem = s.memory_footprint();
            }
            table.row([
                $label.to_string(),
                fmt_kb(mem),
                fmt_pct(p50_sum / runs as f64),
                fmt_pct(p99_sum / runs as f64),
            ]);
        }};
    }

    for k in [100u16, 350, 800, 1600] {
        row!(format!("KLL k={k}"), |seed| KllSketch::with_seed(k, seed));
    }
    for k in [10usize, 30, 60] {
        row!(format!("REQ sections={k}"), |seed| ReqSketch::with_seed(
            k,
            RankAccuracy::High,
            seed
        ));
    }
    for alpha in [0.05, 0.01, 0.002] {
        row!(format!("DDS alpha={alpha}"), |_seed| DdSketch::unbounded(
            alpha
        ));
    }
    for buckets in [256usize, 1024, 4096] {
        row!(format!("UDDS buckets={buckets}"), |_seed| {
            UddSketch::with_target(0.01, 12, buckets)
        });
    }
    for m in [6usize, 12, 15] {
        row!(format!("Moments k={m}"), |_seed| {
            MomentsSketch::with_compression(m)
        });
    }

    out.push_str(&table.render());
    out.push_str(
        "\nReading: every family buys accuracy with space, but on different curves —\n\
         the histogram sketches' accuracy is set by alpha (memory follows the data\n\
         range), while the sampling sketches' error falls roughly with 1/k. Moments\n\
         is the outlier: constant tiny space, accuracy capped by the moment count\n\
         and the data's fit to a max-entropy density (§6).\n",
    );
    out
}

//! Extension experiment (beyond the paper): cost and latency of the
//! lock-free concurrent ingest substrate.
//!
//! The paper's throughput numbers (Fig. 5a) are single-threaded; the
//! concurrent engine moves batches from producers to shard workers
//! through a CAS-claimed [`HandoffRing`] and answers queries from
//! epoch-published snapshots ([`qsketch_streamsim::SnapshotHandle`])
//! instead of stopping
//! the world. Three measurements quantify that design:
//!
//! * **handoff cost** — producer-side ns/value pushing batches through
//!   a `Mutex<VecDeque>` baseline vs. the lock-free ring, same batch
//!   size, same consumer work;
//! * **query-under-ingest** — latency of `query()` issued continuously
//!   *while* a producer streams values into a keyed engine (the
//!   wait-free read path: no lock shared with ingest), plus how many
//!   epochs the queries observed advancing mid-stream;
//! * **producer scaling** — one vs. two producer threads into the same
//!   engine (the MPSC claim path).
//!
//! **Single-CPU caveat:** CI containers for this repo pin one core.
//! Producers, shard workers and the query thread then timeslice, so
//! absolute throughput and one-vs-two-producer "scaling" measure
//! scheduling overhead, not parallelism; the committed
//! `BENCH_concurrent.json` numbers are regression anchors for the
//! *relative* handoff costs, which stay meaningful on one core.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use crate::cli::{Args, Scale};
use crate::table::Table;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_kll::KllSketch;
use qsketch_streamsim::{EngineBuilder, HandoffRing, PopState};

/// Batch size for the handoff microbenchmark (matches the engines'
/// default routing batch).
const BATCH: usize = 128;

/// Ring / queue capacity in batches.
const CAPACITY: usize = 64;

/// Epoch interval for the query-under-ingest run: small enough that a
/// mid-stream query watches epochs advance.
const EPOCH_INTERVAL: u64 = 2_048;

fn stream_len(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 40_000,
        Scale::Quick => 1_000_000,
        Scale::Full => 4_000_000,
    }
}

struct Results {
    n: usize,
    mutex_ns_per_value: f64,
    ring_ns_per_value: f64,
    query_samples: usize,
    query_p50_us: f64,
    query_p99_us: f64,
    epochs_observed: u64,
    one_producer_meps: f64,
    two_producer_meps: f64,
}

/// Run the experiment and render the table (the JSON lives in
/// [`run_with_json`]).
pub fn run(args: &Args) -> String {
    run_with_json(args).0
}

/// Run the experiment; returns `(rendered table, JSON document)`. The
/// binary writes the JSON to `BENCH_concurrent.json` at the repo root.
pub fn run_with_json(args: &Args) -> (String, String) {
    let n = stream_len(args.scale);
    let mut gen = FixedPareto::paper_speed_workload(args.seed);
    let values: Vec<f64> = (0..n).map(|_| gen.next_value()).collect();

    let mutex_ns = measure_mutex_handoff(&values);
    let ring_ns = measure_ring_handoff(&values);
    let (query_samples, query_p50_us, query_p99_us, epochs_observed) =
        measure_query_under_ingest(&values);
    let one_meps = measure_producers(&values, 1);
    let two_meps = measure_producers(&values, 2);

    let results = Results {
        n,
        mutex_ns_per_value: mutex_ns,
        ring_ns_per_value: ring_ns,
        query_samples,
        query_p50_us,
        query_p99_us,
        epochs_observed,
        one_producer_meps: one_meps,
        two_producer_meps: two_meps,
    };

    let mut out = format!(
        "Ext: concurrent ingest — lock-free handoff, wait-free queries \
         (Pareto alpha=1 stream,\n{n} events/run, batch={BATCH}, \
         ring capacity={CAPACITY} batches, epoch interval={EPOCH_INTERVAL})\n\n",
    );
    let mut table = Table::new(["measurement", "value"]);
    table.row(vec![
        "mutex queue handoff (ns/value)".into(),
        format!("{mutex_ns:.1}"),
    ]);
    table.row(vec![
        "lock-free ring handoff (ns/value)".into(),
        format!("{ring_ns:.1}"),
    ]);
    table.row(vec![
        "ring vs mutex".into(),
        format!("{:.2}x", mutex_ns / ring_ns.max(f64::MIN_POSITIVE)),
    ]);
    table.row(vec![
        "query-under-ingest p50 (µs)".into(),
        format!("{query_p50_us:.1}"),
    ]);
    table.row(vec![
        "query-under-ingest p99 (µs)".into(),
        format!("{query_p99_us:.1}"),
    ]);
    table.row(vec![
        "epochs observed mid-stream".into(),
        format!("{epochs_observed}"),
    ]);
    table.row(vec![
        "1-producer ingest (Meps)".into(),
        format!("{one_meps:.2}"),
    ]);
    table.row(vec![
        "2-producer ingest (Meps)".into(),
        format!("{two_meps:.2}"),
    ]);
    out.push_str(&table.render());
    out.push_str(
        "\nReading: handoff ns/value is the producer-side cost of moving one value\n\
         into a shard worker's queue — the mutex row serializes producers and\n\
         consumer on one lock, the ring row is the engine's CAS-claimed slot path.\n\
         Query latency is sampled while ingest runs: queries read the last\n\
         published epoch snapshot and never take a lock the ingest path holds,\n\
         so the p99 stays flat no matter how hot ingest is.\n\
         CAVEAT: on a single-CPU container (this repo's CI) all threads\n\
         timeslice one core — absolute Meps and the 1→2 producer delta measure\n\
         scheduling, not parallelism. Treat the committed numbers as regression\n\
         anchors for the relative handoff costs only.\n",
    );

    (out, render_json(args, &results))
}

/// Baseline: bounded `Mutex<VecDeque>` + condvar handoff, one consumer
/// inserting into a KLL shard sketch. Returns producer-side ns/value.
fn measure_mutex_handoff(values: &[f64]) -> f64 {
    struct Chan {
        queue: Mutex<VecDeque<Vec<f64>>>,
        cv: Condvar,
        closed: AtomicBool,
    }
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::with_capacity(CAPACITY)),
        cv: Condvar::new(),
        closed: AtomicBool::new(false),
    });

    let consumer = {
        let chan = Arc::clone(&chan);
        thread::spawn(move || {
            let mut sketch = KllSketch::with_seed(200, 7);
            loop {
                let batch = {
                    let mut q = chan.queue.lock().unwrap();
                    loop {
                        if let Some(b) = q.pop_front() {
                            chan.cv.notify_all();
                            break Some(b);
                        }
                        if chan.closed.load(Ordering::Acquire) {
                            break None;
                        }
                        let (guard, _) =
                            chan.cv.wait_timeout(q, std::time::Duration::from_millis(1)).unwrap();
                        q = guard;
                    }
                };
                match batch {
                    Some(b) => sketch.insert_batch(&b),
                    None => return sketch.count(),
                }
            }
        })
    };

    let start = Instant::now();
    for batch in values.chunks(BATCH) {
        let mut q = chan.queue.lock().unwrap();
        while q.len() >= CAPACITY {
            let (guard, _) = chan
                .cv
                .wait_timeout(q, std::time::Duration::from_millis(1))
                .unwrap();
            q = guard;
        }
        q.push_back(batch.to_vec());
        chan.cv.notify_all();
    }
    let produced_ns = start.elapsed().as_nanos() as f64;
    chan.closed.store(true, Ordering::Release);
    chan.cv.notify_all();
    assert_eq!(consumer.join().unwrap(), values.len() as u64);
    produced_ns / values.len() as f64
}

/// The engine's path: lock-free [`HandoffRing`], one consumer inserting
/// into the same KLL shard sketch. Returns producer-side ns/value.
fn measure_ring_handoff(values: &[f64]) -> f64 {
    let ring = Arc::new(HandoffRing::<Vec<f64>>::new(CAPACITY));
    let consumer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let mut sketch = KllSketch::with_seed(200, 7);
            loop {
                match ring.pop_wait() {
                    PopState::Item(batch, _) => {
                        let len = batch.len() as u64;
                        sketch.insert_batch(&batch);
                        ring.mark_done(len);
                    }
                    PopState::Idle => {}
                    PopState::Closed => return sketch.count(),
                }
            }
        })
    };

    let start = Instant::now();
    for batch in values.chunks(BATCH) {
        let report = ring.push(batch.to_vec(), batch.len() as u64);
        assert!(!report.dropped);
    }
    let produced_ns = start.elapsed().as_nanos() as f64;
    ring.close();
    assert_eq!(consumer.join().unwrap(), values.len() as u64);
    produced_ns / values.len() as f64
}

/// Continuous `query()` latency while one producer streams into a keyed
/// engine. Returns (samples, p50 µs, p99 µs, distinct epochs observed).
fn measure_query_under_ingest(values: &[f64]) -> (usize, f64, f64, u64) {
    let engine = Arc::new(
        EngineBuilder::keyed(2)
            .epoch_interval(EPOCH_INTERVAL)
            .spawn(|| KllSketch::with_seed(200, 13))
            .unwrap(),
    );
    // Seed the key so the very first query already resolves, then
    // publish it before the race starts.
    engine.ingest("bench", "stream", &values[..BATCH.min(values.len())]).unwrap();
    engine.drain();

    let producer = {
        let engine = Arc::clone(&engine);
        let body: Vec<f64> = values[BATCH.min(values.len())..].to_vec();
        thread::spawn(move || {
            for chunk in body.chunks(BATCH) {
                engine.ingest("bench", "stream", chunk).unwrap();
            }
        })
    };

    let mut lat_ns: Vec<u64> = Vec::with_capacity(4_096);
    let mut epochs_seen = std::collections::BTreeSet::new();
    while !producer.is_finished() {
        let start = Instant::now();
        let handle = engine.query("bench", "stream").expect("seeded key");
        let q = handle.quantile(0.5).expect("published snapshot answers");
        lat_ns.push(start.elapsed().as_nanos() as u64);
        assert!(q.is_finite());
        epochs_seen.insert(handle.max_epoch());
        // Don't starve the single-CPU producer: back off between probes.
        thread::yield_now();
    }
    producer.join().unwrap();
    engine.drain();

    lat_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat_ns.is_empty() {
            return 0.0;
        }
        let idx = ((lat_ns.len() as f64 * p).ceil() as usize).clamp(1, lat_ns.len());
        lat_ns[idx - 1] as f64 / 1e3
    };
    (lat_ns.len(), pct(0.50), pct(0.99), epochs_seen.len() as u64)
}

/// End-to-end ingest throughput with `producers` threads splitting the
/// stream into per-producer tenants (distinct keys: the MPSC claim path
/// is shared, the sketches are not).
fn measure_producers(values: &[f64], producers: usize) -> f64 {
    let engine = Arc::new(
        EngineBuilder::keyed(2)
            .spawn(|| KllSketch::with_seed(200, 29))
            .unwrap(),
    );
    let share = values.len() / producers;
    let start = Instant::now();
    let threads: Vec<_> = (0..producers)
        .map(|p| {
            let engine = Arc::clone(&engine);
            let slice: Vec<f64> = values[p * share..(p + 1) * share].to_vec();
            thread::spawn(move || {
                let tenant = format!("t{p}");
                for chunk in slice.chunks(BATCH) {
                    engine.ingest(&tenant, "stream", chunk).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    engine.drain();
    let elapsed = start.elapsed().as_secs_f64();
    let total = engine.events_ingested();
    assert_eq!(total, (share * producers) as u64);
    total as f64 / elapsed / 1e6
}

fn render_json(args: &Args, r: &Results) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"ext_concurrent_ingest\",\"scale\":\"{scale}\",",
            "\"seed\":{seed},\"values\":{n},\"batch\":{batch},",
            "\"ring_capacity\":{cap},\"epoch_interval\":{epoch},",
            "\"caveat\":\"single-CPU container: threads timeslice one core, so ",
            "absolute throughput and producer scaling measure scheduling, not ",
            "parallelism; relative handoff costs remain meaningful\",",
            "\"handoff\":{{\"mutex_ns_per_value\":{mutex:.2},",
            "\"ring_ns_per_value\":{ring:.2},\"ring_vs_mutex\":{ratio:.4}}},",
            "\"query_under_ingest\":{{\"samples\":{samples},",
            "\"p50_us\":{p50:.2},\"p99_us\":{p99:.2},",
            "\"epochs_observed\":{epochs}}},",
            "\"producers\":{{\"one_meps\":{one:.3},\"two_meps\":{two:.3}}}}}\n",
        ),
        scale = match args.scale {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        seed = args.seed,
        n = r.n,
        batch = BATCH,
        cap = CAPACITY,
        epoch = EPOCH_INTERVAL,
        mutex = r.mutex_ns_per_value,
        ring = r.ring_ns_per_value,
        ratio = r.mutex_ns_per_value / r.ring_ns_per_value.max(f64::MIN_POSITIVE),
        samples = r.query_samples,
        p50 = r.query_p50_us,
        p99 = r.query_p99_us,
        epochs = r.epochs_observed,
        one = r.one_producer_meps,
        two = r.two_producer_meps,
    )
}

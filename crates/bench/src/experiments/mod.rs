//! One module per table/figure of the paper. Every module exposes
//! `run(&Args) -> String`, and the `bin/` wrappers just print that —
//! which also lets the integration tests execute the real experiment code
//! at reduced scale.

pub mod ext_checkpoint;
pub mod ext_concurrent_ingest;
pub mod ext_insert_throughput;
pub mod ext_parallel_scaling;
pub mod ext_rollup_cascade;
pub mod ext_server_load;
pub mod ext_space_accuracy;
pub mod ext_watermark_lag;
pub mod fig4_datasets;
pub mod fig5a_insertion;
pub mod fig5b_query;
pub mod fig5c_merge;
pub mod fig6_accuracy;
pub mod fig7_kurtosis;
pub mod fig8_adaptability;
pub mod metrics_overhead;
pub mod sec46_late_data;
pub mod sec47_window_size;
pub mod table3_memory;
pub mod table4_summary;

use crate::cli::{Args, Scale};
use qsketch_core::error::ErrorStats;
use qsketch_core::metrics::MetricsRegistry;
use qsketch_core::quantiles::QuantileGroup;
use qsketch_datagen::DataSet;
use qsketch_streamsim::{AccuracyConfig, NetworkDelay};

/// Shared accuracy-experiment driver: run `runs` independent seeded runs
/// of `cfg` for one sketch kind on one data set and fold all per-window
/// errors into per-quantile [`ErrorStats`].
pub(crate) fn accuracy_stats(
    kind: crate::SketchKind,
    dataset: DataSet,
    cfg: &AccuracyConfig,
    runs: usize,
    base_seed: u64,
) -> AccuracyOutcome {
    accuracy_stats_impl(kind, dataset, cfg, runs, base_seed, None)
}

/// [`accuracy_stats`], but every run records pipeline and per-sketch-op
/// metrics into `registry` (the `--metrics` path). Counters accumulate
/// across all runs sharing the registry.
pub(crate) fn accuracy_stats_instrumented(
    kind: crate::SketchKind,
    dataset: DataSet,
    cfg: &AccuracyConfig,
    runs: usize,
    base_seed: u64,
    registry: &MetricsRegistry,
) -> AccuracyOutcome {
    accuracy_stats_impl(kind, dataset, cfg, runs, base_seed, Some(registry))
}

fn accuracy_stats_impl(
    kind: crate::SketchKind,
    dataset: DataSet,
    cfg: &AccuracyConfig,
    runs: usize,
    base_seed: u64,
    registry: Option<&MetricsRegistry>,
) -> AccuracyOutcome {
    let mut per_q: Vec<(f64, ErrorStats)> = cfg
        .quantiles
        .iter()
        .map(|&q| (q, ErrorStats::new()))
        .collect();
    let mut dropped = 0u64;
    let mut total = 0u64;
    let mut failed = 0u64;
    for run in 0..runs {
        let seed = base_seed
            .wrapping_add(run as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (kind.label().len() as u64);
        let values = dataset.generator(seed, qsketch_datagen::PAPER_EVENTS_PER_UPDATE);
        let factory = || kind.build_for(seed, dataset);
        let summary = match registry {
            Some(r) => qsketch_streamsim::harness::run_accuracy_instrumented(
                factory, values, cfg, seed, r,
            ),
            None => qsketch_streamsim::harness::run_accuracy(factory, values, cfg, seed),
        };
        for w in &summary.windows {
            for &(q, err) in &w.errors {
                if let Some((_, stats)) = per_q.iter_mut().find(|(pq, _)| *pq == q) {
                    stats.record(err);
                }
            }
        }
        dropped += summary.dropped_late;
        total += summary.total_events;
        failed += summary.failed_queries;
    }
    AccuracyOutcome {
        per_q,
        dropped,
        total,
        failed,
    }
}

/// Folded accuracy result for one (sketch, data set) cell.
pub(crate) struct AccuracyOutcome {
    pub per_q: Vec<(f64, ErrorStats)>,
    pub dropped: u64,
    pub total: u64,
    #[allow(dead_code)]
    pub failed: u64,
}

impl AccuracyOutcome {
    /// Mean relative error over a reporting group (mid / upper / p99).
    pub fn group_mean(&self, group: QuantileGroup) -> f64 {
        let mut folded = ErrorStats::new();
        for (q, stats) in &self.per_q {
            if group.members().contains(q) {
                folded.absorb(stats);
            }
        }
        if folded.is_empty() {
            f64::NAN
        } else {
            folded.mean()
        }
    }

    /// Mean relative error of one specific quantile.
    pub fn q_mean(&self, q: f64) -> f64 {
        self.per_q
            .iter()
            .find(|(pq, _)| *pq == q)
            .map(|(_, s)| if s.is_empty() { f64::NAN } else { s.mean() })
            .unwrap_or(f64::NAN)
    }

    /// 95 % CI half-width of one quantile's error.
    pub fn q_ci(&self, q: f64) -> f64 {
        self.per_q
            .iter()
            .find(|(pq, _)| *pq == q)
            .map(|(_, s)| s.ci95_half_width())
            .unwrap_or(f64::NAN)
    }

    /// Late-loss fraction across all runs.
    pub fn loss_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.dropped as f64 / self.total as f64
        }
    }
}

/// Fill `sketch` with `n` values from `gen` through the batched insert
/// path, buffering engine-sized chunks — the same shape the sharded
/// engine's workers see, and bit-identical to `n` scalar inserts (the
/// `batch_insert_equivalence` suite enforces this), so experiments that
/// only need a populated sketch get the fast path for free.
pub(crate) fn fill_batched(
    sketch: &mut crate::AnySketch,
    gen: &mut dyn qsketch_datagen::ValueStream,
    n: u64,
) {
    use qsketch_core::QuantileSketch as _;
    const CHUNK: usize = qsketch_streamsim::engine::DEFAULT_BATCH_SIZE;
    let mut buf = Vec::with_capacity(CHUNK);
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK as u64) as usize;
        buf.clear();
        buf.extend((0..take).map(|_| gen.next_value()));
        sketch.insert_batch(&buf);
        remaining -= take as u64;
    }
}

/// The windowed configuration for an experiment at the chosen scale:
/// `--full` is the paper's 1 M-event windows; `--quick` shrinks the rate
/// (100 k-event windows) and keeps everything else identical so
/// delay-to-window ratios are preserved.
pub(crate) fn scaled_config(args: &Args, delay: NetworkDelay) -> AccuracyConfig {
    match args.scale {
        Scale::Full => AccuracyConfig::paper(delay),
        Scale::Quick => {
            let mut cfg = AccuracyConfig::paper_scaled(delay, 10);
            cfg.num_windows = 6; // 5 measured + 1 discarded
            cfg
        }
        Scale::Tiny => {
            let mut cfg = AccuracyConfig::paper_scaled(delay, 500);
            cfg.num_windows = 3;
            cfg
        }
    }
}

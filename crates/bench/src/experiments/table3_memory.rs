//! Table 3: final memory usage (KB) of each sketch after consuming
//! 1 million points of each data set.

use crate::cli::Args;
use crate::table::{fmt_kb, Table};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{DataSet, PAPER_EVENTS_PER_UPDATE};

/// Paper-reported values for the shape check (KB; Table 3).
pub const PAPER_TABLE3: [(&str, [f64; 5]); 4] = [
    // (dataset, [REQ, KLL, UDDS, DDS, Moments])
    ("Pareto", [16.99, 4.24, 27.96, 5.42, 0.14]),
    ("Uniform", [16.99, 4.24, 20.90, 1.84, 0.14]),
    ("NYT", [17.00, 4.24, 22.53, 2.15, 0.14]),
    ("Power", [17.00, 4.24, 22.61, 2.04, 0.14]),
];

/// Points per data set (Table 3 uses 1 M; the tiny smoke scale shrinks it
/// because the integration tests run unoptimised builds).
fn points(scale: crate::cli::Scale) -> usize {
    match scale {
        crate::cli::Scale::Tiny => 20_000,
        _ => 1_000_000,
    }
}

/// Run the experiment and render the table.
pub fn run(args: &Args) -> String {
    let sketches = args.sketches();
    let mut out = String::from(
        "Table 3: final memory usage of each sketch (KB) after consuming 1M data points\n\n",
    );
    let mut header: Vec<String> = vec!["dataset".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);

    for dataset in DataSet::ALL {
        let mut row: Vec<String> = vec![dataset.label().to_string()];
        for &kind in &sketches {
            let mut sketch = kind.build_for(args.seed, dataset);
            let mut gen = dataset.generator(args.seed, PAPER_EVENTS_PER_UPDATE);
            for _ in 0..points(args.scale) {
                sketch.insert(gen.next_value());
            }
            row.push(fmt_kb(sketch.memory_footprint()));
        }
        table.row(row);
    }
    out.push_str(&table.render());

    out.push_str("\nPaper (Table 3) reference values (KB):\n");
    let mut paper = Table::new(["dataset", "REQ", "KLL", "UDDS", "DDS", "Moments"]);
    for (ds, vals) in PAPER_TABLE3 {
        let mut row = vec![ds.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.2}")));
        paper.row(row);
    }
    out.push_str(&paper.render());
    out
}

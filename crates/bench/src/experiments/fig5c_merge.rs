//! Fig. 5c: average time to merge two sketches, while folding 100 and
//! 1000 sketches each populated with 1 M events from a uniform, binomial,
//! or Zipf distribution (§4.1, §4.4.3).

use std::time::Instant;

use crate::cli::{Args, Scale};
use crate::registry::AnySketch;
use crate::table::{fmt_ns, Table};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{BinomialGen, FixedUniform, ValueStream, ZipfGen};

/// (events per sketch, sketch counts) per scale.
fn workload(scale: Scale) -> (usize, Vec<usize>) {
    match scale {
        Scale::Tiny => (5_000, vec![10]),
        Scale::Quick => (100_000, vec![100, 300]),
        Scale::Full => (1_000_000, vec![100, 1000]),
    }
}

/// Populate one shard sketch from the §4.1 merge workload: shard `i`
/// draws from uniform/binomial/Zipf in rotation.
fn populate(kind: crate::SketchKind, seed: u64, shard: usize, events: usize) -> AnySketch {
    let mut sketch = kind.build(seed.wrapping_add(shard as u64), false);
    let mut gen: Box<dyn ValueStream> = match shard % 3 {
        0 => Box::new(FixedUniform::new(seed + shard as u64, 30.0, 100.0)),
        1 => Box::new(BinomialGen::new(seed + shard as u64, 100, 0.2)),
        _ => Box::new(ZipfGen::new(seed + shard as u64, 20, 0.6)),
    };
    super::fill_batched(&mut sketch, gen.as_mut(), events as u64);
    sketch
}

/// Run the experiment and render the figure's series.
pub fn run(args: &Args) -> String {
    let (events, counts) = workload(args.scale);
    let mut out = format!(
        "Fig. 5c: average time to merge two sketches (each shard fed {events} events \
         from U(30,100)/Binomial(100,0.2)/Zipf(20,0.6))\n\n"
    );
    // GK has no merge; exclude baselines that cannot merge.
    let sketches: Vec<crate::SketchKind> = args
        .sketches()
        .into_iter()
        .filter(|k| *k != crate::SketchKind::Gk)
        .collect();

    let mut header: Vec<String> = vec!["sketches merged".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);

    for &count in &counts {
        let mut row = vec![format!("{count}")];
        for &kind in &sketches {
            let shards: Vec<AnySketch> = (0..count)
                .map(|i| populate(kind, args.seed, i, events))
                .collect();
            let mut acc = shards[0].clone();
            let start = Instant::now();
            for shard in &shards[1..] {
                acc.merge_same(shard).expect("same-kind merge");
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(acc.count());
            row.push(fmt_ns(elapsed / (count - 1) as f64));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper (Fig. 5c): Moments fastest by >= an order of magnitude (adds 12 sums);\n\
         DDS next (array bucket adds); UDDS slow (map iteration + uniform collapses);\n\
         KLL and REQ slowest of the summary/sampling split, REQ above KLL.\n",
    );
    out
}

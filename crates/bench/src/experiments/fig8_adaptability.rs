//! Fig. 8: adaptability — accuracy on a stream whose distribution switches
//! from Binomial(30, 0.4) to U(30, 100) half-way (§4.5.7).

use crate::cli::{Args, Scale};
use crate::table::{fmt_pct, Table};
use qsketch_core::error::{relative_error, ErrorStats};
use qsketch_core::exact::ExactQuantiles;
use qsketch_core::quantiles::QUERIED;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{paper_adaptability_stream, ValueStream};

/// Events per distribution fragment (paper: 1 M + 1 M).
fn half(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 5_000,
        Scale::Quick => 100_000,
        Scale::Full => 1_000_000,
    }
}

/// Run the experiment and render the per-quantile error series of Fig. 8b.
pub fn run(args: &Args) -> String {
    let half = half(args.scale);
    let runs = args.runs_or(3);
    let sketches = args.sketches();
    let mut out = format!(
        "Fig. 8: adaptability — Binomial(30,0.4) x{half} then U(30,100) x{half}\n\n"
    );

    let mut header: Vec<String> = vec!["q".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);

    // error[sketch][q] accumulated over runs.
    let mut stats = vec![vec![ErrorStats::new(); QUERIED.len()]; sketches.len()];
    for run in 0..runs {
        let run_seed = args.seed.wrapping_add(run as u64 * 7919);
        // One shared materialised stream per run so every sketch sees the
        // same data (uniform settings, §4.2).
        let mut stream = paper_adaptability_stream(run_seed, half);
        let values = stream.take_vec(2 * half as usize);
        let mut oracle = ExactQuantiles::with_capacity(values.len());
        oracle.extend(values.iter().copied());
        for (si, &kind) in sketches.iter().enumerate() {
            let mut sketch = kind.build(run_seed, false);
            for &v in &values {
                sketch.insert(v);
            }
            for (qi, &q) in QUERIED.iter().enumerate() {
                let truth = oracle.query(q).expect("non-empty oracle");
                if let Ok(est) = sketch.query(q) {
                    stats[si][qi].record(relative_error(truth, est));
                }
            }
        }
    }

    for (qi, &q) in QUERIED.iter().enumerate() {
        let mut row = vec![format!("{q}")];
        for (si, _) in sketches.iter().enumerate() {
            let s = &stats[si][qi];
            row.push(if s.is_empty() {
                "n/a".into()
            } else {
                fmt_pct(s.mean())
            });
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper (Fig. 8b): errors are insignificant everywhere except a jump at the\n\
         0.5 quantile (the fragment boundary) for KLL, REQ and Moments; DDS and UDDS\n\
         are unaffected by the distribution switch.\n",
    );
    out
}

//! Fig. 7: accuracy of the 0.98-quantile query as a function of the data
//! set's excess kurtosis (§4.5.6).

use crate::cli::Args;
use crate::experiments::{accuracy_stats, scaled_config};
use crate::table::{fmt_pct, Table};
use qsketch_core::stats::kurtosis;
use qsketch_datagen::DataSet;
use qsketch_streamsim::NetworkDelay;

/// Sample size used to estimate each data set's kurtosis for the x-axis.
fn kurtosis_sample(scale: crate::cli::Scale) -> usize {
    match scale {
        crate::cli::Scale::Tiny => 20_000,
        _ => 1_000_000,
    }
}

/// Run the experiment and render the series (x = kurtosis, one column per
/// sketch, y = mean relative error at q = 0.98).
pub fn run(args: &Args) -> String {
    let mut cfg = scaled_config(args, NetworkDelay::None);
    cfg.quantiles = vec![0.98];
    let runs = args.runs_or(3);
    let sketches = args.sketches();

    // Order data sets by measured kurtosis (the paper's x-axis).
    let mut ordered: Vec<(DataSet, f64)> = DataSet::ALL
        .iter()
        .map(|&ds| {
            let mut gen = ds.generator(args.seed ^ 0x4B55_5254, 50);
            let sample = gen.take_vec(kurtosis_sample(args.scale));
            (ds, kurtosis(&sample))
        })
        .collect();
    ordered.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite kurtosis"));

    let mut out = String::from(
        "Fig. 7: accuracy of the 0.98-quantile query as a function of kurtosis\n\n",
    );
    let mut header: Vec<String> = vec!["dataset".into(), "kurtosis".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);

    for (dataset, k) in ordered {
        let mut row = vec![dataset.label().to_string(), format!("{k:.1}")];
        for &kind in &sketches {
            let outcome = accuracy_stats(kind, dataset, &cfg, runs, args.seed);
            row.push(fmt_pct(outcome.q_mean(0.98)));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper (Fig. 7): error rises with kurtosis for distribution-dependent\n\
         algorithms; DDS/UDDS stay flat; NYT is easy for KLL/REQ because the exact\n\
         0.98-quantile value (57.3) repeats thousands of times; REQ beats KLL on\n\
         Pareto thanks to HRA-biased sampling.\n",
    );
    out
}

//! Extension experiment (beyond the paper): many-connection load test of
//! the quantile-as-a-service TCP server (`qsketch-server`).
//!
//! The paper's experiments measure sketches in-process; a service adds a
//! wire protocol, per-connection threads, hash routing, and quotas
//! between the client and the sketch. This experiment measures what
//! survives of the throughput, over real loopback TCP:
//!
//! * **throughput** — total events/s across `C` concurrent client
//!   connections, each streaming batches to its own tenant and keys,
//! * **pipelined throughput** — the same workload with `pipeline_depth`
//!   batches packed per v3 multi-op envelope (one read/decode/write
//!   cycle, so the syscall and ack round-trip amortize across ops),
//! * **allocs/frame** — percentiles of the server's per-frame heap
//!   allocation count (`server.allocs_per_frame`), measured when the
//!   binary installs the counting allocator; steady state must sit at
//!   p50 = 0 (the committed budget — see `ci/check.sh`),
//! * **ingest ack latency** — p50/p99/max time from sending an `Ingest`
//!   frame to reading its `IngestOk` (the synchronous ack covers quota
//!   check + route + enqueue, not insertion, which is asynchronous),
//! * **isolation** — a noisy neighbor running flat-out into a
//!   token-bucket quota while a quiet tenant sends sparse single-value
//!   batches: the quiet tenant's p99 ack latency is the number that
//!   proves rejection-not-blocking works (queues never fill with the
//!   noisy tenant's data, so the quiet tenant never waits behind it).
//!
//! The binary writes `BENCH_server.json` at the repo root (quick/full
//! scales only); the committed copy is the reference measurement.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cli::{Args, Scale};
use qsketch_core::alloccount;
use qsketch_core::metrics::MetricsRegistry;
use qsketch_kll::KllSketch;
use qsketch_server::client::{Client, ClientError};
use qsketch_server::config::{ServerConfig, SERVER_SKETCH_SEED};
use qsketch_server::protocol::{ErrorCode, F64s, RequestView, Response};
use qsketch_server::server::{spawn_core, Server, ServerCore};

/// Every scale-dependent knob of the experiment, resolved in exactly
/// one place so the table header, the phases, and the JSON schema can
/// never disagree about what a `--quick` or `--full` run means.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Shard workers (kept small: the container the benches run in is
    /// effectively single-core, and shard threads compete with
    /// connection threads for it).
    pub shards: usize,
    /// Concurrent load connections in the throughput phase.
    pub connections: usize,
    /// Values per ingest batch in the throughput phase.
    pub batch: usize,
    /// Distinct metric keys per connection (exercises the hash router).
    pub keys_per_conn: usize,
    /// Events each connection streams in the throughput phase.
    pub events_per_conn: usize,
    /// The noisy tenant's quota in the isolation phase, events/s.
    pub noisy_quota: f64,
    /// Quiet-tenant probes in the isolation phase.
    pub quiet_probes: usize,
    /// Ingest ops per v3 batch envelope in the pipelined phase.
    pub pipeline_depth: usize,
}

impl LoadConfig {
    /// The knobs for one scale. Only `events_per_conn` varies today,
    /// but every consumer goes through this struct rather than module
    /// constants so a future scale split cannot drift.
    pub fn for_scale(scale: Scale) -> Self {
        Self {
            shards: 2,
            connections: 4,
            batch: 512,
            keys_per_conn: 8,
            events_per_conn: match scale {
                Scale::Tiny => 16_384,
                Scale::Quick => 262_144,
                Scale::Full => 2_097_152,
            },
            noisy_quota: 50_000.0,
            quiet_probes: 400,
            pipeline_depth: 16,
        }
    }
}

struct LatencyStats {
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn latency_stats(mut ns: Vec<u64>) -> LatencyStats {
    assert!(!ns.is_empty());
    ns.sort_unstable();
    let at = |q: f64| ns[((ns.len() - 1) as f64 * q).round() as usize] as f64 / 1e3;
    LatencyStats {
        p50_us: at(0.5),
        p99_us: at(0.99),
        max_us: *ns.last().unwrap() as f64 / 1e3,
    }
}

fn start_server(config: &ServerConfig) -> (Server, Arc<ServerCore<KllSketch>>, MetricsRegistry) {
    let registry = MetricsRegistry::new();
    let core = Arc::new(
        spawn_core(
            config.engine_config(),
            || KllSketch::with_seed(200, SERVER_SKETCH_SEED),
            false,
        )
        .expect("server engine spawns")
        .instrument(&registry, "server"),
    );
    let server = Server::start("127.0.0.1:0", Arc::clone(&core)).expect("ephemeral bind");
    (server, core, registry)
}

/// Per-frame allocation percentiles from the server's
/// `server.allocs_per_frame` histogram. `None` when the counting
/// allocator is not installed in this binary (the histogram would read
/// all-zero regardless of what the data plane does, which is not a
/// measurement). `bench_server_load` installs it; `run_all` does not.
struct AllocStats {
    p50: u64,
    p99: u64,
    max: u64,
    frames: u64,
}

fn alloc_stats(registry: &MetricsRegistry) -> Option<AllocStats> {
    if alloccount::total_allocs() == 0 {
        return None;
    }
    let snapshot = registry.snapshot();
    let h = snapshot.histogram("server.allocs_per_frame")?;
    Some(AllocStats {
        p50: h.p50,
        p99: h.p99,
        max: h.max,
        frames: h.count,
    })
}

struct ThroughputResult {
    events: u64,
    events_per_sec: f64,
    ack: LatencyStats,
    query_p50: f64,
    allocs: Option<AllocStats>,
}

/// Phase 1: C connections stream batches as fast as the server acks.
fn run_throughput(load: LoadConfig) -> ThroughputResult {
    let (server, _core, registry) =
        start_server(&ServerConfig::new("unused").with_shards(load.shards));
    let addr = server.local_addr();
    let per_conn = load.events_per_conn;

    let start = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..load.connections {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let tenant = format!("tenant-{conn}");
            let mut lat = Vec::with_capacity(per_conn / load.batch + 1);
            let mut sent = 0usize;
            let mut value = conn as f64;
            while sent < per_conn {
                let n = load.batch.min(per_conn - sent);
                let batch: Vec<f64> = (0..n)
                    .map(|i| {
                        value += 1.0;
                        value + (i % 97) as f64
                    })
                    .collect();
                let key = format!("api.endpoint.{}", (sent / load.batch) % load.keys_per_conn);
                let t0 = Instant::now();
                client.ingest(&tenant, &key, &batch).expect("ingest");
                lat.push(t0.elapsed().as_nanos() as u64);
                sent += n;
            }
            lat
        }));
    }
    let mut all_lat = Vec::new();
    for handle in handles {
        all_lat.extend(handle.join().expect("load thread"));
    }
    let events = (load.connections * per_conn) as u64;

    // Drain before stopping the clock: throughput covers insertion, not
    // just enqueueing.
    let mut client = Client::connect(addr).expect("connect");
    client.flush().expect("flush");
    let elapsed = start.elapsed().as_secs_f64();

    // Sanity: everything landed, and queries answer.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.events, events, "server lost events");
    let (values, _) = client
        .query("tenant-0", "api.endpoint.0", &[0.5])
        .expect("query");

    let allocs = alloc_stats(&registry);
    drop(server);
    ThroughputResult {
        events,
        events_per_sec: events as f64 / elapsed,
        ack: latency_stats(all_lat),
        query_p50: values[0],
        allocs,
    }
}

/// Phase 2: the same workload, but each connection packs
/// `pipeline_depth` ingest batches into one v3 multi-op envelope — one
/// read/decode/write cycle (two syscalls) serves the whole window.
fn run_pipelined(load: LoadConfig) -> f64 {
    let (server, _core, _registry) =
        start_server(&ServerConfig::new("unused").with_shards(load.shards));
    let addr = server.local_addr();
    let per_conn = load.events_per_conn;

    let start = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..load.connections {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let tenant = format!("tenant-{conn}");
            let keys: Vec<String> = (0..load.keys_per_conn)
                .map(|k| format!("api.endpoint.{k}"))
                .collect();
            let window = load.batch * load.pipeline_depth;
            let mut values: Vec<f64> = Vec::with_capacity(window);
            let mut sent = 0usize;
            let mut round = 0usize;
            let mut value = conn as f64;
            while sent < per_conn {
                let n = window.min(per_conn - sent);
                values.clear();
                values.extend((0..n).map(|i| {
                    value += 1.0;
                    value + (i % 97) as f64
                }));
                let ops: Vec<RequestView<'_>> = values
                    .chunks(load.batch)
                    .enumerate()
                    .map(|(i, chunk)| RequestView::Ingest {
                        tenant: &tenant,
                        key: &keys[(round + i) % keys.len()],
                        values: F64s::Slice(chunk),
                    })
                    .collect();
                round += ops.len();
                for result in client.call_batch(&ops).expect("pipelined ingest") {
                    match result.expect("pipelined op") {
                        Response::IngestOk { .. } => {}
                        other => panic!("unexpected pipelined response {other:?}"),
                    }
                }
                sent += n;
            }
        }));
    }
    for handle in handles {
        handle.join().expect("pipelined load thread");
    }
    let events = (load.connections * per_conn) as u64;

    let mut client = Client::connect(addr).expect("connect");
    client.flush().expect("flush");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.events, events, "server lost pipelined events");

    drop(server);
    events as f64 / elapsed
}

struct IsolationResult {
    noisy_rejected: u64,
    noisy_accepted_events: u64,
    quiet: LatencyStats,
    max_retry_hint_ms: u64,
}

/// Phase 2: a noisy neighbor runs into its quota while a quiet tenant
/// sends sparse probes; the quiet ack latency is the isolation measure.
fn run_isolation(load: LoadConfig) -> IsolationResult {
    let config = ServerConfig::new("unused")
        .with_shards(load.shards)
        .with_tenant_quota("noisy", load.noisy_quota);
    let (server, _core, _registry) = start_server(&config);
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let noisy_stop = Arc::clone(&stop);
    let noisy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let batch = vec![1.0f64; 1_000];
        let mut rejected = 0u64;
        let mut accepted = 0u64;
        let mut max_hint = 0u64;
        while !noisy_stop.load(std::sync::atomic::Ordering::Relaxed) {
            match client.ingest("noisy", "spam", &batch) {
                Ok(n) => accepted += n,
                Err(ClientError::Server {
                    code: ErrorCode::QuotaExceeded,
                    retry_after_ms,
                    ..
                }) => {
                    rejected += 1;
                    max_hint = max_hint.max(retry_after_ms);
                }
                Err(e) => panic!("noisy tenant hit {e}"),
            }
        }
        (rejected, accepted, max_hint)
    });

    // Quiet tenant: sparse single-value ingests, 1 ms apart.
    let mut client = Client::connect(addr).expect("connect");
    let mut lat = Vec::with_capacity(load.quiet_probes);
    for i in 0..load.quiet_probes {
        let t0 = Instant::now();
        client
            .ingest("quiet", "heartbeat", &[i as f64])
            .expect("quiet ingest");
        lat.push(t0.elapsed().as_nanos() as u64);
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (noisy_rejected, noisy_accepted_events, max_retry_hint_ms) =
        noisy.join().expect("noisy thread");

    client.flush().expect("flush");
    let (_, count) = client.query("quiet", "heartbeat", &[0.5]).expect("query");
    assert_eq!(count, load.quiet_probes as u64, "quiet tenant lost events");

    drop(server);
    IsolationResult {
        noisy_rejected,
        noisy_accepted_events,
        quiet: latency_stats(lat),
        max_retry_hint_ms,
    }
}

/// Run the experiment and render the report (the JSON lives in
/// [`run_with_json`]).
pub fn run(args: &Args) -> String {
    run_with_json(args).0
}

/// Run the experiment; returns `(rendered report, JSON document)`. The
/// binary writes the JSON to `BENCH_server.json` at the repo root.
pub fn run_with_json(args: &Args) -> (String, String) {
    let load = LoadConfig::for_scale(args.scale);
    let throughput = run_throughput(load);
    let pipelined_eps = run_pipelined(load);
    let isolation = run_isolation(load);

    let mut out = format!(
        "Ext: server load — {} connections × {} events \
         (batches of {}, {} keys/conn, kll:200, {} shards)\n\n",
        load.connections, load.events_per_conn, load.batch, load.keys_per_conn, load.shards,
    );
    let mut table = crate::table::Table::new(["metric", "value"]);
    table.row(vec![
        "ingest throughput".into(),
        format!("{:.2} M events/s", throughput.events_per_sec / 1e6),
    ]);
    table.row(vec![
        format!("pipelined throughput (depth {})", load.pipeline_depth),
        format!("{:.2} M events/s", pipelined_eps / 1e6),
    ]);
    table.row(vec![
        "allocs/frame p50 / p99 / max".into(),
        match &throughput.allocs {
            Some(a) => format!("{} / {} / {} ({} frames)", a.p50, a.p99, a.max, a.frames),
            None => "n/a (counting allocator not installed)".into(),
        },
    ]);
    table.row(vec![
        "ack latency p50".into(),
        format!("{:.1} µs", throughput.ack.p50_us),
    ]);
    table.row(vec![
        "ack latency p99".into(),
        format!("{:.1} µs", throughput.ack.p99_us),
    ]);
    table.row(vec![
        "ack latency max".into(),
        format!("{:.1} µs", throughput.ack.max_us),
    ]);
    table.row(vec![
        "noisy: rejected batches".into(),
        format!("{}", isolation.noisy_rejected),
    ]);
    table.row(vec![
        "noisy: admitted events".into(),
        format!("{}", isolation.noisy_accepted_events),
    ]);
    table.row(vec![
        "quiet: ack p99 under noise".into(),
        format!("{:.1} µs", isolation.quiet.p99_us),
    ]);
    table.row(vec![
        "quiet: ack max under noise".into(),
        format!("{:.1} µs", isolation.quiet.max_us),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nReading: the ack covers quota check + hash route + enqueue (insertion is\n\
         asynchronous in the shard workers); throughput is measured to full drain.\n\
         In the isolation phase the noisy tenant is capped at {:.0} events/s\n\
         and rejected-not-blocked, so its overload never occupies queue slots —\n\
         the quiet tenant's p99 staying in the ack-latency ballpark (not the\n\
         seconds a blocked queue would cost) is the isolation guarantee.\n\
         Sanity: tenant-0/api.endpoint.0 p50 answered {:.1}.\n",
        load.noisy_quota, throughput.query_p50
    ));

    let scale = match args.scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let allocs_json = match &throughput.allocs {
        Some(a) => format!(
            "{{\"counting\":true,\"budget_p50\":0,\"p50\":{},\"p99\":{},\
             \"max\":{},\"frames\":{}}}",
            a.p50, a.p99, a.max, a.frames
        ),
        None => "{\"counting\":false}".to_string(),
    };
    let json = format!(
        "{{\"experiment\":\"ext_server_load\",\"scale\":\"{scale}\",\
         \"sketch\":\"kll:200\",\"shards\":{shards},\
         \"connections\":{connections},\"batch\":{batch},\
         \"events\":{events},\"events_per_sec\":{eps:.1},\
         \"pipelined\":{{\"depth\":{depth},\"events_per_sec\":{peps:.1}}},\
         \"allocs_per_frame\":{allocs_json},\
         \"ack_us\":{{\"p50\":{p50:.2},\"p99\":{p99:.2},\"max\":{max:.2}}},\
         \"isolation\":{{\"noisy_quota_events_per_sec\":{quota:.0},\
         \"noisy_rejected_batches\":{rej},\"noisy_admitted_events\":{adm},\
         \"max_retry_hint_ms\":{hint},\
         \"quiet_ack_us\":{{\"p50\":{qp50:.2},\"p99\":{qp99:.2},\"max\":{qmax:.2}}}}}}}",
        depth = load.pipeline_depth,
        peps = pipelined_eps,
        shards = load.shards,
        connections = load.connections,
        batch = load.batch,
        quota = load.noisy_quota,
        events = throughput.events,
        eps = throughput.events_per_sec,
        p50 = throughput.ack.p50_us,
        p99 = throughput.ack.p99_us,
        max = throughput.ack.max_us,
        rej = isolation.noisy_rejected,
        adm = isolation.noisy_accepted_events,
        hint = isolation.max_retry_hint_ms,
        qp50 = isolation.quiet.p50_us,
        qp99 = isolation.quiet.p99_us,
        qmax = isolation.quiet.max_us,
    );
    (out, json)
}

//! Extension experiment: the price of observability. Inserts the same
//! value stream into each sketch bare and wrapped in
//! [`Instrumented`], and reports the per-insert cost of both.
//!
//! `Instrumented` keeps the hot path cheap by batching: inserts are
//! tallied locally and only every `sample_period`-th insert (default
//! 1024) is individually timed and flushed to the shared registry. The
//! acceptance target for the wrapper is ≤ 10 % insert overhead; this
//! binary is the measurement. Run `--full` for the tightest numbers —
//! small streams under `--tiny` are dominated by allocation noise.
//!
//! [`Instrumented`]: qsketch_core::metrics::Instrumented

use crate::cli::{Args, Scale};
use crate::table::Table;
use crate::timing::{black_box, time_reps};
use qsketch_core::metrics::{Instrumented, MetricsRegistry};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{DataSet, ValueStream};

/// Run the overhead measurement on the uniform data set.
pub fn run(args: &Args) -> String {
    let n: usize = match args.scale {
        Scale::Tiny => 20_000,
        Scale::Quick => 500_000,
        Scale::Full => 5_000_000,
    };
    // Per-insert deltas are single nanoseconds; averaging over many reps
    // keeps them out of the scheduler noise floor. At least one rep, or
    // every cell is 0/0.
    let reps = args.runs_or(10).max(1);
    let mut gen = DataSet::Uniform.generator(args.seed, 50);
    let values: Vec<f64> = (0..n).map(|_| gen.next_value()).collect();

    let mut out = format!(
        "Extension: Instrumented<S> insert overhead ({n} uniform inserts, \
         {reps} reps, sample period {})\n\n",
        qsketch_core::metrics::DEFAULT_INSERT_SAMPLE_PERIOD
    );
    let mut table = Table::new(["sketch", "bare ns/insert", "instrumented ns/insert", "overhead"]);

    let registry = MetricsRegistry::new();
    for &kind in &args.sketches() {
        let bare = time_reps(1, reps, || {
            let mut s = kind.build(args.seed, false);
            for &v in &values {
                s.insert(v);
            }
            black_box(s.count());
        });
        let prefix = format!("sketch.{}", kind.label());
        let instrumented = time_reps(1, reps, || {
            let mut s = Instrumented::new(kind.build(args.seed, false), &registry, &prefix);
            for &v in &values {
                s.insert(v);
            }
            black_box(s.count());
        });
        let bare_ns = bare.mean_ns / n as f64;
        let instr_ns = instrumented.mean_ns / n as f64;
        let overhead = (instr_ns - bare_ns) / bare_ns * 100.0;
        table.row(vec![
            kind.label().to_string(),
            format!("{bare_ns:.1}"),
            format!("{instr_ns:.1}"),
            format!("{overhead:+.1}%"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: the wrapper's steady-state cost is one local counter bump plus a\n\
         sampled Instant pair every 1024th insert, so overhead should sit within the\n\
         ±10% run-to-run timing noise of the bare loop at --quick/--full scales.\n",
    );
    out
}

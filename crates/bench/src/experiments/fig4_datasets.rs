//! Fig. 4: histogram representations of the four data sets, rendered as
//! text — the visual sanity check that the synthetic stand-ins have the
//! paper's shapes (long Pareto tail, flat Uniform, spiked NYT fares,
//! bimodal Power).

use crate::cli::Args;
use qsketch_core::exact::ExactQuantiles;
use qsketch_core::stats::MomentsAccumulator;
use qsketch_datagen::DataSet;

/// Sample size per data set.
fn sample_size(scale: crate::cli::Scale) -> usize {
    match scale {
        crate::cli::Scale::Tiny => 20_000,
        _ => 500_000,
    }
}

/// Histogram bins per data set.
const BINS: usize = 48;
/// Bar glyph budget for the densest bin.
const BAR_WIDTH: usize = 60;

/// Run: one text histogram per data set (Fig. 4a–4d), clipped at the 99th
/// percentile so the Pareto tail does not flatten the plot.
pub fn run(args: &Args) -> String {
    let n = sample_size(args.scale);
    let mut out = String::from("Fig. 4: histogram representations of data sets used\n");

    for ds in DataSet::ALL {
        let mut gen = ds.generator(args.seed, 50);
        let mut values = Vec::with_capacity(n);
        let mut acc = MomentsAccumulator::new();
        for _ in 0..n {
            let v = gen.next_value();
            acc.insert(v);
            values.push(v);
        }
        let mut oracle = ExactQuantiles::with_capacity(n);
        oracle.extend(values.iter().copied());
        let clip_hi = oracle.query(0.99).expect("non-empty");
        let lo = acc.min();

        let mut bins = vec![0u64; BINS];
        let width = ((clip_hi - lo) / BINS as f64).max(f64::MIN_POSITIVE);
        for &v in &values {
            let b = (((v - lo) / width) as usize).min(BINS - 1);
            bins[b] += 1;
        }
        let peak = bins.iter().copied().max().unwrap_or(1).max(1);

        out.push_str(&format!(
            "\n--- {} ---  n={n}  min={:.3}  p99={:.3}  max={:.3}  mean={:.3}  kurtosis={:.1}\n",
            ds.label(),
            lo,
            clip_hi,
            acc.max(),
            acc.mean(),
            acc.excess_kurtosis(),
        ));
        for (b, &count) in bins.iter().enumerate() {
            let bar = "#".repeat((count as usize * BAR_WIDTH / peak as usize).max(usize::from(count > 0)));
            out.push_str(&format!(
                "{:>10.2} |{bar}\n",
                lo + (b as f64 + 0.5) * width
            ));
        }
    }
    out.push_str(
        "\nPaper (Fig. 4): Pareto collapses into its first bin with an extreme tail;\n\
         Uniform is a flat band around [1000, 2000]; NYT shows discrete fare spikes\n\
         over a lognormal body; Power is bimodal on [0, 11].\n",
    );
    out
}

//! §4.7: sensitivity of accuracy to window size — the Fig. 6 experiment at
//! 5 s, 10 s and 20 s tumbling windows.

use crate::cli::Args;
use crate::experiments::{accuracy_stats, scaled_config};
use crate::table::{fmt_pct, Table};
use qsketch_core::quantiles::QUERIED;
use qsketch_datagen::DataSet;
use qsketch_streamsim::NetworkDelay;

/// Window lengths evaluated (§4.7).
const WINDOW_SECS: [u64; 3] = [5, 10, 20];

/// Run the experiment: overall mean relative error (across the §4.2
/// quantile set) per sketch and window size, per data set.
pub fn run(args: &Args) -> String {
    let runs = args.runs_or(3);
    let sketches = args.sketches();
    let mut out = String::from(
        "Sec. 4.7: sensitivity of accuracy to window size (5 s / 10 s / 20 s)\n\n",
    );

    for dataset in DataSet::ALL {
        out.push_str(&format!("--- {} ---\n", dataset.label()));
        let mut header: Vec<String> = vec!["sketch".into()];
        header.extend(WINDOW_SECS.iter().map(|w| format!("{w} s")));
        header.push("delta(20s-5s)".into());
        let mut table = Table::new(header);

        for &kind in &sketches {
            let mut row = vec![kind.label().to_string()];
            let mut means = Vec::new();
            for &wsecs in &WINDOW_SECS {
                let mut cfg = scaled_config(args, NetworkDelay::None);
                cfg.window_secs = wsecs;
                let outcome = accuracy_stats(kind, dataset, &cfg, runs, args.seed);
                // Overall mean across the full quantile set.
                let mean = QUERIED
                    .iter()
                    .map(|&q| outcome.q_mean(q))
                    .filter(|m| !m.is_nan())
                    .sum::<f64>()
                    / QUERIED.len() as f64;
                means.push(mean);
                row.push(fmt_pct(mean));
            }
            let delta = means[2] - means[0];
            row.push(format!("{:+.4}", delta));
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    out.push_str(
        "Paper (Sec. 4.7): consistent across window sizes for synthetic data; on\n\
         NYT/Power, Moments improves with larger windows (smoother shape, -0.0018\n\
         from 5s to 20s) while KLL (+0.0007) and REQ (+0.0014) degrade slightly\n\
         (more compactions); DDS/UDDS show no trend.\n",
    );
    out
}

//! §4.6: the Fig. 6 accuracy experiments re-run with late-arriving data —
//! an exponential network delay (mean 150 ms) with late events dropped.

use crate::cli::Args;
use crate::experiments::{accuracy_stats, accuracy_stats_instrumented, scaled_config};
use crate::table::{fmt_pct, Table};
use qsketch_core::metrics::MetricsRegistry;
use qsketch_core::quantiles::QuantileGroup;
use qsketch_datagen::DataSet;
use qsketch_streamsim::{NetworkDelay, PAPER_MEAN_DELAY_MS};

/// Run the experiment: side-by-side error with and without late drops,
/// plus the measured loss fraction (paper: ≈ 2 % per window).
///
/// With `--metrics`, the late-configuration runs go through
/// [`run_accuracy_instrumented`] and a registry snapshot (late-drop
/// counters, watermark lag, per-sketch op latencies) is appended.
///
/// [`run_accuracy_instrumented`]: qsketch_streamsim::harness::run_accuracy_instrumented
pub fn run(args: &Args) -> String {
    let delay = NetworkDelay::ExponentialMs(PAPER_MEAN_DELAY_MS);
    let cfg_late = scaled_config(args, delay);
    let cfg_clean = scaled_config(args, NetworkDelay::None);
    let runs = args.runs_or(3);
    let sketches = args.sketches();
    let registry = args.metrics.then(MetricsRegistry::new);

    let mut out = format!(
        "Sec. 4.6: late-arriving data (exponential delay, mean {PAPER_MEAN_DELAY_MS} ms, \
         late events dropped)\n\n"
    );

    for dataset in DataSet::ALL {
        out.push_str(&format!("--- {} ---\n", dataset.label()));
        let mut header: Vec<String> = vec!["sketch".into()];
        for g in QuantileGroup::ALL {
            header.push(format!("{} clean", g.label()));
            header.push(format!("{} late", g.label()));
        }
        header.push("loss".into());
        let mut table = Table::new(header);

        for &kind in &sketches {
            let clean = accuracy_stats(kind, dataset, &cfg_clean, runs, args.seed);
            let late = match &registry {
                Some(r) => {
                    accuracy_stats_instrumented(kind, dataset, &cfg_late, runs, args.seed, r)
                }
                None => accuracy_stats(kind, dataset, &cfg_late, runs, args.seed),
            };
            let mut row = vec![kind.label().to_string()];
            for g in QuantileGroup::ALL {
                row.push(fmt_pct(clean.group_mean(g)));
                row.push(fmt_pct(late.group_mean(g)));
            }
            row.push(format!("{:.2}%", late.loss_fraction() * 100.0));
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    out.push_str(
        "Paper (Sec. 4.6): ~2% of a window's events drop as late; error is only\n\
         slightly higher than the no-late runs and the Fig. 6 analysis is unchanged —\n\
         an accurate summary is insensitive to losing a small data fraction.\n",
    );
    if let Some(r) = &registry {
        out.push_str(
            "\nMetrics snapshot (accumulated over every late-configuration run;\n\
             pipeline.* counts all sketches' pipelines, sketch.<name>.* is per kind):\n\n",
        );
        out.push_str(&r.snapshot().render_text());
    }
    out
}

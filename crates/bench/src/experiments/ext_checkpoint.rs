//! Extension experiment (beyond the paper): checkpoint overhead and
//! crash recovery of the sharded ingestion engine.
//!
//! The paper treats sketches as ephemeral per-window state; a production
//! stream processor (the Flink deployment of §2) also checkpoints that
//! state so a failed worker does not forfeit the whole window. This
//! experiment measures what the engine's per-shard checkpointing
//! ([`qsketch_streamsim::checkpoint`]) actually costs, per sketch:
//!
//! * **throughput** — events/s through the engine with checkpointing off
//!   vs. on (same pre-generated Pareto stream, same shard seeds),
//! * **overhead** — the relative throughput loss of checkpointing,
//! * **ckpts / KB / p99 µs** — checkpoint count, mean file size and p99
//!   write latency from the engine's metrics registry,
//! * **recovery** — a fault-injected run (one shard killed mid-stream)
//!   followed by builder `recover` + full replay, verified
//!   **bit-identical** against an uninterrupted reference run.
//!
//! Since the v3 flat wire layout (FORMATS.md) the experiment also
//! measures the format itself:
//!
//! * **v2/v3 KB** — the same final sketch state encoded with the legacy
//!   generation vs. the current compressed flat layout,
//! * **q bytes / q dec µs** — median latency of answering a quantile
//!   straight over the serialized payload
//!   ([`SketchView::quantile_from_bytes`]) vs. decode-then-query,
//! * **lazy** — after the crash, a [`LazyEngineRecovery`] opens the
//!   checkpoint directory and serves every checkpointed shard's median
//!   from its bytes, verified bit-identical against decode-then-query
//!   and verified to have rebuilt **nothing** — with the time it took
//!   next to the full recover+replay time.
//!
//! Expected shape: overhead tracks serialized size over interval —
//! Moments (~100 B payloads) is near-free, KLL/REQ cost a few percent at
//! aggressive intervals. The recovery column must read `ok` everywhere;
//! it is the experiment-level proof of the determinism contract the unit
//! tests assert per-crate.

use std::time::Instant;

use crate::cli::{Args, Scale};
use crate::registry::AnySketch;
use crate::spec::SketchSpec;
use qsketch_core::flatwire::SketchView;
use qsketch_core::metrics::MetricsRegistry;
use qsketch_core::{QuantileSketch, SketchSerialize};
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_streamsim::checkpoint::LazyEngineRecovery;
use qsketch_streamsim::builder::EngineBuilder;
use qsketch_streamsim::CheckpointConfig;

/// Shard count for every run (small enough for CI, enough to make the
/// round-robin router and the fault injection non-trivial).
const SHARDS: usize = 4;
/// The shard the fault-injection run kills.
const KILLED_SHARD: usize = 1;
/// Quantiles compared bit-for-bit between recovered and reference runs.
const VERIFY_QS: [f64; 5] = [0.01, 0.25, 0.5, 0.9, 0.99];

/// One measured sketch row.
struct CheckpointPoint {
    sketch: String,
    base_eps: f64,
    ckpt_eps: f64,
    overhead: f64,
    checkpoints: u64,
    mean_kb: f64,
    p99_write_us: f64,
    recovery_ok: bool,
    recovery_ms: f64,
    legacy_kb: f64,
    flat_kb: f64,
    q_bytes_us: f64,
    q_decode_us: f64,
    lazy_ok: bool,
    lazy_ms: f64,
}

fn stream_len(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 20_000,
        Scale::Quick => 1_000_000,
        Scale::Full => 10_000_000,
    }
}

/// Run the experiment and render the table (the JSON lives in
/// [`run_with_json`]).
pub fn run(args: &Args) -> String {
    run_with_json(args).0
}

/// Run the experiment; returns `(rendered table, JSON document)`. The
/// binary writes the JSON under `results/`.
pub fn run_with_json(args: &Args) -> (String, String) {
    let n = stream_len(args.scale);
    // ~10 checkpoints per shard over the run.
    let interval = (n / SHARDS as u64 / 10).max(1);

    let mut gen = FixedPareto::paper_speed_workload(args.seed);
    let values: Vec<f64> = (0..n).map(|_| gen.next_value()).collect();

    // GK cannot merge, so it cannot ride the merge-on-query engine.
    let specs: Vec<SketchSpec> = args
        .sketch_specs(true)
        .into_iter()
        .filter(|s| s.kind().is_mergeable())
        .collect();

    let mut out = format!(
        "Ext: checkpoint overhead + crash recovery of the sharded engine\n\
         (Pareto alpha=1 stream, {n} events/run, {SHARDS} shards, \
         checkpoint every {interval} values/shard,\n\
         fault run kills shard {KILLED_SHARD} mid-stream, recovery \
         replays the input and is compared bit-for-bit)\n\n",
    );
    let mut table = crate::table::Table::new([
        "sketch",
        "Mops/s off",
        "Mops/s on",
        "overhead",
        "ckpts",
        "mean KB",
        "p99 wr (µs)",
        "recovery",
        "v2 KB",
        "v3 KB",
        "q bytes µs",
        "q dec µs",
        "lazy",
    ]);

    let mut points = Vec::new();
    for spec in &specs {
        let point = measure(spec, &values, args, interval);
        table.row(vec![
            point.sketch.clone(),
            format!("{:.2}", point.base_eps / 1e6),
            format!("{:.2}", point.ckpt_eps / 1e6),
            format!("{:.1}%", point.overhead * 100.0),
            format!("{}", point.checkpoints),
            format!("{:.2}", point.mean_kb),
            format!("{:.1}", point.p99_write_us),
            if point.recovery_ok { "ok" } else { "FAIL" }.to_string(),
            format!("{:.2}", point.legacy_kb),
            format!("{:.2}", point.flat_kb),
            format!("{:.2}", point.q_bytes_us),
            format!("{:.2}", point.q_decode_us),
            if point.lazy_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
        points.push(point);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: overhead is the throughput cost of serialising + atomically\n\
         replacing shard-<i>.ckpt at the interval (encode under the shard lock, file\n\
         IO outside it). Checkpoint size follows Table 3's memory ordering: Moments'\n\
         ~100-byte payloads are near-free, the quantile-storing sketches pay more.\n\
         `recovery ok` means a run whose shard died mid-stream, once recovered from\n\
         its checkpoints and replayed, answered every probe quantile with the same\n\
         bits as an uninterrupted run — the determinism contract of the wire format\n\
         (KLL/REQ v2 carry their compaction-coin state).\n\
         v2/v3 KB encode the same final merged state in the legacy vs. the flat\n\
         compressed layout (FORMATS.md); `q bytes` answers a quantile straight over\n\
         those bytes (SketchView, zero decode) vs. `q dec` decoding first. `lazy ok`\n\
         means a LazyEngineRecovery served every checkpointed shard's median from\n\
         checkpoint bytes bit-identically without rebuilding any sketch.\n",
    );

    (out, render_json(args, n, interval, &points))
}

/// Per-shard factories must agree across the four runs (baseline,
/// checkpointed, crashed, recovered): same spec, same seed sequence.
fn factory_for(spec: &SketchSpec, base_seed: u64) -> impl FnMut() -> AnySketch + '_ {
    let mut shard = 0u64;
    move || {
        shard += 1;
        spec.build(base_seed ^ (shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

fn measure(spec: &SketchSpec, values: &[f64], args: &Args, interval: u64) -> CheckpointPoint {
    let label = spec.to_string();

    // Baseline: no checkpointing.
    let mut engine = EngineBuilder::sharded(SHARDS)
        .spawn(factory_for(spec, args.seed))
        .expect("at least one shard");
    let start = Instant::now();
    engine.extend(values.iter().copied());
    engine.drain();
    let base_eps = values.len() as f64 / start.elapsed().as_secs_f64();
    let reference = engine.finish().expect("same-parameter shards merge");

    // Checkpointed run, instrumented so the registry captures the cost.
    let dir = std::env::temp_dir().join(format!(
        "qsketch-ext-ckpt-{}-{}",
        label.replace([':', '.'], "-"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = CheckpointConfig::new(&dir, interval);
    let registry = MetricsRegistry::new();
    let mut engine = EngineBuilder::sharded(SHARDS)
        .checkpoints(ckpt.clone())
        .metrics(&registry, "engine")
        .spawn(factory_for(spec, args.seed))
        .expect("checkpoint dir is creatable");
    let start = Instant::now();
    engine.extend(values.iter().copied());
    engine.drain();
    let ckpt_eps = values.len() as f64 / start.elapsed().as_secs_f64();
    drop(engine);
    let snap = registry.snapshot();
    let checkpoints = snap.counter("engine.checkpoints").unwrap_or(0);
    let bytes = snap.histogram("engine.checkpoint_bytes");
    let mean_kb = bytes.map_or(0.0, |h| h.mean / 1024.0);
    let p99_write_us = snap
        .histogram("engine.checkpoint_ns")
        .map_or(0.0, |h| h.p99 as f64 / 1e3);

    // Crash: same engine shape, shard KILLED_SHARD dies halfway through
    // its share of the stream (so real work is genuinely at stake).
    let kill_after = (values.len() as u64
        / SHARDS as u64
        / qsketch_streamsim::engine::DEFAULT_BATCH_SIZE as u64
        / 2)
    .max(1);
    let mut crashed = EngineBuilder::sharded(SHARDS)
        .fault_injection(KILLED_SHARD, kill_after)
        .checkpoints(ckpt.clone())
        .spawn(factory_for(spec, args.seed))
        .expect("checkpoint dir is creatable");
    crashed.extend(values.iter().copied());
    crashed.drain();
    let died = crashed.failed_shards() == vec![KILLED_SHARD];
    drop(crashed);

    // Lazy recovery probe: open the crashed run's checkpoint directory
    // and serve each checkpointed shard's median straight from its
    // serialized payload — verified bit-identical against decoding that
    // same checkpoint, and verified to have decoded nothing.
    let lazy_start = Instant::now();
    let lazy_ok = match LazyEngineRecovery::<AnySketch>::open(&ckpt, SHARDS) {
        Ok(rec) => {
            let checkpointed: Vec<usize> =
                (0..SHARDS).filter(|&i| rec.values_done(i) > 0).collect();
            !checkpointed.is_empty()
                && checkpointed.iter().all(|&i| {
                    let from_bytes = rec.shard_quantile(i, 0.5);
                    let decoded = qsketch_streamsim::checkpoint::read_shard(&ckpt, i)
                        .ok()
                        .flatten()
                        .and_then(|r| r.ok())
                        .and_then(|c| c.sketch::<AnySketch>().ok());
                    let agree = match (from_bytes, decoded.map(|s| s.query(0.5))) {
                        (Ok(a), Some(Ok(b))) => a.to_bits() == b.to_bits(),
                        _ => false,
                    };
                    agree && !rec.is_live(i)
                })
        }
        Err(_) => false,
    };
    let lazy_ms = lazy_start.elapsed().as_secs_f64() * 1e3;

    // Recover + replay, then compare against the uninterrupted reference.
    let start = Instant::now();
    let recovered = EngineBuilder::sharded(SHARDS)
        .checkpoints(ckpt)
        .recover(factory_for(spec, args.seed));
    let recovery_ok = died
        && match recovered {
            Ok(mut engine) => {
                engine.extend(values.iter().copied());
                let merged = engine.finish().expect("recovered shards merge");
                merged.count() == reference.count()
                    && VERIFY_QS.iter().all(|&q| {
                        match (merged.query(q), reference.query(q)) {
                            (Ok(a), Ok(b)) => a.to_bits() == b.to_bits(),
                            (Err(_), Err(_)) => true,
                            _ => false,
                        }
                    })
            }
            Err(_) => false,
        };
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&dir);

    // Format measurements on the final merged state: legacy vs. flat
    // bytes, and quantile latency over bytes vs. decode-then-query.
    let flat_bytes = reference.encode();
    let legacy_bytes = reference.encode_legacy();
    let q_bytes_us = median_query_us(|| {
        AnySketch::quantile_from_bytes(&flat_bytes, 0.5).expect("view answers")
    });
    let q_decode_us = median_query_us(|| {
        AnySketch::decode(&flat_bytes)
            .expect("own bytes decode")
            .query(0.5)
            .expect("decoded sketch answers")
    });

    CheckpointPoint {
        sketch: label,
        base_eps,
        ckpt_eps,
        overhead: (1.0 - ckpt_eps / base_eps).max(0.0),
        checkpoints,
        mean_kb,
        p99_write_us,
        recovery_ok,
        recovery_ms,
        legacy_kb: legacy_bytes.len() as f64 / 1024.0,
        flat_kb: flat_bytes.len() as f64 / 1024.0,
        q_bytes_us,
        q_decode_us,
        lazy_ok,
        lazy_ms,
    }
}

/// Median latency in µs of `op` over enough repetitions to be stable at
/// CI scale (the absolute numbers are machine-dependent; the committed
/// JSON is read as a ratio between the two query paths).
fn median_query_us<T>(mut op: impl FnMut() -> T) -> f64 {
    const REPS: usize = 64;
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(op());
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    samples[REPS / 2]
}

/// Hand-rolled JSON document (no serde in the offline build).
fn render_json(args: &Args, n: u64, interval: u64, points: &[CheckpointPoint]) -> String {
    let scale = match args.scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let mut json = format!(
        "{{\"experiment\":\"ext_checkpoint\",\"scale\":\"{scale}\",\
         \"events_per_run\":{n},\"seed\":{seed},\"shards\":{SHARDS},\
         \"interval_values\":{interval},\"results\":[",
        seed = args.seed,
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"sketch\":\"{}\",\"base_eps\":{:.1},\"ckpt_eps\":{:.1},\
             \"overhead\":{:.4},\"checkpoints\":{},\"mean_kb\":{:.3},\
             \"p99_write_us\":{:.2},\"recovery_ok\":{},\"recovery_ms\":{:.2},\
             \"legacy_kb\":{:.3},\"flat_kb\":{:.3},\
             \"q_from_bytes_us\":{:.2},\"q_decode_us\":{:.2},\
             \"lazy_ok\":{},\"lazy_ms\":{:.2}}}",
            p.sketch,
            p.base_eps,
            p.ckpt_eps,
            p.overhead,
            p.checkpoints,
            p.mean_kb,
            p.p99_write_us,
            p.recovery_ok,
            p.recovery_ms,
            p.legacy_kb,
            p.flat_kb,
            p.q_bytes_us,
            p.q_decode_us,
            p.lazy_ok,
            p.lazy_ms,
        ));
    }
    json.push_str("]}");
    json
}

//! Fig. 5a: average time to insert a single element, measured over long
//! Pareto(α=1, X_m=1) streams (the paper runs 10 M, 100 M and 1 B
//! insertions).

use std::time::Instant;

use crate::cli::{Args, Scale};
use crate::table::{fmt_ns, Table};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};

/// Chunk size for pre-sampling values so generation cost stays out of the
/// timed section.
const CHUNK: usize = 1 << 20;

/// Stream lengths per scale. §4.4.1 finds insertion time independent of
/// sketch fill, so the quick sizes estimate the same mean.
fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Tiny => vec![20_000],
        Scale::Quick => vec![1_000_000, 4_000_000],
        Scale::Full => vec![10_000_000, 100_000_000, 1_000_000_000],
    }
}

/// Run the experiment and render the figure's series.
pub fn run(args: &Args) -> String {
    let mut out = String::from(
        "Fig. 5a: average insertion time of an element (Pareto alpha=1, Xm=1 stream)\n\n",
    );
    let sketches = args.sketches();
    let mut header: Vec<String> = vec!["insertions".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);

    for &n in &sizes(args.scale) {
        let mut row = vec![format!("{n}")];
        for &kind in &sketches {
            // Pareto spans many decades: the Moments sketch gets the same
            // arcsinh compression the paper applies to Pareto data.
            let mut sketch = kind.build(args.seed, true);
            let mut gen = FixedPareto::paper_speed_workload(args.seed);
            let mut buf = vec![0.0f64; CHUNK];
            let mut remaining = n;
            let mut timed_ns = 0u128;
            while remaining > 0 {
                let this = CHUNK.min(remaining as usize);
                for slot in buf[..this].iter_mut() {
                    *slot = gen.next_value();
                }
                let start = Instant::now();
                for &v in &buf[..this] {
                    sketch.insert(v);
                }
                timed_ns += start.elapsed().as_nanos();
                remaining -= this as u64;
            }
            std::hint::black_box(sketch.count());
            row.push(fmt_ns(timed_ns as f64 / n as f64));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper (Fig. 5a): all five sketches insert in < 0.2 µs; DDSketch fastest,\n\
         UDDSketch slowest (map store + uniform collapses), ReqSketch slower than KLL.\n",
    );
    out
}

//! Extension experiment (beyond the paper): insert scaling of the
//! multi-threaded sharded ingestion engine.
//!
//! The paper measures mergeability as a *cost* (Fig. 5c: time per
//! pairwise merge) but never exploits it for parallelism; Quancurrent
//! (arXiv:2208.09265) shows thread-local sketches + merge-on-query
//! scaling near-linearly with threads. This experiment runs the same
//! pre-generated Pareto stream through
//! [`qsketch_streamsim::engine::ShardedEngine`] at 1–8 worker threads
//! for every sketch and reports:
//!
//! * **throughput** — wall-clock events/s through the full router →
//!   queue → shard-worker path (drained, so every value is inserted),
//! * **speedup** — vs. the same engine at 1 thread (so channel/router
//!   overhead is in both numerator and denominator),
//! * **p99 insert latency** — sampled at the router call site; grows
//!   when backpressure blocks the producer,
//! * **merge (µs)** — the binary merge tree folding the final shard
//!   snapshots, the per-query cost Fig. 5c predicts.
//!
//! The expected shape on a machine with ≥ 8 free cores is near-linear
//! scaling for sketches whose insert is expensive enough to dominate the
//! router (KLL, REQ, UDDS), flattening toward router-bound for the
//! cheapest inserts (DDS dense store, Moments). On a single-core
//! container the workers timeslice and "speedup" measures pure overhead.

use std::time::Instant;

use crate::cli::{Args, Scale};
use crate::registry::SketchKind;
use crate::table::Table;
use qsketch_core::metrics::MetricsRegistry;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_streamsim::builder::EngineBuilder;

/// Default worker-thread sweep (override with `--threads`).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Sample period for router-side insert-latency timing: 1 in 64 inserts
/// pays the `Instant` pair, keeping the probe overhead under ~1 ns/insert
/// while still collecting thousands of samples per run.
const LATENCY_SAMPLE_PERIOD: usize = 64;

/// One measured (sketch, threads) cell.
struct ScalingPoint {
    sketch: &'static str,
    threads: usize,
    elapsed_s: f64,
    throughput_eps: f64,
    speedup: f64,
    p99_insert_ns: u64,
    merge_us: f64,
    merged_count: u64,
}

fn stream_len(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 20_000,
        Scale::Quick => 1_000_000,
        Scale::Full => 10_000_000,
    }
}

/// Run the sweep and render the table (the JSON lives in
/// [`run_with_json`]).
pub fn run(args: &Args) -> String {
    run_with_json(args).0
}

/// Run the sweep; returns `(rendered table, JSON document)`. The binary
/// writes the JSON under `results/`.
pub fn run_with_json(args: &Args) -> (String, String) {
    let n = stream_len(args.scale);
    let threads = args
        .threads
        .clone()
        .unwrap_or_else(|| THREAD_SWEEP.to_vec());
    let registry = args.metrics.then(MetricsRegistry::new);

    // Pre-generate the stream once (same workload as Fig. 5a) so value
    // generation is outside every timed section and identical across
    // sketches and thread counts.
    let mut gen = FixedPareto::paper_speed_workload(args.seed);
    let values: Vec<f64> = (0..n).map(|_| gen.next_value()).collect();

    // GK has no merge operation, so it cannot ride the merge-on-query
    // engine; skip it even under --with-baselines.
    let sketches: Vec<SketchKind> = args
        .sketches()
        .into_iter()
        .filter(|k| k.is_mergeable())
        .collect();

    let mut out = format!(
        "Ext: parallel insert scaling of the sharded engine \
         (Pareto alpha=1 stream, {n} events/run,\nbatch={batch}, \
         queue={queue} batches/shard, round-robin routing, \
         merge-on-query)\n\n",
        batch = qsketch_streamsim::engine::DEFAULT_BATCH_SIZE,
        queue = qsketch_streamsim::engine::DEFAULT_QUEUE_CAPACITY,
    );
    let mut table = Table::new([
        "sketch",
        "threads",
        "Mops/s",
        "speedup",
        "p99 ins (ns)",
        "merge (µs)",
    ]);

    let mut points: Vec<ScalingPoint> = Vec::new();
    for &kind in &sketches {
        let mut baseline_eps: Option<f64> = None;
        for &t in &threads {
            let point = measure(kind, t, &values, args, registry.as_ref(), baseline_eps);
            if baseline_eps.is_none() {
                baseline_eps = Some(point.throughput_eps);
            }
            table.row(vec![
                point.sketch.to_string(),
                format!("{}", point.threads),
                format!("{:.2}", point.throughput_eps / 1e6),
                format!("{:.2}x", point.speedup),
                format!("{}", point.p99_insert_ns),
                format!("{:.1}", point.merge_us),
            ]);
            points.push(point);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: speedup is vs. the 1-thread engine (router overhead included in\n\
         both sides). Expect near-linear insert scaling while per-insert sketch cost\n\
         dominates the router (Quancurrent, arXiv:2208.09265, reports the same shape),\n\
         and a per-query merge cost that follows Fig. 5c's per-sketch ordering.\n\
         On machines with fewer free cores than workers, the workers timeslice and\n\
         the measured speedup bounds at the core count, not the thread count.\n",
    );
    if let Some(r) = &registry {
        out.push_str(
            "\nMetrics snapshot (per engine instance, prefixed \
             engine.<sketch>.t<threads>;\nqueue-depth gauges hold the last \
             observed depth, backpressure_wait_ns is the\nproducer's blocking \
             time on full shard queues):\n\n",
        );
        out.push_str(&r.snapshot().render_text());
    }

    (out, render_json(args, n, &threads, &points))
}

/// Run one (sketch, threads) configuration end-to-end and measure it.
fn measure(
    kind: SketchKind,
    threads: usize,
    values: &[f64],
    args: &Args,
    registry: Option<&MetricsRegistry>,
    baseline_eps: Option<f64>,
) -> ScalingPoint {
    // Distinct per-shard seeds: each shard of a randomised sketch (KLL,
    // REQ) must draw an independent sequence, as independent stream
    // shards would.
    let mut shard_seed = args.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ threads as u64;
    let factory = || {
        shard_seed = shard_seed.wrapping_add(1);
        kind.build(shard_seed, true)
    };
    let mut builder = EngineBuilder::sharded(threads);
    if let Some(r) = registry {
        let prefix = format!("engine.{}.t{}", kind.label().to_lowercase(), threads);
        builder = builder.metrics(r, &prefix);
    }
    let mut engine = builder
        .spawn(factory)
        .expect("threads >= 1 enforced by the CLI");

    let mut latency_samples: Vec<u64> =
        Vec::with_capacity(values.len() / LATENCY_SAMPLE_PERIOD + 1);
    let start = Instant::now();
    for (i, &v) in values.iter().enumerate() {
        if i % LATENCY_SAMPLE_PERIOD == 0 {
            let probe = Instant::now();
            engine.insert(v);
            latency_samples.push(probe.elapsed().as_nanos() as u64);
        } else {
            engine.insert(v);
        }
    }
    engine.drain();
    let elapsed = start.elapsed();

    let merge_start = Instant::now();
    let merged = engine.finish().expect("same-parameter shards merge");
    let merge_us = merge_start.elapsed().as_nanos() as f64 / 1e3;
    assert_eq!(
        merged.count(),
        values.len() as u64,
        "{} t={threads}: engine lost events",
        kind.label()
    );

    latency_samples.sort_unstable();
    let p99_insert_ns = latency_samples
        [((latency_samples.len() as f64 * 0.99).ceil() as usize - 1).min(latency_samples.len() - 1)];
    let elapsed_s = elapsed.as_secs_f64();
    let throughput_eps = values.len() as f64 / elapsed_s;
    ScalingPoint {
        sketch: kind.label(),
        threads,
        elapsed_s,
        throughput_eps,
        speedup: throughput_eps / baseline_eps.unwrap_or(throughput_eps),
        p99_insert_ns,
        merge_us,
        merged_count: merged.count(),
    }
}

/// Hand-rolled JSON document (no serde in the offline build).
fn render_json(args: &Args, n: u64, threads: &[usize], points: &[ScalingPoint]) -> String {
    let scale = match args.scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let threads_list = threads
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut json = format!(
        "{{\"experiment\":\"ext_parallel_scaling\",\"scale\":\"{scale}\",\
         \"events_per_run\":{n},\"seed\":{seed},\"batch_size\":{batch},\
         \"queue_capacity\":{queue},\"threads\":[{threads_list}],\"results\":[",
        seed = args.seed,
        batch = qsketch_streamsim::engine::DEFAULT_BATCH_SIZE,
        queue = qsketch_streamsim::engine::DEFAULT_QUEUE_CAPACITY,
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"sketch\":\"{}\",\"threads\":{},\"elapsed_s\":{:.6},\
             \"throughput_eps\":{:.1},\"speedup\":{:.4},\"p99_insert_ns\":{},\
             \"merge_us\":{:.2},\"merged_count\":{}}}",
            p.sketch,
            p.threads,
            p.elapsed_s,
            p.throughput_eps,
            p.speedup,
            p.p99_insert_ns,
            p.merge_us,
            p.merged_count,
        ));
    }
    json.push_str("]}");
    json
}

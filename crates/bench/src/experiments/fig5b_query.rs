//! Fig. 5b: quantile-computation time as a function of the number of
//! entries the sketch has consumed (pre-sampled Pareto stream; the §4.2
//! quantile set).

use crate::cli::{Args, Scale};
use crate::table::{fmt_ns, Table};
use crate::timing::time_reps;
use qsketch_core::quantiles::QUERIED;
use qsketch_core::QuantileSketch;
use qsketch_datagen::FixedPareto;

/// Sketch fill sizes per scale (paper: 1 M … 1 B).
fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Tiny => vec![10_000],
        Scale::Quick => vec![100_000, 1_000_000, 10_000_000],
        Scale::Full => vec![1_000_000, 10_000_000, 100_000_000, 1_000_000_000],
    }
}

/// Timed repetitions of the 8-quantile query batch.
fn reps(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 3,
        Scale::Quick => 20,
        Scale::Full => 50,
    }
}

/// Run the experiment and render the figure's series.
pub fn run(args: &Args) -> String {
    let mut out = String::from(
        "Fig. 5b: quantile computation time vs entries processed \
         (avg per query over the 8 paper quantiles)\n\n",
    );
    let sketches = args.sketches();
    let mut header: Vec<String> = vec!["entries".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);

    for &n in &sizes(args.scale) {
        let mut row = vec![format!("{n}")];
        for &kind in &sketches {
            let mut sketch = kind.build(args.seed, true);
            let mut gen = FixedPareto::paper_speed_workload(args.seed);
            super::fill_batched(&mut sketch, &mut gen, n);
            let timing = time_reps(2, reps(args.scale), || {
                for &q in &QUERIED {
                    std::hint::black_box(sketch.query(q).ok());
                }
            });
            // Per-query time: the batch covers 8 quantiles.
            row.push(fmt_ns(timing.mean_ns / QUERIED.len() as f64));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper (Fig. 5b): Moments slowest (maxent solve per query, size-independent);\n\
         DDS/UDDS flat in data size (bucket walk); KLL fastest; REQ grows sub-linearly\n\
         with data size (more compactors to populate and sort).\n",
    );
    out
}

//! Table 4: the qualitative summary grid, *derived from measurements*
//! rather than hand-written — each characteristic is computed by running a
//! reduced version of the relevant experiment and classifying the sketches
//! relative to each other.

use std::time::Instant;

use crate::cli::Args;
use crate::experiments::{accuracy_stats, scaled_config};
use crate::registry::{AnySketch, SketchKind};
use crate::table::Table;
use qsketch_core::error::relative_error;
use qsketch_core::exact::ExactQuantiles;
use qsketch_core::quantiles::QuantileGroup;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{paper_adaptability_stream, DataSet, FixedPareto, ValueStream};
use qsketch_streamsim::NetworkDelay;

/// Error threshold for "high accuracy" classifications (the paper's 1 %
/// target with headroom for the reduced-scale runs).
const ACCURACY_THRESHOLD: f64 = 0.02;

/// Insert/query/merge workload sizes for the speed micro-runs.
fn speed_n(scale: crate::cli::Scale) -> usize {
    match scale {
        crate::cli::Scale::Tiny => 20_000,
        _ => 500_000,
    }
}
fn merge_shards(scale: crate::cli::Scale) -> usize {
    match scale {
        crate::cli::Scale::Tiny => 5,
        _ => 30,
    }
}

/// Paper's Table 4 for the side-by-side.
const PAPER_TABLE4: [(&str, [&str; 5]); 7] = [
    ("Sketching approach", ["Sampling", "Summary", "Summary", "Summary", "Sampling"]),
    ("High tail accuracy", ["Non-Skewed", "Synthetic", "All", "All", "All"]),
    ("High non-tail accuracy", ["All", "Synthetic", "All", "All", "All"]),
    ("Insertion speed", ["Medium", "Medium", "High", "Low", "Low"]),
    ("Query speed", ["High", "Low", "High", "High", "Medium"]),
    ("Merge speed", ["Medium", "High", "Medium", "Low", "Low"]),
    ("Adaptability", ["Inconsistent", "Low", "High", "High", "Inconsistent"]),
];
/// Column order of the paper's Table 4.
const PAPER_COLS: [SketchKind; 5] = [
    SketchKind::Kll,
    SketchKind::Moments,
    SketchKind::Dds,
    SketchKind::Udds,
    SketchKind::Req,
];

/// Rank sketches by a cost metric (lower = faster) into High/Medium/Low
/// speed labels: fastest and anything within 2x of it are High, within
/// 15x Medium, the rest Low.
fn speed_labels(costs: &[f64]) -> Vec<&'static str> {
    let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    costs
        .iter()
        .map(|&c| {
            if c <= best * 2.0 {
                "High"
            } else if c <= best * 15.0 {
                "Medium"
            } else {
                "Low"
            }
        })
        .collect()
}

/// Accuracy-coverage label: which data sets a sketch handled within the
/// threshold.
fn coverage_label(ok: &[(DataSet, bool)]) -> String {
    if ok.iter().all(|(_, pass)| *pass) {
        return "All".into();
    }
    let synth_ok = ok
        .iter()
        .filter(|(ds, _)| matches!(ds, DataSet::Pareto | DataSet::Uniform))
        .all(|(_, pass)| *pass);
    let real_ok = ok
        .iter()
        .filter(|(ds, _)| matches!(ds, DataSet::Nyt | DataSet::Power))
        .all(|(_, pass)| *pass);
    if synth_ok && !real_ok {
        return "Synthetic".into();
    }
    let pareto_fails = ok
        .iter()
        .any(|(ds, pass)| *ds == DataSet::Pareto && !*pass);
    if pareto_fails {
        return "Non-Skewed".into();
    }
    let passed = ok.iter().filter(|(_, p)| *p).count();
    format!("{passed}/{} data sets", ok.len())
}

/// Run the derivation and render measured-vs-paper grids.
pub fn run(args: &Args) -> String {
    let sketches = SketchKind::PAPER_FIVE;
    let runs = args.runs_or(2);

    // --- speed micro-measurements -------------------------------------
    let mut insert_ns = Vec::new();
    let mut query_ns = Vec::new();
    let mut merge_ns = Vec::new();
    for &kind in &sketches {
        let mut gen = FixedPareto::paper_speed_workload(args.seed);
        let speed_n = speed_n(args.scale);
        let merge_shards = merge_shards(args.scale);
        let values: Vec<f64> = (0..speed_n).map(|_| gen.next_value()).collect();

        let mut sketch = kind.build(args.seed, true);
        let t0 = Instant::now();
        for &v in &values {
            sketch.insert(v);
        }
        insert_ns.push(t0.elapsed().as_nanos() as f64 / speed_n as f64);

        let t1 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            for &q in &qsketch_core::quantiles::QUERIED {
                std::hint::black_box(sketch.query(q).ok());
            }
        }
        query_ns.push(t1.elapsed().as_nanos() as f64 / (reps * 8) as f64);

        let shards: Vec<AnySketch> = (0..merge_shards)
            .map(|i| {
                let mut s = kind.build(args.seed + i as u64, true);
                let mut g = FixedPareto::paper_speed_workload(args.seed + i as u64);
                for _ in 0..speed_n / 10 {
                    s.insert(g.next_value());
                }
                s
            })
            .collect();
        let mut acc = shards[0].clone();
        let t2 = Instant::now();
        for s in &shards[1..] {
            acc.merge_same(s).expect("same-kind merge");
        }
        merge_ns.push(t2.elapsed().as_nanos() as f64 / (merge_shards - 1) as f64);
    }
    let insert_label = speed_labels(&insert_ns);
    let query_label = speed_labels(&query_ns);
    let merge_label = speed_labels(&merge_ns);

    // --- accuracy coverage ---------------------------------------------
    let mut cfg = scaled_config(args, NetworkDelay::None);
    cfg.num_windows = 3;
    let mut tail_cov = Vec::new();
    let mut mid_cov = Vec::new();
    for &kind in &sketches {
        let mut tail = Vec::new();
        let mut mid = Vec::new();
        for ds in DataSet::ALL {
            let outcome = accuracy_stats(kind, ds, &cfg, runs, args.seed);
            tail.push((ds, outcome.group_mean(QuantileGroup::Upper) <= ACCURACY_THRESHOLD));
            mid.push((ds, outcome.group_mean(QuantileGroup::Mid) <= ACCURACY_THRESHOLD));
        }
        tail_cov.push(coverage_label(&tail));
        mid_cov.push(coverage_label(&mid));
    }

    // --- adaptability ---------------------------------------------------
    let half = match args.scale {
        crate::cli::Scale::Tiny => 10_000u64,
        _ => 100_000u64,
    };
    let mut adapt = Vec::new();
    {
        let mut stream = paper_adaptability_stream(args.seed, half);
        let values = stream.take_vec(2 * half as usize);
        let mut oracle = ExactQuantiles::with_capacity(values.len());
        oracle.extend(values.iter().copied());
        for &kind in &sketches {
            let mut sketch = kind.build(args.seed, false);
            for &v in &values {
                sketch.insert(v);
            }
            let p50_err = sketch
                .query(0.5)
                .map(|est| relative_error(oracle.query(0.5).unwrap(), est))
                .unwrap_or(f64::INFINITY);
            let others: Vec<f64> = [0.25, 0.75, 0.95]
                .iter()
                .filter_map(|&q| {
                    sketch
                        .query(q)
                        .ok()
                        .map(|est| relative_error(oracle.query(q).unwrap(), est))
                })
                .collect();
            let others_ok = others.iter().all(|&e| e <= ACCURACY_THRESHOLD);
            adapt.push(if p50_err <= ACCURACY_THRESHOLD && others_ok {
                "High"
            } else if others_ok {
                // Good everywhere except the distribution boundary.
                "Inconsistent"
            } else {
                "Low"
            });
        }
    }

    // --- render ----------------------------------------------------------
    let mut out = String::from("Table 4: characteristics derived from measurements\n\n");
    let mut header: Vec<String> = vec!["characteristic".into()];
    header.extend(sketches.iter().map(|k| k.label().to_string()));
    let mut table = Table::new(header);
    let approach = |k: SketchKind| match k {
        SketchKind::Kll | SketchKind::Req => "Sampling",
        _ => "Summary",
    };
    table.row(
        std::iter::once("Sketching approach".to_string())
            .chain(sketches.iter().map(|&k| approach(k).to_string())),
    );
    table.row(std::iter::once("High tail accuracy".to_string()).chain(tail_cov.clone()));
    table.row(std::iter::once("High non-tail accuracy".to_string()).chain(mid_cov.clone()));
    table.row(
        std::iter::once("Insertion speed".to_string())
            .chain(insert_label.iter().map(|s| s.to_string())),
    );
    table.row(
        std::iter::once("Query speed".to_string())
            .chain(query_label.iter().map(|s| s.to_string())),
    );
    table.row(
        std::iter::once("Merge speed".to_string())
            .chain(merge_label.iter().map(|s| s.to_string())),
    );
    table.row(
        std::iter::once("Adaptability".to_string()).chain(adapt.iter().map(|s| s.to_string())),
    );
    out.push_str(&table.render());

    out.push_str("\nPaper's Table 4 (columns: KLL, Moments, DDSketch, UDDSketch, ReqSketch(HRA)):\n");
    let mut paper = Table::new(
        std::iter::once("characteristic".to_string())
            .chain(PAPER_COLS.iter().map(|k| k.label().to_string())),
    );
    for (name, vals) in PAPER_TABLE4 {
        paper.row(std::iter::once(name.to_string()).chain(vals.iter().map(|v| v.to_string())));
    }
    out.push_str(&paper.render());
    out.push_str(
        "\nNote: measured column order is REQ, KLL, UDDS, DDS, Moments (Table 3 order);\n\
         the paper grid above uses its own column order.\n",
    );
    out
}

//! Extension experiment (beyond the paper): how much of the §4.6 late-data
//! loss does a *bounded-out-of-orderness watermark* recover?
//!
//! The paper drops every late event under an ascending watermark (§2.6)
//! and observes the resulting accuracy. Production Flink jobs usually run
//! a lagging watermark instead; this experiment sweeps the lag from 0 to
//! 4× the mean network delay and reports the loss fraction and the p99
//! accuracy at each setting — quantifying the result-latency vs
//! completeness trade-off the paper's setup fixes at one extreme.

use crate::cli::Args;
use crate::experiments::{accuracy_stats, accuracy_stats_instrumented, scaled_config};
use crate::table::{fmt_pct, Table};
use qsketch_core::metrics::MetricsRegistry;
use qsketch_datagen::DataSet;
use qsketch_streamsim::{NetworkDelay, PAPER_MEAN_DELAY_MS};

/// Watermark lags swept, as multiples of the mean delay.
const LAG_FACTORS: [f64; 4] = [0.0, 0.5, 1.0, 4.0];

/// Run the sweep on the NYT data set (the paper's most repetition-heavy
/// stream, where every recovered event carries spike mass).
pub fn run(args: &Args) -> String {
    let runs = args.runs_or(3);
    let sketches = args.sketches();
    let dataset = DataSet::Nyt;
    let registry = args.metrics.then(MetricsRegistry::new);

    let mut out = format!(
        "Extension: watermark lag vs late-data loss (exp({PAPER_MEAN_DELAY_MS} ms) delays, \
         {} data set)\n\n",
        dataset.label()
    );
    let mut header: Vec<String> = vec!["lag (ms)".into(), "loss".into()];
    header.extend(sketches.iter().map(|k| format!("{} p99 err", k.label())));
    let mut table = Table::new(header);

    for factor in LAG_FACTORS {
        let lag_ms = (PAPER_MEAN_DELAY_MS * factor) as u64;
        let mut cfg = scaled_config(args, NetworkDelay::ExponentialMs(PAPER_MEAN_DELAY_MS));
        cfg.watermark_lag_ms = lag_ms;
        cfg.quantiles = vec![0.99];

        let mut row = vec![format!("{lag_ms}")];
        let mut loss_cell = None;
        let mut err_cells = Vec::new();
        for &kind in &sketches {
            let outcome = match &registry {
                Some(r) => accuracy_stats_instrumented(kind, dataset, &cfg, runs, args.seed, r),
                None => accuracy_stats(kind, dataset, &cfg, runs, args.seed),
            };
            loss_cell.get_or_insert_with(|| format!("{:.3}%", outcome.loss_fraction() * 100.0));
            err_cells.push(fmt_pct(outcome.q_mean(0.99)));
        }
        row.push(loss_cell.unwrap_or_else(|| "n/a".into()));
        row.extend(err_cells);
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: a lag of one mean delay eliminates most drops; by 4x the mean the\n\
         stream is effectively complete. The accuracy deltas stay small throughout —\n\
         consistent with the paper's §4.6 finding that sketch summaries tolerate\n\
         losing a small fraction of a window.\n",
    );
    if let Some(r) = &registry {
        out.push_str(
            "\nMetrics snapshot (accumulated over the whole sweep — the\n\
             pipeline.emit_latency_us histogram folds every lag setting together,\n\
             which is exactly how the latency cost of a lagging watermark shows up):\n\n",
        );
        out.push_str(&r.snapshot().render_text());
    }
    out
}

//! Minimal aligned-text table rendering for experiment output.

/// A simple column-aligned table built row by row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align all but the first column (labels left).
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a relative error for display (paper graphs are in percent).
pub fn fmt_pct(err: f64) -> String {
    if err.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.4}%", err * 100.0)
    }
}

/// Format a duration in the most readable sub-second unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Format bytes as KB with two decimals (the unit of Table 3).
pub fn fmt_kb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["dataset", "KLL", "DDS"]);
        t.row(["Pareto", "4.24", "5.42"]);
        t.row(["Uniform", "4.24", "1.84"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dataset"));
        assert!(lines[2].starts_with("Pareto"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.0123), "1.2300%");
        assert_eq!(fmt_pct(f64::NAN), "n/a");
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
        assert_eq!(fmt_kb(4342), "4.24");
    }
}

//! A uniform handle over every sketch in the study, parameterised exactly
//! as in §4.2.

use qsketch_baselines::{GkSketch, TDigest};
use qsketch_core::sketch::{MergeError, QuantileSketch, QueryError};
use qsketch_datagen::DataSet;
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use qsketch_moments::MomentsSketch;
use qsketch_req::ReqSketch;
use qsketch_uddsketch::UddSketch;

/// The sketches of the study. The first five are the paper's subjects;
/// [`SketchKind::Gk`] and [`SketchKind::TDigest`] are the §5.2 baselines
/// available behind `--with-baselines`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchKind {
    /// ReqSketch, HRA, `num_sections = 30`.
    Req,
    /// KLL, `max_compactor_size = 350`.
    Kll,
    /// UDDSketch, 1024 buckets, 12 anticipated collapses, final α = 0.01.
    Udds,
    /// DDSketch, unbounded dense store, α = 0.01.
    Dds,
    /// Moments sketch, 12 moments (arcsinh-compressed on Pareto/Power).
    Moments,
    /// Greenwald–Khanna, ε = 0.01 (§5.2 baseline).
    Gk,
    /// t-digest, δ = 200 (§5.2 baseline).
    TDigest,
}

impl SketchKind {
    /// The paper's five sketches in its reporting order
    /// (REQ, KLL, UDDS, DDS, Moments — the column order of Table 3).
    pub const PAPER_FIVE: [SketchKind; 5] = [
        SketchKind::Req,
        SketchKind::Kll,
        SketchKind::Udds,
        SketchKind::Dds,
        SketchKind::Moments,
    ];

    /// Paper sketches plus the §5.2 baselines.
    pub const ALL: [SketchKind; 7] = [
        SketchKind::Req,
        SketchKind::Kll,
        SketchKind::Udds,
        SketchKind::Dds,
        SketchKind::Moments,
        SketchKind::Gk,
        SketchKind::TDigest,
    ];

    /// Column label (matches Table 3's headers).
    pub fn label(self) -> &'static str {
        match self {
            SketchKind::Req => "REQ",
            SketchKind::Kll => "KLL",
            SketchKind::Udds => "UDDS",
            SketchKind::Dds => "DDS",
            SketchKind::Moments => "Moments",
            SketchKind::Gk => "GK",
            SketchKind::TDigest => "t-digest",
        }
    }

    /// Build this sketch with the §4.2 parameters. `seed` drives the
    /// randomised sketches (KLL, REQ); `compress_moments` applies the log
    /// transform §4.2 prescribes for the Pareto and Power data sets.
    ///
    /// Delegates to [`SketchSpec::paper`](crate::SketchSpec::paper) — use
    /// a [`SketchSpec`](crate::SketchSpec) directly for non-paper
    /// parameters.
    pub fn build(self, seed: u64, compress_moments: bool) -> AnySketch {
        crate::SketchSpec::paper(self, compress_moments).build(seed)
    }

    /// Build with the compression choice §4.2 makes for `dataset`.
    pub fn build_for(self, seed: u64, dataset: DataSet) -> AnySketch {
        self.build(seed, dataset.moments_needs_compression())
    }

    /// Whether same-kind merging can succeed (§2.4): everything but GK,
    /// which has no merge operation.
    pub fn is_mergeable(self) -> bool {
        self != SketchKind::Gk
    }
}

/// A type-erased sketch: one enum over every implementation so experiment
/// loops can treat them uniformly (and still merge same-kind pairs, which
/// a `dyn QuantileSketch` could not express).
#[derive(Debug, Clone)]
pub enum AnySketch {
    /// ReqSketch.
    Req(ReqSketch),
    /// KLL.
    Kll(KllSketch),
    /// UDDSketch.
    Udds(UddSketch),
    /// DDSketch (unbounded dense store).
    Dds(DdSketch),
    /// Moments sketch.
    Moments(MomentsSketch),
    /// Greenwald–Khanna baseline.
    Gk(GkSketch),
    /// t-digest baseline.
    TDigest(TDigest),
}

impl AnySketch {
    /// Which kind this sketch is.
    pub fn kind(&self) -> SketchKind {
        match self {
            AnySketch::Req(_) => SketchKind::Req,
            AnySketch::Kll(_) => SketchKind::Kll,
            AnySketch::Udds(_) => SketchKind::Udds,
            AnySketch::Dds(_) => SketchKind::Dds,
            AnySketch::Moments(_) => SketchKind::Moments,
            AnySketch::Gk(_) => SketchKind::Gk,
            AnySketch::TDigest(_) => SketchKind::TDigest,
        }
    }

    /// Merge a same-kind sketch into this one (§2.4). GK has no merge
    /// operation (it is a §5.2 baseline outside the mergeability study).
    pub fn merge_same(&mut self, other: &AnySketch) -> Result<(), MergeError> {
        use qsketch_core::sketch::MergeableSketch as _;
        match (self, other) {
            (AnySketch::Req(a), AnySketch::Req(b)) => a.merge(b),
            (AnySketch::Kll(a), AnySketch::Kll(b)) => a.merge(b),
            (AnySketch::Udds(a), AnySketch::Udds(b)) => a.merge(b),
            (AnySketch::Dds(a), AnySketch::Dds(b)) => a.merge(b),
            (AnySketch::Moments(a), AnySketch::Moments(b)) => a.merge(b),
            (AnySketch::TDigest(a), AnySketch::TDigest(b)) => a.merge(b),
            (AnySketch::Gk(_), AnySketch::Gk(_)) => Err(MergeError::IncompatibleParameters(
                "GK has no merge operation".into(),
            )),
            _ => Err(MergeError::IncompatibleParameters(
                "cannot merge different sketch kinds".into(),
            )),
        }
    }

    /// Whether [`merge_same`](Self::merge_same) with a same-kind peer can
    /// succeed (everything but GK).
    pub fn is_mergeable(&self) -> bool {
        self.kind().is_mergeable()
    }

    /// The configuration this sketch was built with, reconstructed from
    /// its live parameters — the inverse of
    /// [`SketchSpec::build`](crate::SketchSpec::build), used to label
    /// results and checkpoint files.
    pub fn spec(&self) -> crate::SketchSpec {
        use crate::SketchSpec;
        match self {
            AnySketch::Req(s) => SketchSpec::Req {
                num_sections: s.k(),
            },
            AnySketch::Kll(s) => SketchSpec::Kll { k: s.k() },
            AnySketch::Udds(s) => SketchSpec::Udds {
                alpha: s.initial_alpha(),
                max_buckets: s.max_buckets(),
            },
            AnySketch::Dds(s) => SketchSpec::Dds { alpha: s.alpha() },
            AnySketch::Moments(s) => SketchSpec::Moments {
                num_moments: s.num_moments(),
                compressed: s.is_compressed(),
            },
            AnySketch::Gk(s) => SketchSpec::Gk {
                epsilon: s.epsilon(),
            },
            AnySketch::TDigest(s) => SketchSpec::TDigest {
                compression: s.compression(),
            },
        }
    }
}

pub use codec::ENVELOPE_MAGIC;

/// Wire format for the type-erased enum: a small envelope — magic `0x5E`,
/// version 1, one *tag* byte naming the inner sketch (the inner payload's
/// own wire magic), then the inner payload verbatim. This is what the
/// sharded engine checkpoints when it runs over `AnySketch`, so a
/// recovered shard knows which variant to rebuild before handing the
/// bytes to that sketch's decoder.
mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
    use qsketch_core::flatwire::{self, SketchView};
    use qsketch_core::sketch::SketchError;

    /// Envelope magic for the type-erased sketch payload.
    pub const ENVELOPE_MAGIC: u8 = 0x5E;
    const VERSION: u8 = 1;

    impl AnySketch {
        /// Encode with the inner payload in its previous wire generation
        /// (the envelope itself is unversioned beyond v1). Used by the
        /// fixture tooling to produce back-compat payloads; the baselines
        /// only have one wire generation so they encode normally.
        pub fn encode_legacy(&self) -> Vec<u8> {
            let inner = match self {
                AnySketch::Req(s) => s.encode_legacy(),
                AnySketch::Kll(s) => s.encode_legacy(),
                AnySketch::Udds(s) => s.encode_legacy(),
                AnySketch::Dds(s) => s.encode_legacy(),
                AnySketch::Moments(s) => s.encode_legacy(),
                AnySketch::Gk(s) => s.encode(),
                AnySketch::TDigest(s) => s.encode(),
            };
            let mut w = Writer::with_header(ENVELOPE_MAGIC, VERSION);
            w.u8(inner[0]); // tag = the inner payload's own magic
            w.raw(&inner);
            w.finish()
        }

        /// Split an envelope into `(tag, inner payload)` without copying.
        fn envelope_parts(bytes: &[u8]) -> Result<(u8, &[u8]), DecodeError> {
            let mut r = Reader::with_header(bytes, ENVELOPE_MAGIC, VERSION)?;
            let tag = r.u8()?;
            Ok((tag, r.rest()))
        }
    }

    impl SketchView for AnySketch {
        fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError> {
            let (tag, inner) = Self::envelope_parts(bytes)?;
            match tag {
                qsketch_req::WIRE_MAGIC => ReqSketch::count_from_bytes(inner),
                qsketch_kll::WIRE_MAGIC => KllSketch::count_from_bytes(inner),
                qsketch_uddsketch::WIRE_MAGIC => UddSketch::count_from_bytes(inner),
                qsketch_ddsketch::WIRE_MAGIC => DdSketch::count_from_bytes(inner),
                qsketch_moments::WIRE_MAGIC => MomentsSketch::count_from_bytes(inner),
                // The baselines ship a single wire generation with no
                // borrowed-view reader: decode and count.
                _ => Ok(Self::decode(bytes)?.count()),
            }
        }

        fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError> {
            let (tag, inner) = Self::envelope_parts(bytes)?;
            match tag {
                qsketch_req::WIRE_MAGIC => ReqSketch::bounds_from_bytes(inner),
                qsketch_kll::WIRE_MAGIC => KllSketch::bounds_from_bytes(inner),
                qsketch_uddsketch::WIRE_MAGIC => UddSketch::bounds_from_bytes(inner),
                qsketch_ddsketch::WIRE_MAGIC => DdSketch::bounds_from_bytes(inner),
                qsketch_moments::WIRE_MAGIC => MomentsSketch::bounds_from_bytes(inner),
                // Baseline fallback: both GK and t-digest keep the exact
                // extremes at rank 1 and rank n, so recover the bounds
                // through quantile queries on the decoded sketch.
                _ => {
                    let s = Self::decode(bytes)?;
                    if s.count() == 0 {
                        return Ok((f64::INFINITY, f64::NEG_INFINITY));
                    }
                    let min = s.query(f64::MIN_POSITIVE).map_err(|e| {
                        DecodeError::Corrupt(format!("bounds query failed: {e}"))
                    })?;
                    let max = s
                        .query(1.0)
                        .map_err(|e| DecodeError::Corrupt(format!("bounds query failed: {e}")))?;
                    Ok((min, max))
                }
            }
        }

        fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError> {
            let (tag, inner) = Self::envelope_parts(bytes)?;
            match tag {
                qsketch_req::WIRE_MAGIC => ReqSketch::quantile_from_bytes(inner, q),
                qsketch_kll::WIRE_MAGIC => KllSketch::quantile_from_bytes(inner, q),
                qsketch_uddsketch::WIRE_MAGIC => UddSketch::quantile_from_bytes(inner, q),
                qsketch_ddsketch::WIRE_MAGIC => DdSketch::quantile_from_bytes(inner, q),
                qsketch_moments::WIRE_MAGIC => MomentsSketch::quantile_from_bytes(inner, q),
                _ => flatwire::quantile_via_decode::<Self>(bytes, q),
            }
        }
    }

    impl SketchSerialize for AnySketch {
        fn encode(&self) -> Vec<u8> {
            let inner = match self {
                AnySketch::Req(s) => s.encode(),
                AnySketch::Kll(s) => s.encode(),
                AnySketch::Udds(s) => s.encode(),
                AnySketch::Dds(s) => s.encode(),
                AnySketch::Moments(s) => s.encode(),
                AnySketch::Gk(s) => s.encode(),
                AnySketch::TDigest(s) => s.encode(),
            };
            let mut w = Writer::with_header(ENVELOPE_MAGIC, VERSION);
            w.u8(inner[0]); // tag = the inner payload's own magic
            w.raw(&inner);
            w.finish()
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, ENVELOPE_MAGIC, VERSION)?;
            let tag = r.u8()?;
            let inner = r.rest();
            match tag {
                qsketch_req::WIRE_MAGIC => ReqSketch::decode(inner).map(AnySketch::Req),
                qsketch_kll::WIRE_MAGIC => KllSketch::decode(inner).map(AnySketch::Kll),
                qsketch_uddsketch::WIRE_MAGIC => UddSketch::decode(inner).map(AnySketch::Udds),
                qsketch_ddsketch::WIRE_MAGIC => DdSketch::decode(inner).map(AnySketch::Dds),
                qsketch_moments::WIRE_MAGIC => {
                    MomentsSketch::decode(inner).map(AnySketch::Moments)
                }
                qsketch_baselines::GK_WIRE_MAGIC => {
                    GkSketch::decode(inner).map(AnySketch::Gk)
                }
                qsketch_baselines::TDIGEST_WIRE_MAGIC => {
                    TDigest::decode(inner).map(AnySketch::TDigest)
                }
                other => Err(DecodeError::Corrupt(format!(
                    "unknown sketch tag {other:#04x}"
                ))),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use qsketch_core::QuantileSketch;

        #[test]
        fn every_kind_round_trips_through_the_envelope() {
            for kind in SketchKind::ALL {
                let mut s = kind.build(11, false);
                for i in 1..=20_000 {
                    s.insert(f64::from(i) * 0.61);
                }
                let bytes = s.encode();
                assert_eq!(bytes[0], ENVELOPE_MAGIC);
                let restored = AnySketch::decode(&bytes).unwrap();
                assert_eq!(restored.kind(), kind);
                assert_eq!(restored.count(), s.count());
                for q in [0.01, 0.5, 0.99, 1.0] {
                    assert_eq!(
                        restored.query(q).unwrap().to_bits(),
                        s.query(q).unwrap().to_bits(),
                        "{} q={q}",
                        kind.label()
                    );
                }
            }
        }

        #[test]
        fn envelope_view_matches_decode_then_query() {
            for kind in SketchKind::ALL {
                let mut s = kind.build(11, false);
                for i in 1..=20_000 {
                    s.insert(f64::from(i) * 0.61);
                }
                for bytes in [s.encode(), s.encode_legacy()] {
                    let decoded = AnySketch::decode(&bytes).unwrap();
                    assert_eq!(
                        AnySketch::count_from_bytes(&bytes).unwrap(),
                        s.count(),
                        "{}",
                        kind.label()
                    );
                    let (lo, hi) = AnySketch::bounds_from_bytes(&bytes).unwrap();
                    assert!(lo <= hi, "{} bounds ({lo}, {hi})", kind.label());
                    for q in [0.01, 0.5, 0.99, 1.0] {
                        assert_eq!(
                            AnySketch::quantile_from_bytes(&bytes, q)
                                .unwrap()
                                .to_bits(),
                            decoded.query(q).unwrap().to_bits(),
                            "{} q={q}",
                            kind.label()
                        );
                    }
                }
            }
        }

        #[test]
        fn unknown_tag_rejected() {
            let s = SketchKind::Kll.build(1, false);
            let mut bytes = s.encode();
            bytes[2] = 0xFF; // tag byte
            assert!(matches!(
                AnySketch::decode(&bytes),
                Err(DecodeError::Corrupt(_))
            ));
        }

        #[test]
        fn tag_and_inner_magic_must_agree() {
            let s = SketchKind::Kll.build(1, false);
            let mut bytes = s.encode();
            bytes[2] = qsketch_ddsketch::WIRE_MAGIC; // lie about the variant
            assert!(AnySketch::decode(&bytes).is_err());
        }

        #[test]
        fn truncated_envelope_rejected() {
            let mut s = SketchKind::Dds.build(1, false);
            for i in 1..=1_000 {
                s.insert(f64::from(i));
            }
            let mut bytes = s.encode();
            bytes.truncate(bytes.len() / 2);
            assert!(AnySketch::decode(&bytes).is_err());
            assert!(AnySketch::decode(&bytes[..2]).is_err());
            assert!(AnySketch::decode(&[]).is_err());
        }
    }
}

/// [`MergeableSketch`](qsketch_core::sketch::MergeableSketch) over the
/// type-erased enum, so generic merge-based
/// machinery — `qsketch_core::merge_tree`, the sharded ingestion engine —
/// runs over every kind the harness can build. Merging mismatched kinds
/// (or GK, which has no merge) returns
/// [`MergeError::IncompatibleParameters`].
impl qsketch_core::sketch::MergeableSketch for AnySketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.merge_same(other)
    }
}

impl QuantileSketch for AnySketch {
    fn insert(&mut self, value: f64) {
        match self {
            AnySketch::Req(s) => s.insert(value),
            AnySketch::Kll(s) => s.insert(value),
            AnySketch::Udds(s) => s.insert(value),
            AnySketch::Dds(s) => s.insert(value),
            AnySketch::Moments(s) => s.insert(value),
            AnySketch::Gk(s) => s.insert(value),
            AnySketch::TDigest(s) => s.insert(value),
        }
    }

    fn insert_n(&mut self, value: f64, count: u64) {
        match self {
            AnySketch::Req(s) => s.insert_n(value, count),
            AnySketch::Kll(s) => s.insert_n(value, count),
            AnySketch::Udds(s) => s.insert_n(value, count),
            AnySketch::Dds(s) => s.insert_n(value, count),
            AnySketch::Moments(s) => s.insert_n(value, count),
            AnySketch::Gk(s) => s.insert_n(value, count),
            AnySketch::TDigest(s) => s.insert_n(value, count),
        }
    }

    // Forwarded explicitly so the per-sketch batch kernels are reached
    // through the type-erased enum (the default impl would fall back to
    // the scalar loop).
    fn insert_batch(&mut self, values: &[f64]) {
        match self {
            AnySketch::Req(s) => s.insert_batch(values),
            AnySketch::Kll(s) => s.insert_batch(values),
            AnySketch::Udds(s) => s.insert_batch(values),
            AnySketch::Dds(s) => s.insert_batch(values),
            AnySketch::Moments(s) => s.insert_batch(values),
            AnySketch::Gk(s) => s.insert_batch(values),
            AnySketch::TDigest(s) => s.insert_batch(values),
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        match self {
            AnySketch::Req(s) => s.query(q),
            AnySketch::Kll(s) => s.query(q),
            AnySketch::Udds(s) => s.query(q),
            AnySketch::Dds(s) => s.query(q),
            AnySketch::Moments(s) => s.query(q),
            AnySketch::Gk(s) => s.query(q),
            AnySketch::TDigest(s) => s.query(q),
        }
    }

    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        match self {
            AnySketch::Req(s) => s.query_many(qs),
            AnySketch::Kll(s) => s.query_many(qs),
            AnySketch::Udds(s) => s.query_many(qs),
            AnySketch::Dds(s) => s.query_many(qs),
            AnySketch::Moments(s) => s.query_many(qs),
            AnySketch::Gk(s) => s.query_many(qs),
            AnySketch::TDigest(s) => s.query_many(qs),
        }
    }

    fn count(&self) -> u64 {
        match self {
            AnySketch::Req(s) => s.count(),
            AnySketch::Kll(s) => s.count(),
            AnySketch::Udds(s) => s.count(),
            AnySketch::Dds(s) => s.count(),
            AnySketch::Moments(s) => s.count(),
            AnySketch::Gk(s) => s.count(),
            AnySketch::TDigest(s) => s.count(),
        }
    }

    fn memory_footprint(&self) -> usize {
        match self {
            AnySketch::Req(s) => s.memory_footprint(),
            AnySketch::Kll(s) => s.memory_footprint(),
            AnySketch::Udds(s) => s.memory_footprint(),
            AnySketch::Dds(s) => s.memory_footprint(),
            AnySketch::Moments(s) => s.memory_footprint(),
            AnySketch::Gk(s) => s.memory_footprint(),
            AnySketch::TDigest(s) => s.memory_footprint(),
        }
    }

    fn name(&self) -> &'static str {
        self.kind().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_answers() {
        for kind in SketchKind::ALL {
            let mut s = kind.build(42, false);
            for i in 1..=10_000 {
                s.insert(i as f64);
            }
            assert_eq!(s.count(), 10_000);
            let est = s.query(0.5).unwrap();
            assert!(
                (est - 5_000.0).abs() / 10_000.0 < 0.05,
                "{}: median {est}",
                kind.label()
            );
            assert!(s.memory_footprint() > 0);
        }
    }

    #[test]
    fn merge_same_kind_works_for_mergeable() {
        for kind in SketchKind::PAPER_FIVE {
            let mut a = kind.build(1, false);
            let mut b = kind.build(2, false);
            for i in 1..=5_000 {
                a.insert(i as f64);
                b.insert((i + 5_000) as f64);
            }
            a.merge_same(&b).unwrap();
            assert_eq!(a.count(), 10_000, "{}", kind.label());
        }
    }

    #[test]
    fn merge_cross_kind_rejected() {
        let mut a = SketchKind::Kll.build(1, false);
        let b = SketchKind::Dds.build(1, false);
        assert!(a.merge_same(&b).is_err());
    }

    #[test]
    fn labels_match_table3_columns() {
        let labels: Vec<&str> = SketchKind::PAPER_FIVE.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["REQ", "KLL", "UDDS", "DDS", "Moments"]);
    }

    #[test]
    fn moments_compression_per_dataset() {
        use qsketch_datagen::DataSet;
        let compressed = SketchKind::Moments.build_for(1, DataSet::Pareto);
        if let AnySketch::Moments(m) = compressed {
            assert!(m.is_compressed());
        } else {
            panic!("expected Moments");
        }
        let plain = SketchKind::Moments.build_for(1, DataSet::Uniform);
        if let AnySketch::Moments(m) = plain {
            assert!(!m.is_compressed());
        } else {
            panic!("expected Moments");
        }
    }
}

//! Timing helpers for the speed experiments (§4.4), run single-threaded as
//! the paper prescribes.

use std::time::Instant;

/// Time `f` once, returning `(result, elapsed nanoseconds)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as f64)
}

/// Mean and 95 % CI half-width of nanosecond samples.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Mean nanoseconds.
    pub mean_ns: f64,
    /// 1.96·σ/√n half-width.
    pub ci95_ns: f64,
}

/// Run `f` `reps` times (after `warmup` unmeasured executions) and
/// aggregate.
pub fn time_reps(warmup: usize, reps: usize, mut f: impl FnMut()) -> Timing {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    summarize(&samples)
}

/// Summarise nanosecond samples into mean ± CI.
pub fn summarize(samples: &[f64]) -> Timing {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Timing {
        mean_ns: mean,
        ci95_ns: 1.96 * var.sqrt() / n.sqrt(),
    }
}

/// A black-box hint preventing the optimiser from deleting a value the
/// benchmark only computes for its side cost.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures_something() {
        let (v, ns) = time_once(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(ns > 0.0);
    }

    #[test]
    fn summarize_mean() {
        let t = summarize(&[100.0, 200.0, 300.0]);
        assert!((t.mean_ns - 200.0).abs() < 1e-9);
        assert!(t.ci95_ns > 0.0);
    }

    #[test]
    fn summarize_single_sample() {
        let t = summarize(&[500.0]);
        assert_eq!(t.mean_ns, 500.0);
        assert_eq!(t.ci95_ns, 0.0);
    }

    #[test]
    fn time_reps_runs_function() {
        let mut count = 0;
        let t = time_reps(2, 5, || count += 1);
        assert_eq!(count, 7);
        assert!(t.mean_ns >= 0.0);
    }
}

//! The tiny argument convention shared by every experiment binary.
//!
//! * `--quick` (default): paper experiment scaled down to finish on a
//!   laptop in seconds-to-minutes,
//! * `--full`: the paper's §4.2 stream sizes (minutes-to-hours),
//! * `--with-baselines`: additionally run the §5.2 GK / t-digest
//!   baselines,
//! * `--seed <n>`: override the base seed (default 42),
//! * `--runs <n>`: override the number of independent runs,
//! * `--metrics`: run instrumented (where the experiment supports it) and
//!   append a metrics-registry snapshot to the output,
//! * `--threads <list>`: comma-separated worker-thread counts for the
//!   parallel-scaling experiment (e.g. `--threads 1,2,4`; default
//!   1,2,4,8).

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minute streams for smoke tests (used by the integration tests,
    /// which run unoptimised builds).
    Tiny,
    /// Scaled-down streams for fast iteration.
    Quick,
    /// The paper's stream sizes.
    Full,
}

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Quick or full scale.
    pub scale: Scale,
    /// Include GK/t-digest baselines.
    pub with_baselines: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent-runs override (None = experiment default).
    pub runs: Option<usize>,
    /// Record pipeline/sketch metrics and print a registry snapshot.
    pub metrics: bool,
    /// Worker-thread counts for the parallel-scaling experiment
    /// (None = the experiment's default sweep).
    pub threads: Option<Vec<usize>>,
    /// Run a single explicitly-configured sketch instead of the default
    /// set (e.g. `--sketch kll:350`, `--sketch dds:0.02`).
    pub sketch: Option<crate::SketchSpec>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            with_baselines: false,
            seed: 42,
            runs: None,
            metrics: false,
            threads: None,
            sketch: None,
        }
    }
}

impl Args {
    /// Parse from an iterator of argument strings (exposed for testing).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.scale = Scale::Quick,
                "--tiny" => out.scale = Scale::Tiny,
                "--full" => out.scale = Scale::Full,
                "--with-baselines" => out.with_baselines = true,
                "--metrics" => out.metrics = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                }
                "--runs" => {
                    let v = it.next().ok_or("--runs needs a value")?;
                    out.runs = Some(v.parse().map_err(|_| format!("bad runs: {v}"))?);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value (e.g. 1,2,4)")?;
                    let list = v
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&t| t > 0)
                                .ok_or_else(|| format!("bad thread count: {t}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if list.is_empty() {
                        return Err("--threads needs at least one count".into());
                    }
                    out.threads = Some(list);
                }
                "--sketch" => {
                    let v = it.next().ok_or("--sketch needs a spec (e.g. kll:350)")?;
                    out.sketch = Some(v.parse().map_err(|e| format!("{e}"))?);
                }
                "--help" | "-h" => {
                    return Err(concat!(
                        "usage: <experiment> [--tiny|--quick|--full] [--with-baselines] ",
                        "[--metrics] [--seed N] [--runs N] [--threads L] [--sketch SPEC]"
                    )
                    .to_string())
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Number of runs: the explicit override, otherwise `quick_default`
    /// under `--quick` and the paper's 10 under `--full`.
    pub fn runs_or(&self, quick_default: usize) -> usize {
        self.runs.unwrap_or(match self.scale {
            Scale::Tiny => 1,
            Scale::Quick => quick_default,
            Scale::Full => 10,
        })
    }

    /// The sketch set to run: a single `--sketch` override when given,
    /// otherwise the paper's five, plus baselines on demand.
    pub fn sketches(&self) -> Vec<crate::SketchKind> {
        if let Some(spec) = &self.sketch {
            vec![spec.kind()]
        } else if self.with_baselines {
            crate::SketchKind::ALL.to_vec()
        } else {
            crate::SketchKind::PAPER_FIVE.to_vec()
        }
    }

    /// The fully-parameterised specs to run: the `--sketch` override, or
    /// the §4.2 paper configuration of every kind
    /// [`sketches`](Self::sketches) returns. `compress_moments` selects
    /// the arcsinh-transform Moments variant (per-dataset, §4.2).
    pub fn sketch_specs(&self, compress_moments: bool) -> Vec<crate::SketchSpec> {
        if let Some(spec) = &self.sketch {
            vec![spec.clone()]
        } else {
            self.sketches()
                .into_iter()
                .map(|k| crate::SketchSpec::paper(k, compress_moments))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert!(!a.with_baselines);
        assert_eq!(a.seed, 42);
        assert_eq!(a.runs_or(3), 3);
    }

    #[test]
    fn full_scale_and_runs() {
        let a = parse(&["--full", "--seed", "7"]).unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed, 7);
        assert_eq!(a.runs_or(3), 10);
        let b = parse(&["--full", "--runs", "2"]).unwrap();
        assert_eq!(b.runs_or(3), 2);
    }

    #[test]
    fn baselines_flag() {
        let a = parse(&["--with-baselines"]).unwrap();
        assert_eq!(a.sketches().len(), 7);
        assert_eq!(parse(&[]).unwrap().sketches().len(), 5);
    }

    #[test]
    fn metrics_flag() {
        assert!(!parse(&[]).unwrap().metrics);
        assert!(parse(&["--metrics"]).unwrap().metrics);
    }

    #[test]
    fn threads_list() {
        assert_eq!(parse(&[]).unwrap().threads, None);
        assert_eq!(
            parse(&["--threads", "1,2,4"]).unwrap().threads,
            Some(vec![1, 2, 4])
        );
        assert_eq!(parse(&["--threads", "8"]).unwrap().threads, Some(vec![8]));
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "2,x"]).is_err());
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
    }

    #[test]
    fn sketch_override() {
        use crate::{SketchKind, SketchSpec};
        let a = parse(&["--sketch", "kll:200"]).unwrap();
        assert_eq!(a.sketch, Some(SketchSpec::kll(200)));
        assert_eq!(a.sketches(), vec![SketchKind::Kll]);
        assert_eq!(a.sketch_specs(false), vec![SketchSpec::kll(200)]);
        assert!(parse(&["--sketch", "bogus"]).is_err());
        assert!(parse(&["--sketch"]).is_err());
        // No override: paper five at paper parameters.
        assert_eq!(parse(&[]).unwrap().sketch_specs(false).len(), 5);
    }
}

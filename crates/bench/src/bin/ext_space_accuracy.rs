//! Extension experiment: the space/accuracy frontier of every sketch
//! (makes §6's "sample size can be increased" concrete).

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!("{}", qsketch_bench::experiments::ext_space_accuracy::run(&args));
}

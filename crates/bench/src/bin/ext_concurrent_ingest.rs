//! Extension experiment: lock-free handoff cost, wait-free query
//! latency under ingest, and producer scaling of the concurrent engine
//! (beyond the paper; reference behavior: Quancurrent,
//! arXiv:2208.09265).
//!
//! Prints the table; at `--quick`/`--full` scale also writes the raw
//! measurements to `BENCH_concurrent.json` at the repo root (skipped at
//! `--tiny`, which exists for CI smoke runs that should not clobber the
//! committed baseline). The JSON carries an explicit single-CPU caveat
//! — see the experiment module docs.

use qsketch_bench::cli::Scale;

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    let (table, json) = qsketch_bench::experiments::ext_concurrent_ingest::run_with_json(&args);
    print!("{table}");
    if args.scale != Scale::Tiny {
        let path = std::path::Path::new("BENCH_concurrent.json");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

//! Extension experiment: scalar vs. batched insert throughput for the
//! five paper sketches (the committed baseline for the batch kernels).
//!
//! Prints the table; at `--quick`/`--full` scale also writes the raw
//! measurements to `BENCH_insert.json` at the repo root (skipped at
//! `--tiny`, which exists for CI smoke runs that should not clobber the
//! committed baseline). `ci/check.sh` runs the `--quick` scale and fails
//! on the `REGRESSION` marker.

use qsketch_bench::cli::Scale;

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    let (table, json) = qsketch_bench::experiments::ext_insert_throughput::run_with_json(&args);
    print!("{table}");
    if args.scale != Scale::Tiny {
        let path = std::path::Path::new("BENCH_insert.json");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    if table.contains("REGRESSION") {
        std::process::exit(1);
    }
}

//! Regenerates Fig. 4 (data-set histograms) as text plots. `--full` uses
//! a larger sample; `--quick` (default) is near-instant.

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!("{}", qsketch_bench::experiments::fig4_datasets::run(&args));
}

//! Extension experiment: checkpoint overhead and crash recovery of the
//! sharded ingestion engine (beyond the paper; the fault-tolerance story
//! of the §2 Flink deployment).
//!
//! Prints the table; at `--quick`/`--full` scale also writes the raw
//! measurements to `results/ext_checkpoint.json` (skipped at `--tiny`,
//! which exists for CI smoke runs that should not clobber real results).

use qsketch_bench::cli::Scale;

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    let (table, json) = qsketch_bench::experiments::ext_checkpoint::run_with_json(&args);
    print!("{table}");
    if args.scale != Scale::Tiny {
        let path = std::path::Path::new("results").join("ext_checkpoint.json");
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, &json)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

//! Extension experiment: error growth down the rollup cascade — all
//! five paper sketches plus the fused-merge UDDSketch variant, ingested
//! as 64 closed windows into a four-tier rollup store and probed per
//! tier against an exact oracle.
//!
//! Prints the table; at `--quick`/`--full` scale also writes the raw
//! measurements to `BENCH_rollup.json` at the repo root (skipped at
//! `--tiny`, which exists for CI smoke runs that should not clobber the
//! committed baseline).

use qsketch_bench::cli::Scale;

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    let (table, json) = qsketch_bench::experiments::ext_rollup_cascade::run_with_json(&args);
    print!("{table}");
    if args.scale != Scale::Tiny {
        let path = std::path::Path::new("BENCH_rollup.json");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

//! Regenerate the golden wire fixtures under `tests/fixtures/wire/`.
//!
//! The fixtures pin the **previous** (pre-flatwire) format generation on
//! disk: sketch payloads as v1/v2 bytes plus checkpoint envelopes
//! embedding them, together with the exact result bits every payload
//! must keep answering. CI's back-compat canary decodes them with the
//! current reader and compares bit-for-bit (see `tests/wire_fixtures.rs`
//! and FORMATS.md § Compatibility), so the fixtures must **never** be
//! regenerated casually: a diff under `tests/fixtures/wire/` means the
//! legacy encoders changed, which is exactly what the canary exists to
//! catch.
//!
//! Usage: `cargo run -p qsketch-bench --bin make_wire_fixtures -- <dir>`
//! (the directory defaults to `tests/fixtures/wire` relative to the
//! workspace root).

use std::fmt::Write as _;
use std::path::PathBuf;

use qsketch_core::QuantileSketch;
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use qsketch_moments::MomentsSketch;
use qsketch_req::{RankAccuracy, ReqSketch};
use qsketch_streamsim::checkpoint::{RegistryCheckpoint, RegistryEntry, ShardCheckpoint};
use qsketch_uddsketch::UddSketch;

/// Quantiles whose exact result bits the fixtures pin.
const QS: [f64; 6] = [0.01, 0.25, 0.5, 0.9, 0.99, 1.0];
/// Values per fixture stream.
const N: u64 = 60_000;

/// Deterministic xorshift stream in (0, 1).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        // xorshift64* — stable across platforms, no dependencies.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        (bits as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// Positive-only stream (KLL / REQ / Moments).
fn positive_stream() -> impl Iterator<Item = f64> {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
    (0..N).map(move |_| rng.next_unit() * 1000.0)
}

/// Mixed stream with negatives and exact zeros (DDS / UDDS).
fn mixed_stream() -> impl Iterator<Item = f64> {
    let mut rng = Lcg(0xD1B5_4A32_D192_ED03);
    (0..N).map(move |i| {
        if i % 97 == 0 {
            0.0
        } else {
            rng.next_unit() * 1000.0 - 200.0
        }
    })
}

fn record(expected: &mut String, name: &str, sketch: &impl QuantileSketch) {
    write!(expected, "{name} count={}", sketch.count()).unwrap();
    for q in QS {
        let bits = sketch.query(q).expect("fixture sketch answers").to_bits();
        write!(expected, " q{q}={bits:016x}").unwrap();
    }
    expected.push('\n');
}

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| PathBuf::from("tests/fixtures/wire"));
    std::fs::create_dir_all(&dir).expect("fixture dir is creatable");
    let mut expected = String::new();

    let mut kll = KllSketch::with_seed(350, 7);
    for v in positive_stream() {
        kll.insert(v);
    }
    std::fs::write(dir.join("kll.bin"), kll.encode_legacy()).unwrap();
    record(&mut expected, "kll.bin", &kll);

    let mut req = ReqSketch::with_seed(30, RankAccuracy::High, 7);
    for v in positive_stream() {
        req.insert(v);
    }
    std::fs::write(dir.join("req.bin"), req.encode_legacy()).unwrap();
    record(&mut expected, "req.bin", &req);

    let mut dds = DdSketch::unbounded(0.01);
    for v in mixed_stream() {
        dds.insert(v);
    }
    std::fs::write(dir.join("dds.bin"), dds.encode_legacy()).unwrap();
    record(&mut expected, "dds.bin", &dds);

    // Small bucket budget forces uniform collapses (a non-trivial grid).
    let mut udds = UddSketch::new(0.001, 256);
    for v in mixed_stream() {
        udds.insert(v);
    }
    std::fs::write(dir.join("udds.bin"), udds.encode_legacy()).unwrap();
    record(&mut expected, "udds.bin", &udds);

    // A fused-merge history lands on a non-power-of-two grid exponent,
    // which is what the (pre-flatwire) v2 UDDSketch payload carries.
    let mut fused = UddSketch::new(0.001, 256);
    let mut other = UddSketch::new(0.001, 64);
    let mut rng = Lcg(0xBADC_0FFE_E0DD_F00D);
    for _ in 0..N {
        fused.insert(rng.next_unit() * 10.0);
        other.insert(rng.next_unit() * 1e6);
    }
    fused.merge_fused(&other).expect("fused merge");
    std::fs::write(dir.join("udds_fused.bin"), fused.encode_legacy()).unwrap();
    record(&mut expected, "udds_fused.bin", &fused);

    let mut moments = MomentsSketch::with_compression(12);
    for v in positive_stream() {
        moments.insert(v);
    }
    std::fs::write(dir.join("moments.bin"), moments.encode_legacy()).unwrap();
    record(&mut expected, "moments.bin", &moments);

    // Checkpoint envelope (0xC5) embedding the KLL payload: the canary
    // proves the whole file, not just the inner sketch, keeps decoding.
    let ckpt = ShardCheckpoint {
        shard: 1,
        num_shards: 4,
        batch_size: 256,
        values_done: 42_000,
        payload: kll.encode_legacy(),
    };
    std::fs::write(dir.join("checkpoint.ckpt"), ckpt.encode()).unwrap();

    // Registry envelope (0xC6) with two tenants' payloads.
    let registry = RegistryCheckpoint {
        shard: 0,
        num_shards: 2,
        values_done: 2 * N,
        entries: vec![
            RegistryEntry {
                tenant: "acme".into(),
                key: "checkout.latency".into(),
                payload: dds.encode_legacy(),
            },
            RegistryEntry {
                tenant: "globex".into(),
                key: "api.p99".into(),
                payload: udds.encode_legacy(),
            },
        ],
    };
    std::fs::write(dir.join("registry.ckpt"), registry.encode()).unwrap();

    std::fs::write(dir.join("expected.txt"), expected).unwrap();
    println!("fixtures written to {}", dir.display());
}

//! Runs every experiment of the paper in sequence (Tables 3–4,
//! Figs. 5a–8, §4.6–4.7) at the selected scale.

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    use qsketch_bench::experiments as e;
    type Experiment = fn(&qsketch_bench::cli::Args) -> String;
    let runs: [(&str, Experiment); 19] = [
        ("fig4_datasets", e::fig4_datasets::run),
        ("table3_memory", e::table3_memory::run),
        ("fig5a_insertion", e::fig5a_insertion::run),
        ("fig5b_query", e::fig5b_query::run),
        ("fig5c_merge", e::fig5c_merge::run),
        ("fig6_accuracy", e::fig6_accuracy::run),
        ("fig7_kurtosis", e::fig7_kurtosis::run),
        ("fig8_adaptability", e::fig8_adaptability::run),
        ("sec46_late_data", e::sec46_late_data::run),
        ("sec47_window_size", e::sec47_window_size::run),
        ("table4_summary", e::table4_summary::run),
        ("ext_watermark_lag", e::ext_watermark_lag::run),
        ("ext_space_accuracy", e::ext_space_accuracy::run),
        ("ext_parallel_scaling", e::ext_parallel_scaling::run),
        ("ext_concurrent_ingest", e::ext_concurrent_ingest::run),
        ("ext_checkpoint", e::ext_checkpoint::run),
        ("ext_insert_throughput", e::ext_insert_throughput::run),
        ("ext_server_load", e::ext_server_load::run),
        ("metrics_overhead", e::metrics_overhead::run),
    ];
    for (name, run) in runs {
        println!("================================================================");
        println!("== {name}");
        println!("================================================================");
        print!("{}", run(&args));
        println!();
    }
}

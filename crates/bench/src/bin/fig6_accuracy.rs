//! Regenerates the paper experiment implemented in
//! `qsketch_bench::experiments::fig6_accuracy`. Run with `--full` for the
//! paper's stream sizes, `--quick` (default) for a scaled-down run.

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!("{}", qsketch_bench::experiments::fig6_accuracy::run(&args));
}

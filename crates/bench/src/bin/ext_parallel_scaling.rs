//! Extension experiment: parallel insert scaling of the multi-threaded
//! sharded ingestion engine (beyond the paper; reference behavior:
//! Quancurrent, arXiv:2208.09265).
//!
//! Prints the table; at `--quick`/`--full` scale also writes the raw
//! measurements to `results/ext_parallel_scaling.json` (skipped at
//! `--tiny`, which exists for CI smoke runs that should not clobber real
//! results).

use qsketch_bench::cli::Scale;

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    let (table, json) = qsketch_bench::experiments::ext_parallel_scaling::run_with_json(&args);
    print!("{table}");
    if args.scale != Scale::Tiny {
        let path = std::path::Path::new("results").join("ext_parallel_scaling.json");
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, &json)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

//! Extension experiment: bounded-out-of-orderness watermark lag vs
//! late-data loss and accuracy (extends the paper's §4.6).

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!("{}", qsketch_bench::experiments::ext_watermark_lag::run(&args));
}

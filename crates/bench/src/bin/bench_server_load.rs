//! Extension experiment: many-connection load test of the TCP server
//! (`qsketch-server`) — ingest throughput, ack latency percentiles, and
//! noisy-neighbor isolation under a per-tenant quota.
//!
//! Prints the table; at `--quick`/`--full` scale also writes the raw
//! measurements to `BENCH_server.json` at the repo root (skipped at
//! `--tiny`, which exists for CI smoke runs that should not clobber the
//! committed baseline).

use qsketch_bench::cli::Scale;
use qsketch_core::alloccount::CountingAlloc;

// Counting is two relaxed increments per allocation — cheap enough to
// leave on, and it is what makes the allocs/frame column a measurement
// instead of a constant 0. The zero-alloc steady state means the hot
// path never pays it at all.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    let (table, json) = qsketch_bench::experiments::ext_server_load::run_with_json(&args);
    print!("{table}");
    if args.scale != Scale::Tiny {
        let path = std::path::Path::new("BENCH_server.json");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

//! Measures the insert overhead of `qsketch_core::metrics::Instrumented`
//! over bare sketches (see
//! `qsketch_bench::experiments::metrics_overhead`). Run with `--full`
//! for the lowest-noise measurement.

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!(
        "{}",
        qsketch_bench::experiments::metrics_overhead::run(&args)
    );
}

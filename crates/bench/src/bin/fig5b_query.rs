//! Regenerates the paper experiment implemented in
//! `qsketch_bench::experiments::fig5b_query`. Run with `--full` for the
//! paper's stream sizes, `--quick` (default) for a scaled-down run.

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!("{}", qsketch_bench::experiments::fig5b_query::run(&args));
}

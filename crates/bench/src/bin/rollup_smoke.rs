//! Rollup kill -9 smoke for `ci/check.sh`: ingest a deterministic
//! window stream into a disk-spilled three-tier rollup store, print a
//! fixed set of range-query answers bit-exactly, then either exit or
//! (`--serve`) sleep so the harness can `kill -9` the process and
//! re-run with `--recover` — whose output must match the pre-kill
//! answers byte for byte.
//!
//! ```text
//! rollup_smoke --dir DIR --windows N [--serve]   ingest, print, maybe sleep
//! rollup_smoke --dir DIR --recover               recover, print the same answers
//! ```
//!
//! The ladder (1:8, 4:8, 16:4) ages fine slots out well before 32
//! windows, so the smoke exercises ingest → cascade → age-out → range
//! query → crash → recover in one run. KLL with a fixed seed keeps
//! every answer deterministic.

use std::process::ExitCode;

use qsketch_kll::KllSketch;
use qsketch_core::QuantileSketch;
use qsketch_server::config::SERVER_SKETCH_SEED;
use qsketch_streamsim::rollup::{RollupConfig, RollupStore, TierSpec};

/// Values per window.
const WINDOW_VALUES: u64 = 1_000;

fn config(dir: &str) -> RollupConfig {
    RollupConfig::new(vec![
        TierSpec { width: 1, keep: 8 },
        TierSpec { width: 4, keep: 8 },
        TierSpec { width: 16, keep: 4 },
    ])
    .with_spill_dir(dir)
    .with_hot_slots(2)
}

fn window_sketch(w: u64) -> KllSketch {
    let mut sketch = KllSketch::with_seed(200, SERVER_SKETCH_SEED);
    for i in 0..WINDOW_VALUES {
        let x = (w * WINDOW_VALUES + i).wrapping_mul(2_654_435_761) % 100_000;
        sketch.insert(x as f64 / 7.0);
    }
    sketch
}

fn print_answers(store: &RollupStore<KllSketch>) -> Result<(), String> {
    let frontier = store.frontier();
    println!("frontier={frontier}");
    // Full range (coarse tiers), a mid-cascade subrange, a fine recent
    // range, and a mostly-aged-out prefix.
    let probes = [(0, frontier), (16, frontier), (frontier - 4, frontier), (0, 4)];
    for (t0, t1) in probes {
        let answer = store.range_query(t0, t1).map_err(|e| e.to_string())?;
        match answer.sketch {
            Some(sketch) => {
                let p50 = sketch.query(0.5).map_err(|e| e.to_string())?;
                let p99 = sketch.query(0.99).map_err(|e| e.to_string())?;
                println!(
                    "range {t0}..{t1} count={} merged_slots={} p50={:#018x} p99={:#018x}",
                    sketch.count(),
                    answer.merged_slots,
                    p50.to_bits(),
                    p99.to_bits(),
                );
            }
            None => println!("range {t0}..{t1} empty"),
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = None;
    let mut windows = 32u64;
    let mut serve = false;
    let mut recover = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = Some(it.next().ok_or("--dir needs a value")?.clone()),
            "--windows" => {
                windows = it
                    .next()
                    .ok_or("--windows needs a value")?
                    .parse()
                    .map_err(|_| "bad --windows")?;
            }
            "--serve" => serve = true,
            "--recover" => recover = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let dir = dir.ok_or("--dir is required")?;

    let store = if recover {
        RollupStore::recover(config(&dir)).map_err(|e| format!("recover: {e}"))?
    } else {
        let mut store = RollupStore::new(config(&dir)).map_err(|e| format!("config: {e}"))?;
        for w in 0..windows {
            store
                .ingest_window(w, window_sketch(w))
                .map_err(|e| format!("ingest window {w}: {e}"))?;
        }
        store
    };
    print_answers(&store)?;
    if serve {
        println!("ready");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_secs(600));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

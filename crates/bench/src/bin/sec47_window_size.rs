//! Regenerates the paper experiment implemented in
//! `qsketch_bench::experiments::sec47_window_size`. Run with `--full` for the
//! paper's stream sizes, `--quick` (default) for a scaled-down run.

fn main() {
    let args = qsketch_bench::cli::Args::parse();
    print!("{}", qsketch_bench::experiments::sec47_window_size::run(&args));
}

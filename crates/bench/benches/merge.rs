//! Criterion companion to Fig. 5c: pairwise merge cost per sketch (shards
//! fed the §4.1 uniform/binomial/Zipf workloads).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qsketch_bench::{AnySketch, SketchKind};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{BinomialGen, FixedUniform, ValueStream, ZipfGen};
use std::time::Duration;

/// Events per shard sketch before merging.
const SHARD_EVENTS: usize = 100_000;

fn shard(kind: SketchKind, which: usize) -> AnySketch {
    let mut sketch = kind.build(42 + which as u64, false);
    let mut gen: Box<dyn ValueStream> = match which % 3 {
        0 => Box::new(FixedUniform::new(7 + which as u64, 30.0, 100.0)),
        1 => Box::new(BinomialGen::new(7 + which as u64, 100, 0.2)),
        _ => Box::new(ZipfGen::new(7 + which as u64, 20, 0.6)),
    };
    for _ in 0..SHARD_EVENTS {
        sketch.insert(gen.next_value());
    }
    sketch
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge/pairwise");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for kind in SketchKind::ALL {
        if kind == SketchKind::Gk {
            continue; // GK defines no merge (§5.2 baseline)
        }
        let a = shard(kind, 0);
        let b = shard(kind, 1);
        group.bench_function(kind.label(), |bch| {
            bch.iter_batched(
                || a.clone(),
                |mut acc| {
                    acc.merge_same(&b).expect("same-kind merge");
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);

//! Ablations for the Moments sketch:
//!
//! * `arcsinh` compression on/off (the §4.2 log transform) — insertion
//!   cost of the extra transform vs the numerical-stability payoff,
//! * solver grid size (the §4.5.5 accuracy/query-time dial).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_moments::solver::SolverConfig;
use qsketch_moments::MomentsSketch;
use std::time::Duration;

const BATCH: usize = 10_000;

fn bench_moments(c: &mut Criterion) {
    let mut gen = FixedPareto::paper_speed_workload(42);
    let values: Vec<f64> = (0..BATCH).map(|_| gen.next_value()).collect();

    let mut group = c.benchmark_group("ablation/moments_insert");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("raw", |b| {
        b.iter_batched(
            || MomentsSketch::new(12),
            |mut s| {
                for &v in &values {
                    s.insert(v);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("arcsinh_compressed", |b| {
        b.iter_batched(
            || MomentsSketch::with_compression(12),
            |mut s| {
                for &v in &values {
                    s.insert(v);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // Grid-size sweep on query cost (paper default 1024).
    let mut group = c.benchmark_group("ablation/moments_grid");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for grid in [256usize, 1024, 4096] {
        let config = SolverConfig {
            grid_size: grid,
            ..SolverConfig::default()
        };
        let mut sketch = MomentsSketch::with_options(12, true, config);
        let mut gen = FixedPareto::paper_speed_workload(7);
        for _ in 0..200_000 {
            sketch.insert(gen.next_value());
        }
        group.bench_function(format!("grid_{grid}"), |b| {
            b.iter(|| std::hint::black_box(sketch.query(0.99).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_moments);
criterion_main!(benches);

//! Ablation: the index-mapping choice inside DDSketch-family sketches —
//! transcendental `ln` (the paper's configuration) vs IEEE-754
//! bit-interpolated log2 (the DataDog production trick). Faster indexing
//! buys insertion speed at ~1.44× the bucket count.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_ddsketch::{IndexMapping, LinearInterpolatedMapping, LogarithmicMapping};
use std::time::Duration;

const BATCH: usize = 100_000;

fn bench_mappings(c: &mut Criterion) {
    let mut gen = FixedPareto::paper_speed_workload(42);
    let values: Vec<f64> = (0..BATCH).map(|_| gen.next_value()).collect();

    let mut group = c.benchmark_group("ablation/mapping_index");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));

    let log_m = LogarithmicMapping::new(0.01);
    group.bench_function("logarithmic", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &v in &values {
                acc += i64::from(log_m.index(v));
            }
            std::hint::black_box(acc)
        })
    });

    let lin_m = LinearInterpolatedMapping::new(0.01);
    group.bench_function("linear_interpolated", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &v in &values {
                acc += i64::from(IndexMapping::index(&lin_m, v));
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mappings);
criterion_main!(benches);

//! Ablation over the sampling sketches' size parameters: KLL's
//! `max_compactor_size` and ReqSketch's `num_sections` trade retained
//! samples (space, §4.3) against insertion cost — the dial §6 recommends
//! for buying accuracy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_kll::KllSketch;
use qsketch_req::{RankAccuracy, ReqSketch};
use std::time::Duration;

const BATCH: usize = 10_000;

fn bench_sampling_parameters(c: &mut Criterion) {
    let mut gen = FixedPareto::paper_speed_workload(42);
    let values: Vec<f64> = (0..BATCH).map(|_| gen.next_value()).collect();

    let mut group = c.benchmark_group("ablation/kll_k");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));
    for k in [100u16, 350, 800] {
        group.bench_function(format!("k_{k}"), |b| {
            b.iter_batched(
                || KllSketch::with_seed(k, 1),
                |mut s| {
                    for &v in &values {
                        s.insert(v);
                    }
                    s
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation/req_sections");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));
    for k in [10usize, 30, 60] {
        group.bench_function(format!("sections_{k}"), |b| {
            b.iter_batched(
                || ReqSketch::with_seed(k, RankAccuracy::High, 1),
                |mut s| {
                    for &v in &values {
                        s.insert(v);
                    }
                    s
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // HRA vs LRA orientation has identical cost structure; verify.
    let mut group = c.benchmark_group("ablation/req_orientation");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));
    for (name, acc) in [("hra", RankAccuracy::High), ("lra", RankAccuracy::Low)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || ReqSketch::with_seed(30, acc, 1),
                |mut s| {
                    for &v in &values {
                        s.insert(v);
                    }
                    s
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling_parameters);
criterion_main!(benches);

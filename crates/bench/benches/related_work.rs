//! §5.2 related-work comparisons: the head-to-heads the paper cites as
//! grounds for its algorithm selection.
//!
//! * HDR histogram vs DDSketch — "comparable ... on accuracy and
//!   insertion speed but performed worse on merge speed and total sketch
//!   size" (§5.2.2),
//! * Random vs KLL — KLL "extends Random to outperform" it (§3, §5.2.1),
//! * DCS vs KLL — "KLL outperforms DCS in terms of memory usage, speed
//!   and accuracy" (§5.2.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qsketch_baselines::{DyadicCountSketch, HdrHistogram, RandomSketch};
use qsketch_core::sketch::MergeableSketch;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedUniform, ValueStream};
use qsketch_ddsketch::DdSketch;
use qsketch_kll::KllSketch;
use std::time::Duration;

const BATCH: usize = 10_000;

fn workload() -> Vec<f64> {
    let mut gen = FixedUniform::new(42, 1.0, 1_000_000.0);
    (0..BATCH).map(|_| gen.next_value()).collect()
}

fn bench_insert_comparisons(c: &mut Criterion) {
    let values = workload();
    let mut group = c.benchmark_group("related_work/insert");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));

    macro_rules! bench {
        ($name:expr, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter_batched(
                    || $make,
                    |mut s| {
                        for &v in &values {
                            s.insert(v);
                        }
                        s
                    },
                    BatchSize::SmallInput,
                )
            });
        };
    }
    bench!("ddsketch", DdSketch::unbounded(0.0078));
    bench!("hdr_histogram", HdrHistogram::new(7, 100_000_000));
    bench!("kll", KllSketch::with_seed(350, 1));
    bench!("random_mrl", RandomSketch::with_seed(350, 8, 1));
    bench!("dcs", DyadicCountSketch::with_seed(20, 5, 512, 1));
    group.finish();
}

fn bench_merge_comparisons(c: &mut Criterion) {
    let values = workload();
    let mut group = c.benchmark_group("related_work/merge");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    // §5.2.2: HDR merges slower than DDSketch (whole pre-allocated array
    // vs occupied buckets).
    let mut dd_a = DdSketch::unbounded(0.0078);
    let mut dd_b = DdSketch::unbounded(0.0078);
    let mut hdr_a = HdrHistogram::new(7, 100_000_000);
    let mut hdr_b = HdrHistogram::new(7, 100_000_000);
    for &v in &values {
        dd_a.insert(v);
        dd_b.insert(v * 1.7);
        hdr_a.insert(v);
        hdr_b.insert(v * 1.7);
    }
    group.bench_function("ddsketch", |b| {
        b.iter_batched(
            || dd_a.clone(),
            |mut s| {
                s.merge(&dd_b).expect("same gamma");
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("hdr_histogram", |b| {
        b.iter_batched(
            || hdr_a.clone(),
            |mut s| {
                s.merge(&hdr_b).expect("same precision");
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_insert_comparisons, bench_merge_comparisons);
criterion_main!(benches);

//! Criterion companion to Fig. 5b: quantile-query cost per sketch at two
//! fill sizes (the paper's size-dependence axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsketch_bench::SketchKind;
use qsketch_core::quantiles::QUERIED;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use std::time::Duration;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/pareto");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for &n in &[100_000u64, 1_000_000] {
        for kind in SketchKind::ALL {
            let mut sketch = kind.build(42, true);
            let mut gen = FixedPareto::paper_speed_workload(42);
            for _ in 0..n {
                sketch.insert(gen.next_value());
            }
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &sketch,
                |b, sketch| {
                    b.iter(|| {
                        for &q in &QUERIED {
                            std::hint::black_box(sketch.query(q).ok());
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);

//! Ablation: DDSketch's dense-array store vs the bounded collapsing store,
//! and vs UDDSketch's map store — the §4.3/§4.4 claim that the store
//! representation (array vs map) is what separates DDSketch's and
//! UDDSketch's runtimes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use qsketch_ddsketch::store::SparseStore;
use qsketch_ddsketch::DdSketch;
use qsketch_uddsketch::UddSketch;
use std::time::Duration;

const BATCH: usize = 10_000;

fn bench_stores(c: &mut Criterion) {
    let mut gen = FixedPareto::paper_speed_workload(42);
    let values: Vec<f64> = (0..BATCH).map(|_| gen.next_value()).collect();

    let mut group = c.benchmark_group("ablation/store_insert");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("dds_unbounded_dense", |b| {
        b.iter_batched(
            || DdSketch::unbounded(0.01),
            |mut s| {
                for &v in &values {
                    s.insert(v);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dds_collapsing_1024", |b| {
        b.iter_batched(
            || DdSketch::collapsing(0.01, 1024),
            |mut s| {
                for &v in &values {
                    s.insert(v);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dds_sparse_hash", |b| {
        b.iter_batched(
            || DdSketch::with_store(0.01, SparseStore::new(), SparseStore::new()),
            |mut s| {
                for &v in &values {
                    s.insert(v);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("udds_map_store", |b| {
        b.iter_batched(
            || UddSketch::new(0.01, 1024),
            |mut s| {
                for &v in &values {
                    s.insert(v);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // Query-side comparison at equal alpha.
    let mut filled_dds = DdSketch::unbounded(0.01);
    let mut filled_col = DdSketch::collapsing(0.01, 1024);
    let mut filled_udd = UddSketch::new(0.01, 4096);
    let mut gen = FixedPareto::paper_speed_workload(43);
    for _ in 0..1_000_000 {
        let v = gen.next_value();
        filled_dds.insert(v);
        filled_col.insert(v);
        filled_udd.insert(v);
    }
    let mut group = c.benchmark_group("ablation/store_query");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("dds_unbounded_dense", |b| {
        b.iter(|| std::hint::black_box(filled_dds.query(0.99).unwrap()))
    });
    group.bench_function("dds_collapsing_1024", |b| {
        b.iter(|| std::hint::black_box(filled_col.query(0.99).unwrap()))
    });
    group.bench_function("udds_map_store", |b| {
        b.iter(|| std::hint::black_box(filled_udd.query(0.99).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);

//! Criterion companion to Fig. 5a: per-element insertion cost of each
//! sketch on the Pareto speed workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qsketch_bench::SketchKind;
use qsketch_core::QuantileSketch;
use qsketch_datagen::{FixedPareto, ValueStream};
use std::time::Duration;

/// Values inserted per measured batch.
const BATCH: usize = 10_000;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert/pareto");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(BATCH as u64));

    let mut gen = FixedPareto::paper_speed_workload(42);
    let values: Vec<f64> = (0..BATCH).map(|_| gen.next_value()).collect();

    for kind in SketchKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || kind.build(42, true),
                |mut sketch| {
                    for &v in &values {
                        sketch.insert(v);
                    }
                    sketch
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);

//! [`FusedUddSketch`]: a UDDSketch whose *merge* uses the stream-fusion
//! rule ([`UddSketch::merge_fused`], arxiv 2101.06758) instead of the
//! standard collapse-to-align merge.
//!
//! The wrapper exists so merge-driven machinery that is generic over
//! [`MergeableSketch`] — `merge_tree`, the sharded engines, the rollup
//! store — picks up the fused rule without any new trait surface:
//! everything else (inserts, queries, the wire format) delegates to the
//! inner [`UddSketch`] unchanged. The `ext_rollup_cascade` experiment
//! runs the same cascade over both wrappers to measure what the rule
//! buys on merge-heavy rollup paths.

use qsketch_core::codec::{DecodeError, SketchSerialize};
use qsketch_core::sketch::{MergeError, MergeableSketch, QuantileSketch, QueryError};

use crate::UddSketch;

/// UDDSketch with the stream-fusion merge rule as its
/// [`MergeableSketch::merge`]. See [`UddSketch::merge_fused`] for the
/// rule itself.
#[derive(Debug, Clone)]
pub struct FusedUddSketch(UddSketch);

impl FusedUddSketch {
    /// Create a sketch with initial accuracy `alpha_0` and a bucket
    /// budget (the same parameters as [`UddSketch::new`]).
    pub fn new(alpha_0: f64, max_buckets: usize) -> Self {
        Self(UddSketch::new(alpha_0, max_buckets))
    }

    /// The paper's configuration (§4.2), fused merge rule on top.
    pub fn paper_configuration() -> Self {
        Self(UddSketch::paper_configuration())
    }

    /// Wrap an existing [`UddSketch`], keeping its state and switching
    /// its merge behaviour.
    pub fn from_inner(inner: UddSketch) -> Self {
        Self(inner)
    }

    /// The wrapped sketch.
    pub fn inner(&self) -> &UddSketch {
        &self.0
    }

    /// Unwrap back to a standard-merge [`UddSketch`].
    pub fn into_inner(self) -> UddSketch {
        self.0
    }

    /// Current relative-error guarantee α (see
    /// [`UddSketch::current_alpha`]).
    pub fn current_alpha(&self) -> f64 {
        self.0.current_alpha()
    }
}

impl QuantileSketch for FusedUddSketch {
    fn insert(&mut self, value: f64) {
        self.0.insert(value);
    }

    fn insert_n(&mut self, value: f64, count: u64) {
        self.0.insert_n(value, count);
    }

    fn insert_batch(&mut self, values: &[f64]) {
        self.0.insert_batch(values);
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        self.0.query(q)
    }

    fn count(&self) -> u64 {
        self.0.count()
    }

    fn memory_footprint(&self) -> usize {
        self.0.memory_footprint()
    }

    fn name(&self) -> &'static str {
        "UDDS-fused"
    }
}

impl MergeableSketch for FusedUddSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.0.merge_fused(&other.0)
    }
}

impl SketchSerialize for FusedUddSketch {
    fn encode(&self) -> Vec<u8> {
        self.0.encode()
    }

    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        UddSketch::decode(bytes).map(Self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::sketch::merge_tree;

    fn filled(lo: u64, hi: u64, alpha: f64, buckets: usize) -> FusedUddSketch {
        let mut s = FusedUddSketch::new(alpha, buckets);
        for i in lo..hi {
            s.insert(i as f64 + 1.0);
        }
        s
    }

    #[test]
    fn behaves_like_udd_outside_merge() {
        let fused = filled(0, 10_000, 0.01, 1024);
        let mut plain = UddSketch::new(0.01, 1024);
        for i in 0..10_000 {
            plain.insert(i as f64 + 1.0);
        }
        assert_eq!(fused.count(), plain.count());
        for q in [0.05, 0.5, 0.99] {
            assert_eq!(fused.query(q).unwrap(), plain.query(q).unwrap());
        }
        assert_eq!(fused.encode(), plain.encode());
    }

    #[test]
    fn merge_tree_uses_fused_rule_and_preserves_counts() {
        let parts: Vec<FusedUddSketch> = (0..8)
            .map(|i| filled(i * 1_000, (i + 1) * 1_000, 0.01, 64))
            .collect();
        let merged = merge_tree(parts).unwrap().unwrap();
        assert_eq!(merged.count(), 8_000);
        let est = merged.query(0.5).unwrap();
        let alpha = merged.current_alpha();
        assert!(
            ((est - 4_000.0) / 4_000.0).abs() <= alpha + 1e-9,
            "p50 {est} outside α = {alpha}"
        );
    }

    #[test]
    fn round_trips_through_the_wire() {
        let mut a = filled(0, 5_000, 0.005, 32);
        let b = filled(5_000, 10_000, 0.005, 32);
        a.merge(&b).unwrap();
        let restored = FusedUddSketch::decode(&a.encode()).unwrap();
        assert_eq!(restored.count(), a.count());
        assert_eq!(restored.inner().gamma(), a.inner().gamma());
        assert_eq!(
            restored.inner().gamma_exponent(),
            a.inner().gamma_exponent()
        );
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(restored.query(q).unwrap(), a.query(q).unwrap());
        }
    }
}

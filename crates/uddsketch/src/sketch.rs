//! The UDDSketch implementation: map-backed buckets with uniform collapse.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use qsketch_core::fastlog::FastCeilIndexer;
use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};

/// UDDSketch over `f64` values (§3.4).
///
/// Positive values are bucketed by `⌈log_γ(x)⌉` into an ordered map;
/// negative values into a mirrored map; exact zeros into a scalar counter.
/// When the combined bucket count exceeds `max_buckets` the sketch
/// uniformly collapses all adjacent pairs, squaring γ.
#[derive(Debug, Clone)]
pub struct UddSketch {
    /// Current γ (squares on every collapse).
    gamma: f64,
    /// Cached indexer for the current γ (exact `1/ln γ` path plus the
    /// bit-identical ln-free fast path); rebuilt whenever γ changes.
    indexer: FastCeilIndexer,
    /// Initial α the sketch was created with.
    initial_alpha: f64,
    /// Number of uniform collapses performed so far.
    collapses: u32,
    /// Integer grid exponent `m` with `γ = γ₀^m`. The standard collapse
    /// path keeps `m = 2^collapses`; the fused merge rule
    /// ([`merge_fused`](Self::merge_fused)) can move to any coarser
    /// integer grid, so `m` is tracked explicitly and `γ` is always
    /// exactly [`gamma_for_exponent`]`(γ₀, m)`.
    gamma_exponent: u64,
    max_buckets: usize,
    positives: BTreeMap<i32, u64>,
    negatives: BTreeMap<i32, u64>,
    zero_count: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl UddSketch {
    /// Create a sketch with initial accuracy `alpha_0` and a bucket budget.
    pub fn new(alpha_0: f64, max_buckets: usize) -> Self {
        assert!(
            alpha_0 > 0.0 && alpha_0 < 1.0,
            "initial accuracy must lie in (0,1), got {alpha_0}"
        );
        assert!(max_buckets >= 2, "need at least two buckets");
        let gamma = (1.0 + alpha_0) / (1.0 - alpha_0);
        Self {
            gamma,
            indexer: FastCeilIndexer::new(gamma),
            initial_alpha: alpha_0,
            collapses: 0,
            gamma_exponent: 1,
            max_buckets,
            positives: BTreeMap::new(),
            negatives: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Create a sketch targeting final guarantee `alpha_k` after
    /// `num_collapses` collapses (§3.4's inverse deterioration law).
    pub fn with_target(alpha_k: f64, num_collapses: u32, max_buckets: usize) -> Self {
        Self::new(crate::initial_alpha(alpha_k, num_collapses), max_buckets)
    }

    /// The paper's configuration (§4.2): 1024 buckets, 12 collapses,
    /// final α = 0.01.
    pub fn paper_configuration() -> Self {
        Self::with_target(
            crate::PAPER_ALPHA_K,
            crate::PAPER_NUM_COLLAPSES,
            crate::PAPER_MAX_BUCKETS,
        )
    }

    /// Current relative-error guarantee α (derived from the current γ).
    pub fn current_alpha(&self) -> f64 {
        (self.gamma - 1.0) / (self.gamma + 1.0)
    }

    /// Current γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The initial accuracy α₀ the sketch was created with (before any
    /// collapse deteriorated the guarantee).
    pub fn initial_alpha(&self) -> f64 {
        self.initial_alpha
    }

    /// The bucket budget that triggers uniform collapses.
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Uniform collapses performed so far.
    pub fn collapses(&self) -> u32 {
        self.collapses
    }

    /// The integer grid exponent `m` with `γ = γ₀^m`. Stays `2^collapses`
    /// under the standard collapse path; the fused merge rule can land on
    /// any coarser integer grid.
    pub fn gamma_exponent(&self) -> u64 {
        self.gamma_exponent
    }

    /// Number of non-empty buckets across both maps (§4.3, §4.4.2 report
    /// these counts).
    pub fn num_buckets(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    /// Smallest inserted value (exact), `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest inserted value (exact), `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    #[inline]
    fn index_of(&self, x: f64) -> i32 {
        debug_assert!(x > 0.0);
        self.indexer.index_exact(x)
    }

    /// Bucket midpoint `2γ^i/(γ+1)` under the *current* γ.
    #[inline]
    fn value_of(&self, index: i32) -> f64 {
        2.0 * self.gamma.powi(index) / (self.gamma + 1.0)
    }

    /// Uniformly collapse all adjacent `(odd i, i+1)` pairs into `⌈i/2⌉`
    /// (§3.4), squaring γ.
    fn uniform_collapse(&mut self) {
        self.positives = collapse_map(&self.positives);
        self.negatives = collapse_map(&self.negatives);
        // Squaring γ doubles the grid exponent, and `γ² == γ₀^(2m)`
        // holds *exactly* in floating point: appending a zero bit to the
        // exponent is precisely one more squaring in the square-multiply
        // ladder of [`gamma_for_exponent`].
        self.gamma *= self.gamma;
        self.gamma_exponent <<= 1;
        self.indexer = FastCeilIndexer::new(self.gamma);
        self.collapses += 1;
    }

    fn collapse_until_within_budget(&mut self) {
        // Each collapse halves the bucket count, so this terminates.
        while self.num_buckets() > self.max_buckets {
            self.uniform_collapse();
        }
    }

    /// Estimated rank of `x` (count of inserted values `≤ x`).
    pub fn rank(&self, x: f64) -> u64 {
        let mut cum = 0u64;
        if x >= 0.0 {
            cum += self.negatives.values().sum::<u64>();
            cum += self.zero_count;
            if x > 0.0 {
                let xi = self.index_of(x);
                cum += self
                    .positives
                    .range(..=xi)
                    .map(|(_, &c)| c)
                    .sum::<u64>();
            } else if self.zero_count == 0 {
                // x == 0 with no zeros recorded: nothing extra.
            }
        } else {
            let xi = self.index_of(-x);
            cum += self.negatives.range(xi..).map(|(_, &c)| c).sum::<u64>();
        }
        cum
    }

    /// Estimated CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.rank(x) as f64 / self.count as f64
        }
    }

    /// Walk buckets in ascending value order until `rank` is covered.
    fn value_at_rank(&self, rank: u64) -> f64 {
        let mut cum = 0u64;
        for (&i, &c) in self.negatives.iter().rev() {
            cum += c;
            if cum >= rank {
                return -self.value_of(i);
            }
        }
        cum += self.zero_count;
        if cum >= rank {
            return 0.0;
        }
        for (&i, &c) in self.positives.iter() {
            cum += c;
            if cum >= rank {
                return self.value_of(i);
            }
        }
        self.max
    }

    /// Move the sketch onto the coarser grid `γ₀^m_new`, remapping both
    /// bucket maps. Exact (pure integer regrouping) when the old grid
    /// nests in the new one; otherwise each straddling bucket splits
    /// proportionally over the two target buckets it overlaps, with a
    /// deterministic rounded split that preserves the total count.
    fn remap_to_exponent(&mut self, m_new: u64) {
        debug_assert!(m_new > self.gamma_exponent);
        self.positives = remap_map(&self.positives, self.gamma_exponent, m_new);
        self.negatives = remap_map(&self.negatives, self.gamma_exponent, m_new);
        self.gamma_exponent = m_new;
        let gamma0 = (1.0 + self.initial_alpha) / (1.0 - self.initial_alpha);
        self.gamma = gamma_for_exponent(gamma0, m_new);
        self.indexer = FastCeilIndexer::new(self.gamma);
    }

    /// Gentle budget enforcement for the fused merge path: instead of
    /// squaring γ (the standard collapse, which *doubles* the log-bucket
    /// width whether needed or not), find the smallest integer factor
    /// `k ≥ 2` whose regrid fits the budget and move to `γ^k`.
    fn rescale_until_within_budget(&mut self) {
        while self.num_buckets() > self.max_buckets {
            let mut k = 2u64;
            while projected_buckets(&self.positives, k) + projected_buckets(&self.negatives, k)
                > self.max_buckets
            {
                k += 1;
            }
            self.remap_to_exponent(self.gamma_exponent * k);
            self.collapses += 1;
        }
    }

    /// The stream-fusion merge rule (arxiv 2101.06758): merge into the
    /// **coarser of the two grids as it stands** instead of collapsing
    /// both sketches down a shared power-of-two schedule.
    ///
    /// The standard [`merge`](MergeableSketch::merge) aligns γ by
    /// repeatedly *squaring* the finer sketch's γ — each alignment step
    /// deteriorates α by the full collapse law even when the grids are
    /// nearly equal, which is exactly the Fig. 8 weakness that rollup
    /// cascades amplify. The fused rule instead:
    ///
    /// 1. picks the coarser current grid `γ_t = γ₀^max(m_a, m_b)` as the
    ///    target (no pre-collapse of either side),
    /// 2. remaps the finer sketch onto it — exactly when the grids nest
    ///    (`m_t` a multiple of `m_s`), otherwise by proportionally
    ///    splitting each straddling bucket over the ≤ 2 target buckets
    ///    it overlaps (counts preserved exactly),
    /// 3. on budget overflow, rescales by the *smallest* integer factor
    ///    `k ≥ 2` that fits (`γ → γ^k`) instead of repeatedly squaring.
    ///
    /// Like the standard merge this requires equal `initial_alpha`.
    pub fn merge_fused(&mut self, other: &Self) -> Result<(), MergeError> {
        if (self.initial_alpha - other.initial_alpha).abs() > 1e-15 {
            return Err(MergeError::IncompatibleParameters(format!(
                "initial alpha mismatch: {} vs {}",
                self.initial_alpha, other.initial_alpha
            )));
        }
        let m_t = self.gamma_exponent.max(other.gamma_exponent);
        if self.gamma_exponent < m_t {
            self.remap_to_exponent(m_t);
        }
        let remapped;
        let other = if other.gamma_exponent < m_t {
            let mut o = other.clone();
            o.remap_to_exponent(m_t);
            remapped = o;
            &remapped
        } else {
            other
        };
        for (&i, &c) in &other.positives {
            *self.positives.entry(i).or_insert(0) += c;
        }
        for (&i, &c) in &other.negatives {
            *self.negatives.entry(i).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rescale_until_within_budget();
        Ok(())
    }
}

/// `γ₀^m` by left-to-right binary exponentiation (square-and-multiply).
/// The fixed evaluation order makes the result a pure function of
/// `(γ₀, m)` — encoder, decoder, and every merge path agree bit-for-bit
/// — and reduces to the classic repeated squaring (`γ₀²ᶜ`) exactly when
/// `m` is a power of two, so version-1 payloads rederive the same γ they
/// always did.
fn gamma_for_exponent(gamma0: f64, m: u64) -> f64 {
    debug_assert!(m >= 1);
    let mut result = gamma0;
    for b in (0..63 - m.leading_zeros()).rev() {
        result *= result;
        if (m >> b) & 1 == 1 {
            result *= gamma0;
        }
    }
    result
}

/// Regrid a bucket map from `γ₀^m_old` onto the coarser `γ₀^m_new`.
/// In units of `ln γ₀`, source bucket `i` covers `((i−1)·m_old, i·m_old]`
/// and target bucket `j` covers `((j−1)·m_new, j·m_new]` — all integer
/// arithmetic, so the nesting test and overlap splits are exact.
fn remap_map(map: &BTreeMap<i32, u64>, m_old: u64, m_new: u64) -> BTreeMap<i32, u64> {
    debug_assert!(0 < m_old && m_old < m_new);
    let mut out = BTreeMap::new();
    if m_new.is_multiple_of(m_old) {
        // The old grid nests in the new one: every source bucket lies in
        // exactly one target bucket (generalizes the uniform collapse,
        // whose ratio is always 2).
        let r = (m_new / m_old) as i64;
        for (&i, &c) in map {
            let j = (i64::from(i) + r - 1).div_euclid(r) as i32;
            *out.entry(j).or_insert(0) += c;
        }
    } else {
        // Non-nesting grids: a source bucket (narrower than a target
        // bucket) overlaps at most two targets. Split its count in
        // proportion to the log-space overlap, rounding the lower share
        // so the total is preserved exactly.
        let (mo, mn) = (m_old as i128, m_new as i128);
        for (&i, &c) in map {
            let lo = (i128::from(i) - 1) * mo;
            let hi = i128::from(i) * mo;
            let j_lo = (lo.div_euclid(mn) + 1) as i32;
            let j_hi = (hi + mn - 1).div_euclid(mn) as i32;
            if j_lo == j_hi {
                *out.entry(j_lo).or_insert(0) += c;
            } else {
                let cut = i128::from(j_lo) * mn;
                let frac_lo = (cut - lo) as f64 / mo as f64;
                let c_lo = (((c as f64) * frac_lo).round() as u64).min(c);
                let c_hi = c - c_lo;
                if c_lo > 0 {
                    *out.entry(j_lo).or_insert(0) += c_lo;
                }
                if c_hi > 0 {
                    *out.entry(j_hi).or_insert(0) += c_hi;
                }
            }
        }
    }
    out
}

/// Bucket count a map would have after regridding by integer factor `k`.
fn projected_buckets(map: &BTreeMap<i32, u64>, k: u64) -> usize {
    let r = k as i64;
    let mut last = None;
    let mut n = 0;
    for &i in map.keys() {
        let j = (i64::from(i) + r - 1).div_euclid(r);
        if last != Some(j) {
            n += 1;
            last = Some(j);
        }
    }
    n
}

/// Collapse every `(odd i, i+1)` pair of a bucket map into index `⌈i/2⌉`.
fn collapse_map(map: &BTreeMap<i32, u64>) -> BTreeMap<i32, u64> {
    let mut out = BTreeMap::new();
    for (&i, &c) in map {
        // ⌈i/2⌉ for signed i.
        let target = (i + 1).div_euclid(2);
        *out.entry(target).or_insert(0) += c;
    }
    out
}

impl QuantileSketch for UddSketch {
    fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return; // trait-level NaN policy: ignore
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value > 0.0 {
            let i = self.index_of(value);
            *self.positives.entry(i).or_insert(0) += 1;
        } else if value < 0.0 {
            let i = self.index_of(-value);
            *self.negatives.entry(i).or_insert(0) += 1;
        } else {
            self.zero_count += 1;
        }
        self.collapse_until_within_budget();
    }

    /// Insert `count` occurrences of `value` at once (pre-aggregated
    /// ingestion; one map update regardless of weight).
    fn insert_n(&mut self, value: f64, count: u64) {
        if count == 0 || value.is_nan() {
            return;
        }
        self.count += count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value > 0.0 {
            let i = self.index_of(value);
            *self.positives.entry(i).or_insert(0) += count;
        } else if value < 0.0 {
            let i = self.index_of(-value);
            *self.negatives.entry(i).or_insert(0) += count;
        } else {
            self.zero_count += count;
        }
        self.collapse_until_within_budget();
    }

    /// Batch kernel: blocked ln-free index precompute plus single-walk
    /// bucket updates.
    ///
    /// Each 128-value all-positive block (the common case) gets one
    /// vectorizable [`FastCeilIndexer::index_checked`] pass under the
    /// *current* γ, then the precomputed indices are consumed through one
    /// `BTreeMap` entry walk per run of equal indices. A collapse squares
    /// γ and re-indexes every later value, and the scalar path can only
    /// collapse right after creating a bucket — so a value that opens a
    /// new bucket goes in individually with the same immediate budget
    /// check the scalar path performs, and if that check actually
    /// collapsed, the rest of the block's precomputed indices are stale
    /// and get recomputed (collapses are bounded — the paper
    /// configuration performs ~12 across an entire stream — so this is
    /// negligible). That preserves the exact collapse schedule, hence
    /// bit-identical state. Blocks containing NaN, zeros, or negatives
    /// fall back to scalar `insert` per value.
    fn insert_batch(&mut self, values: &[f64]) {
        const BLOCK: usize = 128;
        let mut idx = [0i32; BLOCK];
        // Fixed-size blocks vectorize cleanly (constant trip counts, no
        // bounds checks); the tail and any block containing NaN, zeros,
        // or negatives take the scalar path.
        let mut blocks = values.chunks_exact(BLOCK);
        for block in blocks.by_ref() {
            let block: &[f64; BLOCK] = block.try_into().expect("chunks_exact");
            // Screen + min/max pass. min/max of an all-positive,
            // NaN-free block is order-independent (the cmp-selects are
            // `vminpd`/`vmaxpd`, valid because NaN-containing blocks
            // are discarded), and collapses never read min/max/count.
            let mut all_pos = true;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in block {
                all_pos &= v > 0.0; // also rejects NaN
                lo = if v < lo { v } else { lo };
                hi = if v > hi { v } else { hi };
            }
            if !all_pos {
                for &v in block {
                    self.insert(v);
                }
                continue;
            }
            // Branch-free speculative index pass (vectorizes); if any
            // lane is flagged (provably rare), recompute the block with
            // exact fixups.
            let mut any = false;
            for i in 0..BLOCK {
                let (index, needs_exact) = self.indexer.index_checked(block[i]);
                idx[i] = index;
                any |= needs_exact;
            }
            if any {
                for i in 0..BLOCK {
                    let (index, needs_exact) = self.indexer.index_checked(block[i]);
                    idx[i] = if needs_exact {
                        self.indexer.index_exact(block[i])
                    } else {
                        index
                    };
                }
            }
            self.min = self.min.min(lo);
            self.max = self.max.max(hi);
            self.count += BLOCK as u64;
            let mut i = 0;
            while i < BLOCK {
                let cur = idx[i];
                match self.positives.entry(cur) {
                    Entry::Occupied(e) => {
                        // Existing bucket: no collapse possible, so the
                        // whole run folds into one u64 addition.
                        let mut j = i + 1;
                        while j < BLOCK && idx[j] == cur {
                            j += 1;
                        }
                        *e.into_mut() += (j - i) as u64;
                        i = j;
                    }
                    Entry::Vacant(e) => {
                        e.insert(1);
                        i += 1;
                        let before = self.collapses;
                        self.collapse_until_within_budget();
                        if self.collapses != before {
                            // γ changed: every remaining precomputed
                            // index is stale under the new mapping.
                            for k in i..BLOCK {
                                idx[k] = self.indexer.index_exact(block[k]);
                            }
                        }
                    }
                }
            }
        }
        for &v in blocks.remainder() {
            self.insert(v);
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        Ok(self.value_at_rank(rank).clamp(self.min, self.max))
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        // The paper charges the map-based store three numbers per bucket
        // (map index, bucket index, bucket count; §4.3 "less than 3100
        // numbers for a bucket size of 1024").
        self.num_buckets() * 3 * std::mem::size_of::<u64>()
            + 6 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "UDDS"
    }
}

impl MergeableSketch for UddSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if (self.initial_alpha - other.initial_alpha).abs() > 1e-15 {
            return Err(MergeError::IncompatibleParameters(format!(
                "initial alpha mismatch: {} vs {}",
                self.initial_alpha, other.initial_alpha
            )));
        }
        // Align γ by collapsing the finer sketch (§3.4 "bucket ranges of
        // the two sketches being merged align if they have the same γ").
        // Alignment is by grid exponent, not collapse count: uniform
        // collapses only ever double the exponent, so two sketches whose
        // grids diverged through the fused merge rule (arbitrary integer
        // exponents) may never meet — that is a parameter error here, and
        // what [`UddSketch::merge_fused`] exists for.
        let mut other = other.clone();
        while self.gamma_exponent < other.gamma_exponent {
            self.uniform_collapse();
        }
        while other.gamma_exponent < self.gamma_exponent {
            other.uniform_collapse();
        }
        if self.gamma_exponent != other.gamma_exponent {
            return Err(MergeError::IncompatibleParameters(format!(
                "gamma grids diverged (exponents {} vs {}, a fused-merge \
                 history); use merge_fused",
                self.gamma_exponent, other.gamma_exponent
            )));
        }
        for (&i, &c) in &other.positives {
            *self.positives.entry(i).or_insert(0) += c;
        }
        for (&i, &c) in &other.negatives {
            *self.negatives.entry(i).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // The merged map can exceed the budget (§3.4: merging "potentially
        // performs a costly bucket collapsing operation at the end").
        self.collapse_until_within_budget();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_errors() {
        let s = UddSketch::paper_configuration();
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn within_guarantee_without_collapse() {
        let mut s = UddSketch::new(0.01, 4096);
        for i in 1..=100_000 {
            s.insert(i as f64);
        }
        assert_eq!(s.collapses(), 0);
        for q in [0.05, 0.5, 0.95, 0.99] {
            let truth = (q * 100_000.0_f64).ceil();
            let est = s.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
    }

    #[test]
    fn collapse_squares_gamma_per_collapse() {
        let mut s = UddSketch::new(0.001, 64);
        let g0 = s.gamma();
        // A wide sparse range forces collapses; sparse buckets rarely pair
        // up, so a single budget overflow may need several uniform
        // collapses (each squares γ).
        let mut x = 1.0;
        while s.collapses() == 0 {
            s.insert(x);
            x *= 1.01;
        }
        assert!(s.num_buckets() <= 64);
        let k = s.collapses();
        assert!(k >= 1);
        let expect_gamma = g0.powi(1 << k);
        assert!(
            (s.gamma() - expect_gamma).abs() < 1e-9 * expect_gamma,
            "gamma {} vs g0^(2^{k}) = {expect_gamma}",
            s.gamma()
        );
        // Deterioration law applied k times: alpha' = 2 alpha/(1+alpha^2).
        let mut expect_alpha = 0.001;
        for _ in 0..k {
            expect_alpha = crate::collapsed_alpha(expect_alpha);
        }
        assert!((s.current_alpha() - expect_alpha).abs() < 1e-9);
    }

    #[test]
    fn dense_consecutive_buckets_collapse_once() {
        // When every bucket is occupied, pairs always merge, so one
        // uniform collapse halves the bucket count and suffices.
        let mut s = UddSketch::new(0.01, 64);
        let gamma0 = s.gamma();
        // Fill buckets 1..=65 directly: values gamma^(i-0.5) hit bucket i.
        for i in 1..=65 {
            s.insert(gamma0.powf(i as f64 - 0.5));
        }
        assert_eq!(s.collapses(), 1);
        assert!(s.num_buckets() <= 33);
    }

    #[test]
    fn guarantee_holds_after_collapses() {
        // Start tight, collapse several times, verify the *current* alpha
        // still bounds the observed error.
        let mut s = UddSketch::with_target(0.01, 12, 256);
        let mut values = Vec::new();
        let mut x = 1e-3;
        for _ in 0..100_000 {
            x = if x > 1e7 { 1e-3 } else { x * 1.00025 };
            values.push(x);
            s.insert(x);
        }
        assert!(s.collapses() > 0, "test needs at least one collapse");
        // The guarantee that must hold at all times is the *current* alpha
        // derived from the deterioration law (§3.4). (Whether it stays
        // under the 0.01 target depends on whether the anticipated
        // num_collapses was exceeded; this stream deliberately collapses
        // beyond it.)
        let alpha = s.current_alpha();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.05, 0.5, 0.95, 0.99] {
            let truth = values[(q * values.len() as f64).ceil() as usize - 1];
            let est = s.query(q).unwrap();
            let rel = ((est - truth) / truth).abs();
            assert!(rel <= alpha + 1e-9, "q={q} rel={rel} alpha={alpha}");
        }
    }

    #[test]
    fn paper_configuration_stays_under_final_guarantee() {
        // §4.5.5: UDDSketch's realised alpha is *below* the 0.01 target when
        // fewer than num_collapses collapses occur.
        let mut s = UddSketch::paper_configuration();
        for i in 1..=1_000_000u64 {
            s.insert(i as f64);
        }
        assert!(s.current_alpha() <= 0.01 + 1e-12);
        let est = s.query(0.99).unwrap();
        let truth = 990_000.0;
        assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9);
    }

    #[test]
    fn handles_zeros_and_negatives() {
        let mut s = UddSketch::new(0.01, 1024);
        for v in [-8.0, -2.0, 0.0, 2.0, 8.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.query(0.6).unwrap(), 0.0);
        let low = s.query(0.2).unwrap();
        assert!(((low + 8.0) / 8.0).abs() <= 0.01 + 1e-9, "low {low}");
    }

    #[test]
    fn merge_aligned_sketches() {
        let mut a = UddSketch::new(0.01, 1024);
        let mut b = UddSketch::new(0.01, 1024);
        for i in 1..=10_000 {
            a.insert(i as f64);
            b.insert((i + 10_000) as f64);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 20_000);
        let est = a.query(0.5).unwrap();
        assert!(((est - 10_000.0) / 10_000.0).abs() <= 0.01 + 1e-9);
    }

    #[test]
    fn merge_collapses_finer_sketch_to_align() {
        let mut coarse = UddSketch::new(0.001, 32);
        let mut fine = UddSketch::new(0.001, 32);
        // Force collapses in `coarse` only.
        let mut x = 1.0;
        for _ in 0..10_000 {
            x = if x > 1e6 { 1.0 } else { x * 1.01 };
            coarse.insert(x);
        }
        for i in 1..=1000 {
            fine.insert(i as f64);
        }
        assert!(coarse.collapses() > fine.collapses());
        let before = coarse.collapses();
        coarse.merge(&fine).unwrap();
        assert!(coarse.collapses() >= before);
        assert_eq!(coarse.count(), 11_000);
    }

    #[test]
    fn merge_rejects_different_initial_alpha() {
        let mut a = UddSketch::new(0.01, 64);
        let b = UddSketch::new(0.02, 64);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn gamma_for_exponent_matches_repeated_squaring() {
        let gamma0 = (1.0 + 0.01) / (1.0 - 0.01);
        let mut squared = gamma0;
        for c in 0..8 {
            assert_eq!(
                gamma_for_exponent(gamma0, 1u64 << c),
                squared,
                "exponent 2^{c}"
            );
            squared *= squared;
        }
        // Non-powers of two stay exact pure functions of (γ₀, m).
        for m in [3u64, 5, 6, 7, 12, 100] {
            let g = gamma_for_exponent(gamma0, m);
            assert!(g > 1.0 && g.is_finite());
            assert_eq!(g, gamma_for_exponent(gamma0, m));
        }
    }

    #[test]
    fn fused_merge_equals_standard_on_aligned_grids() {
        // Same γ on both sides: the fused rule adds buckets directly,
        // exactly like the standard merge (no collapse triggered).
        let mut a1 = UddSketch::new(0.01, 1024);
        let mut b1 = UddSketch::new(0.01, 1024);
        for i in 1..=10_000 {
            a1.insert(i as f64);
            b1.insert((i + 10_000) as f64);
        }
        let mut a2 = a1.clone();
        let b2 = b1.clone();
        a1.merge(&b1).unwrap();
        a2.merge_fused(&b2).unwrap();
        assert_eq!(a1.count(), a2.count());
        assert_eq!(a1.gamma(), a2.gamma());
        for q in [0.05, 0.5, 0.99] {
            assert_eq!(a1.query(q).unwrap(), a2.query(q).unwrap(), "q={q}");
        }
    }

    #[test]
    fn fused_merge_adopts_coarser_grid_without_squaring() {
        let mut coarse = UddSketch::new(0.001, 32);
        let mut fine = UddSketch::new(0.001, 32);
        let mut x = 1.0;
        for _ in 0..10_000 {
            x = if x > 1e6 { 1.0 } else { x * 1.01 };
            coarse.insert(x);
        }
        for i in 1..=1000 {
            fine.insert(i as f64);
        }
        assert!(coarse.gamma_exponent() > fine.gamma_exponent());
        let target = coarse.gamma_exponent();
        let mut fused = coarse.clone();
        fused.merge_fused(&fine).unwrap();
        assert_eq!(fused.count(), 11_000);
        // The fused target grid is the coarser side's grid as it stood —
        // never finer, and only coarser if the budget overflowed.
        assert!(fused.gamma_exponent() >= target);
        assert!(fused.num_buckets() <= 32);
    }

    /// Two no-collapse sketches over bucket positions that skip every
    /// multiple of 3: the 32-bucket union projects to 24 targets under
    /// k = 2 (over a 16 budget) but exactly 16 under k = 3, so the
    /// gentle rescale must land on k = 3 — a grid the standard
    /// power-of-two schedule can never reach.
    fn skip3_pair(budget: usize) -> (UddSketch, UddSketch) {
        let mut a = UddSketch::new(0.01, budget);
        let mut b = UddSketch::new(0.01, budget);
        let gamma0 = a.gamma();
        let positions: Vec<u64> = (1u64..).filter(|i| !i.is_multiple_of(3)).take(32).collect();
        for &i in &positions[..16] {
            a.insert(gamma0.powf(i as f64 - 0.5));
        }
        for &i in &positions[16..] {
            b.insert(gamma0.powf(i as f64 - 0.5));
        }
        assert_eq!((a.collapses(), b.collapses()), (0, 0));
        (a, b)
    }

    #[test]
    fn fused_rescale_uses_smallest_sufficient_factor() {
        let budget = 16;
        let (a, b) = skip3_pair(budget);
        let mut fused = a.clone();
        fused.merge_fused(&b).unwrap();
        assert_eq!(fused.count(), 32);
        assert!(fused.num_buckets() <= budget);
        assert_eq!(
            fused.gamma_exponent(),
            3,
            "k=2 leaves 24 buckets, k=3 exactly 16"
        );
        // The standard merge can only square: strictly coarser grid.
        let mut std = a.clone();
        std.merge(&b).unwrap();
        assert!(std.gamma_exponent() > fused.gamma_exponent());
        assert!(std.current_alpha() > fused.current_alpha());
    }

    #[test]
    fn fused_merge_splits_non_nesting_grids_preserving_count() {
        // An m=3 sketch (via gentle rescale, see skip3_pair) merged
        // with an m=2 sketch (one standard collapse): 2 ∤ 3, so the
        // remap takes the proportional-split path.
        let budget = 16;
        let (mut a, b) = skip3_pair(budget);
        a.merge_fused(&b).unwrap();
        assert_eq!(a.gamma_exponent(), 3);
        let gamma0 = (1.0 + a.initial_alpha()) / (1.0 - a.initial_alpha());
        let mut two = UddSketch::new(0.01, budget);
        for i in 1..=(2 * budget) {
            two.insert(gamma0.powf(i as f64 - 0.5));
        }
        assert_eq!(two.gamma_exponent(), 2);
        let before = a.count() + two.count();
        a.merge_fused(&two).unwrap();
        assert_eq!(a.count(), before, "split rounding must preserve totals");
        assert!(a.gamma_exponent() >= 3);
        assert!(a.num_buckets() <= budget);
        // Every mass is still inside [min, max] and quantiles answer.
        let est = a.query(0.5).unwrap();
        assert!(est >= a.min() && est <= a.max());
    }

    #[test]
    fn standard_merge_rejects_diverged_fused_grids() {
        let budget = 16;
        let (mut a, b) = skip3_pair(budget);
        a.merge_fused(&b).unwrap();
        assert_eq!(a.gamma_exponent(), 3); // not reachable by doubling
        let mut std = UddSketch::new(0.01, budget);
        std.insert(1.0);
        assert!(matches!(
            std.merge(&a),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn collapse_map_pairs_correctly() {
        let mut m = BTreeMap::new();
        // (1,2)->1, (3,4)->2, (-1,0)->0, (-3,-2)->-1
        for i in [-3, -2, -1, 0, 1, 2, 3, 4] {
            m.insert(i, 1u64);
        }
        let c = collapse_map(&m);
        assert_eq!(c.get(&-1), Some(&2));
        assert_eq!(c.get(&0), Some(&2));
        assert_eq!(c.get(&1), Some(&2));
        assert_eq!(c.get(&2), Some(&2));
        assert_eq!(c.values().sum::<u64>(), 8);
    }

    #[test]
    fn bucket_budget_respected() {
        let mut s = UddSketch::new(1e-5, 128);
        let mut x = 1e-6;
        for _ in 0..100_000 {
            x = if x > 1e9 { 1e-6 } else { x * 1.001 };
            s.insert(x);
        }
        assert!(s.num_buckets() <= 128);
    }

    #[test]
    fn insert_n_equals_repeated_inserts() {
        let mut a = UddSketch::new(0.01, 1024);
        let mut b = UddSketch::new(0.01, 1024);
        for (v, n) in [(3.5, 100u64), (42.0, 17), (0.0, 5), (-2.0, 3)] {
            a.insert_n(v, n);
            for _ in 0..n {
                b.insert(v);
            }
        }
        assert_eq!(a.count(), b.count());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(a.query(q).unwrap(), b.query(q).unwrap(), "q={q}");
        }
    }

    #[test]
    fn rank_and_cdf() {
        let mut s = UddSketch::new(0.01, 4096);
        let n = 10_000;
        for i in 1..=n {
            s.insert(i as f64);
        }
        for x in [100.0, 5_000.0, 9_999.0] {
            let est = s.rank(x) as f64;
            assert!((est - x).abs() / (n as f64) < 0.02, "rank({x}) = {est}");
        }
        assert!((s.cdf(2_500.0) - 0.25).abs() < 0.02);
        assert_eq!(s.rank(0.0), 0);
    }

    #[test]
    fn quantiles_monotone() {
        let mut s = UddSketch::paper_configuration();
        let mut x = 0.5;
        for _ in 0..20_000 {
            x = (x * 16807.0 + 3.7) % 5000.0 + 0.01;
            s.insert(x);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 1..=50 {
            let v = s.query(i as f64 / 50.0).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }
}

/// Wire format: magic `0xDD`. Version 1 encodes the initial α, the
/// collapse count (γ is rederived by squaring, keeping the deterioration
/// law exact), and both bucket maps. Version 2 appends the explicit grid
/// exponent after the collapse count and is emitted **only** when the
/// exponent is not `2^collapses` (a fused-merge history) — a sketch with
/// a pure standard history still encodes byte-identical version-1
/// payloads, so old readers keep decoding everything they could before.
pub use codec::MAGIC as WIRE_MAGIC;

mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
    use qsketch_core::flatwire::{self, BucketRunCursor, FlatReader, RunDirection, SketchView};
    use qsketch_core::sketch::SketchError;

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0xDD;
    const LEGACY_VERSION: u8 = 2;
    const FLAT_VERSION: u8 = 3;
    const MAX_BUCKETS_WIRE: u64 = 1 << 22;

    fn write_map(w: &mut Writer, map: &BTreeMap<i32, u64>) {
        w.varint(map.len() as u64);
        for (&i, &c) in map {
            w.i32(i);
            w.varint(c);
        }
    }

    fn read_map(r: &mut Reader<'_>) -> Result<BTreeMap<i32, u64>, DecodeError> {
        let n = r.varint()?;
        if n > MAX_BUCKETS_WIRE {
            return Err(DecodeError::Corrupt(format!("{n} buckets exceeds limit")));
        }
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let i = r.i32()?;
            let c = r.varint()?;
            map.insert(i, c);
        }
        Ok(map)
    }

    /// Sum both maps plus the zero counter with overflow detection
    /// (hostile payloads can carry counts that sum past `u64::MAX`).
    fn map_totals(
        positives: &BTreeMap<i32, u64>,
        negatives: &BTreeMap<i32, u64>,
        zero_count: u64,
    ) -> Option<u64> {
        positives
            .values()
            .chain(negatives.values())
            .try_fold(zero_count, |acc, &c| acc.checked_add(c))
    }

    /// The fixed-position scalar fields of a v3 payload.
    struct FlatHeader {
        initial_alpha: f64,
        collapses: u64,
        gamma_exponent: u64,
        max_buckets: usize,
        zero_count: u64,
        count: u64,
        min: f64,
        max: f64,
    }

    fn read_flat_header(r: &mut FlatReader<'_>) -> Result<FlatHeader, DecodeError> {
        let initial_alpha = r.f64()?;
        if !(initial_alpha > 0.0 && initial_alpha < 1.0) {
            return Err(DecodeError::Corrupt(format!(
                "initial alpha {initial_alpha} out of range"
            )));
        }
        let collapses = r.uvarint()?;
        if collapses > 64 {
            return Err(DecodeError::Corrupt(format!("{collapses} collapses")));
        }
        let gamma_exponent = r.uvarint()?;
        if gamma_exponent == 0 {
            return Err(DecodeError::Corrupt("grid exponent 0".into()));
        }
        let max_buckets = r.uvarint()? as usize;
        if !(2..=(MAX_BUCKETS_WIRE as usize)).contains(&max_buckets) {
            return Err(DecodeError::Corrupt(format!("max_buckets {max_buckets}")));
        }
        let zero_count = r.uvarint()?;
        let count = r.uvarint()?;
        let min = r.f64()?;
        let max = r.f64()?;
        if min.is_nan() || max.is_nan() {
            return Err(DecodeError::Corrupt("NaN extremes".into()));
        }
        if count > 0 && min > max {
            return Err(DecodeError::Corrupt("min above max".into()));
        }
        Ok(FlatHeader {
            initial_alpha,
            collapses,
            gamma_exponent,
            max_buckets,
            zero_count,
            count,
            min,
            max,
        })
    }

    /// Rebuild γ from a v3 header via the square-multiply ladder (exactly
    /// the encoder-side [`gamma_for_exponent`] sequence) and reject bases
    /// that collapsed to 1 or overflowed to infinity.
    fn flat_gamma(h: &FlatHeader) -> Result<f64, DecodeError> {
        let gamma0 = (1.0 + h.initial_alpha) / (1.0 - h.initial_alpha);
        let gamma = super::gamma_for_exponent(gamma0, h.gamma_exponent);
        if !(gamma > 1.0 && gamma.is_finite()) {
            return Err(DecodeError::Corrupt(format!(
                "alpha {} with grid exponent {} yields unusable gamma {gamma}",
                h.initial_alpha, h.gamma_exponent
            )));
        }
        Ok(gamma)
    }

    /// Read one bucket map's run header, returning `(bucket count, run
    /// bytes)`.
    fn read_flat_run<'a>(r: &mut FlatReader<'a>) -> Result<(u64, &'a [u8]), DecodeError> {
        let n = r.uvarint()?;
        if n > MAX_BUCKETS_WIRE {
            return Err(DecodeError::Corrupt(format!("{n} buckets exceeds limit")));
        }
        let byte_len = r.uvarint()?;
        let byte_len = usize::try_from(byte_len)
            .ok()
            .filter(|&b| b <= r.remaining())
            .ok_or(DecodeError::UnexpectedEnd)?;
        Ok((n, r.slice(byte_len)?))
    }

    /// Append a bucket map as a delta-compressed run with a `(count, byte
    /// length)` header. Negative maps are written highest-index-first
    /// (ascending value order).
    fn write_flat_map(out: &mut Vec<u8>, map: &BTreeMap<i32, u64>, descending: bool) {
        let mut buckets: Vec<(i32, u64)> = map.iter().map(|(&i, &c)| (i, c)).collect();
        if descending {
            buckets.reverse();
        }
        let mut run = Vec::new();
        flatwire::write_bucket_run(&mut run, &buckets);
        flatwire::write_uvarint(out, buckets.len() as u64);
        flatwire::write_uvarint(out, run.len() as u64);
        out.extend_from_slice(&run);
    }

    /// Drain a run back into an ordered bucket map, enforcing the run's
    /// byte length.
    fn read_map_from_run(
        n: u64,
        run: &[u8],
        direction: RunDirection,
    ) -> Result<BTreeMap<i32, u64>, DecodeError> {
        let mut cursor = BucketRunCursor::new(run, n, direction, i64::from(i32::MAX));
        let mut map = BTreeMap::new();
        while let Some((i, c)) = cursor.next()? {
            let slot = map.entry(i).or_insert(0u64);
            *slot = slot
                .checked_add(c)
                .ok_or_else(|| DecodeError::Corrupt("bucket count overflow".into()))?;
        }
        if cursor.bytes_read() != run.len() {
            return Err(DecodeError::Corrupt("bucket run length mismatch".into()));
        }
        Ok(map)
    }

    impl UddSketch {
        /// Encode in the previous wire generation (magic `0xDD`, version 1
        /// for standard power-of-two grids, version 2 when the fused merge
        /// rule landed on an arbitrary grid exponent). Kept so the
        /// committed back-compat fixtures can be regenerated and so
        /// operators can write payloads for pre-v3 readers.
        pub fn encode_legacy(&self) -> Vec<u8> {
            let standard_grid = self.collapses < 64
                && self.gamma_exponent == 1u64 << self.collapses;
            let version = if standard_grid { 1 } else { LEGACY_VERSION };
            let mut w = Writer::with_header(MAGIC, version);
            w.f64(self.initial_alpha);
            w.varint(u64::from(self.collapses));
            if !standard_grid {
                w.varint(self.gamma_exponent);
            }
            w.varint(self.max_buckets as u64);
            w.varint(self.zero_count);
            w.varint(self.count);
            w.f64(self.min);
            w.f64(self.max);
            write_map(&mut w, &self.positives);
            write_map(&mut w, &self.negatives);
            w.finish()
        }

        /// Decode a pre-flatwire (v1/v2) payload.
        fn decode_legacy(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
            let initial_alpha = r.f64()?;
            if !(initial_alpha > 0.0 && initial_alpha < 1.0) {
                return Err(DecodeError::Corrupt(format!(
                    "initial alpha {initial_alpha} out of range"
                )));
            }
            let collapses = r.varint()?;
            if collapses > 64 {
                return Err(DecodeError::Corrupt(format!("{collapses} collapses")));
            }
            let explicit_exponent = if r.version() >= 2 {
                let m = r.varint()?;
                if m == 0 {
                    return Err(DecodeError::Corrupt("grid exponent 0".into()));
                }
                Some(m)
            } else {
                None
            };
            let max_buckets = r.varint()? as usize;
            if !(2..=(MAX_BUCKETS_WIRE as usize)).contains(&max_buckets) {
                return Err(DecodeError::Corrupt(format!("max_buckets {max_buckets}")));
            }
            let zero_count = r.varint()?;
            let count = r.varint()?;
            let min = r.f64()?;
            let max = r.f64()?;
            if min.is_nan() || max.is_nan() {
                return Err(DecodeError::Corrupt("NaN extremes".into()));
            }
            if count > 0 && min > max {
                return Err(DecodeError::Corrupt("min above max".into()));
            }
            let positives = read_map(&mut r)?;
            let negatives = read_map(&mut r)?;
            r.expect_exhausted()?;
            if map_totals(&positives, &negatives, zero_count) != Some(count) {
                return Err(DecodeError::Corrupt(format!(
                    "bucket totals disagree with count {count}"
                )));
            }
            // Rebuild gamma by the exact encoder-side sequence so the
            // deterioration law stays bit-identical: repeated squaring
            // for version-1 payloads, the square-multiply ladder for an
            // explicit version-2 grid exponent (the two agree exactly on
            // power-of-two exponents).
            let gamma0 = (1.0 + initial_alpha) / (1.0 - initial_alpha);
            let mut gamma = gamma0;
            if let Some(m) = explicit_exponent {
                gamma = super::gamma_for_exponent(gamma0, m);
            } else {
                for _ in 0..collapses {
                    gamma *= gamma;
                }
            }
            // A subnormal-tiny alpha passes the range check but rounds
            // gamma to exactly 1; overflowing squarings reach infinity.
            // Neither is a usable bucket base.
            if !(gamma > 1.0 && gamma.is_finite()) {
                return Err(DecodeError::Corrupt(format!(
                    "alpha {initial_alpha} with {collapses} collapses yields \
                     unusable gamma {gamma}"
                )));
            }
            // With a finite γ > 1 the implicit power-of-two exponent is
            // far below 2^63, so the shift cannot overflow.
            let gamma_exponent = explicit_exponent.unwrap_or(1u64 << collapses);
            Ok(Self {
                gamma,
                indexer: FastCeilIndexer::new(gamma),
                initial_alpha,
                collapses: collapses as u32,
                gamma_exponent,
                max_buckets,
                positives,
                negatives,
                zero_count,
                count,
                min,
                max,
            })
        }
    }

    impl SketchSerialize for UddSketch {
        fn encode(&self) -> Vec<u8> {
            let mut out = vec![MAGIC, FLAT_VERSION];
            flatwire::write_f64(&mut out, self.initial_alpha);
            flatwire::write_uvarint(&mut out, u64::from(self.collapses));
            flatwire::write_uvarint(&mut out, self.gamma_exponent);
            flatwire::write_uvarint(&mut out, self.max_buckets as u64);
            flatwire::write_uvarint(&mut out, self.zero_count);
            flatwire::write_uvarint(&mut out, self.count);
            flatwire::write_f64(&mut out, self.min);
            flatwire::write_f64(&mut out, self.max);
            write_flat_map(&mut out, &self.positives, false);
            write_flat_map(&mut out, &self.negatives, true);
            out
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return Self::decode_legacy(bytes);
            }
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            let gamma = flat_gamma(&h)?;
            let (pos_n, pos_run) = read_flat_run(&mut r)?;
            let positives = read_map_from_run(pos_n, pos_run, RunDirection::Ascending)?;
            let (neg_n, neg_run) = read_flat_run(&mut r)?;
            let negatives = read_map_from_run(neg_n, neg_run, RunDirection::Descending)?;
            r.expect_exhausted()?;
            if map_totals(&positives, &negatives, h.zero_count) != Some(h.count) {
                return Err(DecodeError::Corrupt(format!(
                    "bucket totals disagree with count {}",
                    h.count
                )));
            }
            Ok(Self {
                gamma,
                indexer: FastCeilIndexer::new(gamma),
                initial_alpha: h.initial_alpha,
                collapses: h.collapses as u32,
                gamma_exponent: h.gamma_exponent,
                max_buckets: h.max_buckets,
                positives,
                negatives,
                zero_count: h.zero_count,
                count: h.count,
                min: h.min,
                max: h.max,
            })
        }
    }

    impl SketchView for UddSketch {
        fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                Ok(read_flat_header(&mut r)?.count)
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.f64()?; // initial alpha
                r.varint()?; // collapses
                if r.version() >= 2 {
                    r.varint()?; // grid exponent
                }
                r.varint()?; // max_buckets
                r.varint()?; // zero_count
                r.varint()
            }
        }

        fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                let h = read_flat_header(&mut r)?;
                Ok((h.min, h.max))
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.f64()?; // initial alpha
                r.varint()?; // collapses
                if r.version() >= 2 {
                    r.varint()?; // grid exponent
                }
                r.varint()?; // max_buckets
                r.varint()?; // zero_count
                r.varint()?; // count
                Ok((r.f64()?, r.f64()?))
            }
        }

        fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return flatwire::quantile_via_decode::<Self>(bytes, q);
            }
            check_quantile(q)?;
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            if h.count == 0 {
                return Err(QueryError::Empty.into());
            }
            let gamma = flat_gamma(&h)?;
            // Same rank arithmetic and walk order as the in-memory
            // `value_at_rank`: negatives in ascending value order (the
            // wire already stores them highest-index-first), then zeros,
            // then positives; bucket midpoint `2γ^i/(γ+1)` throughout.
            let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
            let (pos_n, pos_run) = read_flat_run(&mut r)?;
            let (neg_n, neg_run) = read_flat_run(&mut r)?;
            let mut cum = 0u64;
            let overflow = || DecodeError::Corrupt("bucket counts overflow".into());
            let mut negatives =
                BucketRunCursor::new(neg_run, neg_n, RunDirection::Descending, i64::from(i32::MAX));
            let mut est = None;
            while let Some((i, c)) = negatives.next()? {
                cum = cum.checked_add(c).ok_or_else(overflow)?;
                if cum >= rank {
                    est = Some(-(2.0 * gamma.powi(i) / (gamma + 1.0)));
                    break;
                }
            }
            if est.is_none() {
                cum = cum.checked_add(h.zero_count).ok_or_else(overflow)?;
                if cum >= rank {
                    est = Some(0.0);
                }
            }
            if est.is_none() {
                let mut positives = BucketRunCursor::new(
                    pos_run,
                    pos_n,
                    RunDirection::Ascending,
                    i64::from(i32::MAX),
                );
                while let Some((i, c)) = positives.next()? {
                    cum = cum.checked_add(c).ok_or_else(overflow)?;
                    if cum >= rank {
                        est = Some(2.0 * gamma.powi(i) / (gamma + 1.0));
                        break;
                    }
                }
            }
            // Rank beyond the stored totals falls back to the tracked max,
            // exactly as the in-memory walk does.
            Ok(est.unwrap_or(h.max).clamp(h.min, h.max))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_preserves_queries_and_alpha() {
            let mut s = UddSketch::with_target(0.01, 12, 256);
            let mut x = 1e-3;
            for _ in 0..50_000 {
                x = if x > 1e6 { 1e-3 } else { x * 1.0004 };
                s.insert(x);
            }
            assert!(s.collapses() > 0);
            let restored = UddSketch::decode(&s.encode()).unwrap();
            assert_eq!(restored.count(), s.count());
            assert_eq!(restored.collapses(), s.collapses());
            assert_eq!(restored.gamma(), s.gamma());
            for q in [0.05, 0.5, 0.99] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap(), "q={q}");
            }
        }

        #[test]
        fn decoded_sketch_keeps_inserting() {
            let mut s = UddSketch::paper_configuration();
            for i in 1..=1_000 {
                s.insert(i as f64);
            }
            let mut restored = UddSketch::decode(&s.encode()).unwrap();
            for i in 1_001..=2_000 {
                restored.insert(i as f64);
            }
            assert_eq!(restored.count(), 2_000);
            let est = restored.query(0.5).unwrap();
            assert!(((est - 1_000.0) / 1_000.0).abs() <= restored.current_alpha() + 1e-9);
        }

        #[test]
        fn merged_after_decode() {
            use qsketch_core::sketch::MergeableSketch;
            let mut a = UddSketch::new(0.01, 512);
            let mut b = UddSketch::new(0.01, 512);
            for i in 1..=1_000 {
                a.insert(i as f64);
                b.insert(i as f64 + 1_000.0);
            }
            let mut restored = UddSketch::decode(&a.encode()).unwrap();
            restored.merge(&b).unwrap();
            assert_eq!(restored.count(), 2_000);
        }

        #[test]
        fn count_mismatch_rejected() {
            let mut s = UddSketch::new(0.01, 64);
            s.insert(5.0);
            s.insert(7.0);
            let mut bytes = s.encode();
            let last = bytes.len() - 1;
            bytes[last] = bytes[last].wrapping_add(1);
            assert!(UddSketch::decode(&bytes).is_err());
        }

        fn mixed_sketch() -> UddSketch {
            let mut s = UddSketch::new(0.001, 256);
            for i in 1..=50_000u64 {
                match i % 97 {
                    0 => s.insert(0.0),
                    k if k < 20 => s.insert(-(i as f64) * 0.11),
                    _ => s.insert(i as f64 * 0.37),
                }
            }
            assert!(s.collapses() > 0);
            s
        }

        /// A sketch the fused merge rule has moved onto a non-power-of-two
        /// grid (the case the legacy v2 header exists for).
        fn fused_sketch() -> UddSketch {
            let mut a = UddSketch::new(0.001, 256);
            let mut b = UddSketch::new(0.001, 64);
            for i in 1..=30_000u64 {
                a.insert(i as f64 * 10.0);
                b.insert(i as f64 * 1e6);
            }
            a.merge_fused(&b).unwrap();
            a
        }

        #[test]
        fn v1_and_v2_payloads_still_decode() {
            for (s, expected_version) in [(mixed_sketch(), 1u8), (fused_sketch(), 2u8)] {
                let legacy = s.encode_legacy();
                assert_eq!(legacy[..2], [MAGIC, expected_version]);
                let restored = UddSketch::decode(&legacy).unwrap();
                assert_eq!(restored.count(), s.count());
                assert_eq!(restored.gamma(), s.gamma());
                assert_eq!(restored.gamma_exponent(), s.gamma_exponent());
                for q in [0.01, 0.5, 0.99, 1.0] {
                    assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap(), "q={q}");
                }
            }
        }

        #[test]
        fn v3_is_smaller_than_legacy() {
            let s = mixed_sketch();
            let v3 = s.encode();
            let legacy = s.encode_legacy();
            assert_eq!(v3[..2], [MAGIC, 3]);
            assert!(
                v3.len() < legacy.len(),
                "v3 {} bytes vs legacy {} bytes",
                v3.len(),
                legacy.len()
            );
        }

        #[test]
        fn quantile_from_bytes_matches_decode_then_query() {
            use qsketch_core::flatwire::SketchView;
            for s in [mixed_sketch(), fused_sketch()] {
                for bytes in [s.encode(), s.encode_legacy()] {
                    let decoded = UddSketch::decode(&bytes).unwrap();
                    assert_eq!(UddSketch::count_from_bytes(&bytes).unwrap(), s.count());
                    assert_eq!(
                        UddSketch::bounds_from_bytes(&bytes).unwrap(),
                        (decoded.min, decoded.max)
                    );
                    for q in [0.001, 0.01, 0.2, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                        let from_bytes = UddSketch::quantile_from_bytes(&bytes, q).unwrap();
                        let via_decode = decoded.query(q).unwrap();
                        assert_eq!(
                            from_bytes.to_bits(),
                            via_decode.to_bits(),
                            "q={q} from_bytes={from_bytes} via_decode={via_decode}"
                        );
                    }
                }
            }
        }

        #[test]
        fn v3_truncations_and_flips_never_panic() {
            use qsketch_core::flatwire::SketchView;
            let mut s = UddSketch::new(0.02, 64);
            for i in 1..=2_000u64 {
                if i % 31 == 0 {
                    s.insert(0.0);
                } else if i % 7 == 0 {
                    s.insert(-(i as f64));
                } else {
                    s.insert(i as f64);
                }
            }
            let bytes = s.encode();
            for len in 0..bytes.len() {
                let truncated = &bytes[..len];
                let _ = UddSketch::decode(truncated);
                let _ = UddSketch::quantile_from_bytes(truncated, 0.5);
            }
            for i in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[i] ^= 0xA5;
                let _ = UddSketch::decode(&flipped);
                let _ = UddSketch::quantile_from_bytes(&flipped, 0.5);
            }
        }
    }
}

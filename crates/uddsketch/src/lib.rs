//! UDDSketch (§3.4 of the paper): the *uniform-collapse* variant of
//! DDSketch.
//!
//! UDDSketch keeps DDSketch's logarithmic buckets but, when the bucket
//! budget is exhausted, collapses **every** adjacent bucket pair
//! `(i, i+1)` (odd `i`) into bucket `⌈i/2⌉` instead of only folding the
//! lowest buckets. One uniform collapse squares γ, so the relative-error
//! guarantee deteriorates *deterministically*:
//!
//! ```text
//! α' = 2α / (1 + α²)        (equivalently atanh(α') = 2·atanh(α))
//! ```
//!
//! which can be inverted to pick the initial accuracy for a target final
//! guarantee `α_k` after `k` collapses:
//!
//! ```text
//! α₀ = tanh(atanh(α_k) / 2^(k-1))
//! ```
//!
//! Mirroring the authors' C implementation (and the paper's Java port,
//! §3.4), the bucket store is a map rather than DDSketch's dense array —
//! the very difference the paper blames for UDDSketch's slower inserts and
//! merges (§4.4.1, §4.4.3).
//!
//! # Example
//!
//! ```
//! use qsketch_uddsketch::UddSketch;
//! use qsketch_core::QuantileSketch;
//!
//! // Paper configuration: 1024 buckets, 12 anticipated collapses,
//! // final guarantee α = 0.01.
//! let mut udd = UddSketch::paper_configuration();
//! for i in 1..=100_000 {
//!     udd.insert(i as f64);
//! }
//! let est = udd.query(0.5).unwrap();
//! assert!(((est - 50_000.0) / 50_000.0).abs() <= 0.01);
//! ```

mod fused;
mod sketch;

pub use fused::FusedUddSketch;
pub use sketch::{UddSketch, WIRE_MAGIC};

/// Paper parameters (§4.2): 1024 buckets, `num_collapses = 12`, final
/// α = 0.01.
pub const PAPER_MAX_BUCKETS: usize = 1024;
/// Paper `num_collapses` (§4.2).
pub const PAPER_NUM_COLLAPSES: u32 = 12;
/// Paper final relative-error target (§4.2).
pub const PAPER_ALPHA_K: f64 = 0.01;

/// One uniform collapse's effect on the error guarantee (§3.4):
/// `α' = 2α/(1+α²)`.
pub fn collapsed_alpha(alpha: f64) -> f64 {
    2.0 * alpha / (1.0 + alpha * alpha)
}

/// Initial α required so that after `num_collapses` collapses the guarantee
/// is still `alpha_k` (§3.4): `α₀ = tanh(atanh(α_k)/2^(k-1))`.
///
/// With the paper's `α_k = 0.01`, `k = 12` this gives α₀ ≈ 4.88 × 10⁻⁶
/// (the paper's §4.2 prints 4.88 × 10⁻⁷, a typo: running their own
/// formula reproduces 10⁻⁶; see EXPERIMENTS.md).
pub fn initial_alpha(alpha_k: f64, num_collapses: u32) -> f64 {
    assert!(num_collapses >= 1, "need at least one anticipated collapse");
    (alpha_k.atanh() / 2f64.powi(num_collapses as i32 - 1)).tanh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterioration_law_matches_gamma_squaring() {
        // gamma' = gamma^2 <=> alpha' = 2 alpha/(1+alpha^2).
        let alpha = 0.01f64;
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let gamma2 = gamma * gamma;
        let alpha2 = (gamma2 - 1.0) / (gamma2 + 1.0);
        assert!((collapsed_alpha(alpha) - alpha2).abs() < 1e-15);
    }

    #[test]
    fn initial_alpha_paper_value() {
        let a0 = initial_alpha(PAPER_ALPHA_K, PAPER_NUM_COLLAPSES);
        assert!(
            (4.7e-6..5.1e-6).contains(&a0),
            "alpha_0 {a0:e} (paper formula gives ~4.88e-6)"
        );
    }

    #[test]
    fn initial_alpha_round_trips_through_collapses() {
        let mut alpha = initial_alpha(0.01, 12);
        // 11 collapses reach the threshold (§4.2: "reaches the threshold of
        // alpha = 0.01 after 11 bucket collapses").
        for _ in 0..11 {
            alpha = collapsed_alpha(alpha);
        }
        assert!(alpha <= 0.01 + 1e-9, "after 11 collapses alpha = {alpha}");
        // One more collapse overshoots the guarantee.
        assert!(collapsed_alpha(alpha) > 0.01);
    }
}

//! One construction surface for both engines.
//!
//! Four PRs of growth left the engines with three overlapping ways to be
//! built (`spawn` / `spawn_instrumented` / `spawn_with_checkpoints` /
//! `spawn_with_checkpoints_instrumented` / `recover`, times two engines,
//! plus `with_*` config chains). [`EngineBuilder`] replaces all of them
//! with one typed-state builder: [`EngineBuilder::sharded`] yields a
//! [`ShardedEngineBuilder`] (round-robin / hash-routed single-stream
//! engine), [`EngineBuilder::keyed`] a [`KeyedEngineBuilder`]
//! (multi-tenant per-key registries, quotas, rollups). The type encodes
//! which options exist: batch size and fault injection are sharded-only,
//! quotas and rollups keyed-only; checkpoints and metrics exist on both.
//! The builder is the only construction path — the old constructors and
//! `with_*` config chains are gone.
//!
//! ```
//! use qsketch_core::QuantileSketch;
//! use qsketch_ddsketch::DdSketch;
//! use qsketch_streamsim::builder::EngineBuilder;
//!
//! // Sharded: single logical stream fanned over worker threads.
//! let mut engine = EngineBuilder::sharded(2)
//!     .batch_size(128)
//!     .spawn(|| DdSketch::unbounded(0.01))
//!     .unwrap();
//! engine.extend((1..=1_000).map(f64::from));
//! assert_eq!(engine.query_fresh().count().unwrap(), 1_000);
//! engine.finish().unwrap();
//!
//! // Keyed: independent (tenant, key) streams behind the same builder.
//! use qsketch_streamsim::keyed_engine::TenantQuota;
//! let engine = EngineBuilder::keyed(2)
//!     .default_quota(TenantQuota::per_sec(1_000_000.0))
//!     .spawn(|| DdSketch::unbounded(0.01))
//!     .unwrap();
//! engine.ingest("acme", "latency", &[1.0, 2.0, 3.0]).unwrap();
//! engine.drain();
//! assert_eq!(engine.query("acme", "latency").unwrap().count().unwrap(), 3);
//! engine.finish();
//! ```

use qsketch_core::codec::SketchSerialize;
use qsketch_core::metrics::MetricsRegistry;
use qsketch_core::sketch::{MergeableSketch, SketchFactory};

use crate::checkpoint::CheckpointConfig;
use crate::engine::{EngineConfig, EngineError, FaultInjection, ShardedEngine};
use crate::keyed_engine::{
    KeyedEngine, KeyedEngineConfig, KeyedEngineError, RollupOptions, TenantQuota,
};
use crate::metrics::EngineMetrics;

/// Entry point of the unified construction API. See the
/// [module docs](self).
pub struct EngineBuilder;

impl EngineBuilder {
    /// Build a [`ShardedEngine`]: one logical stream, `shards` worker
    /// threads, merge-on-query.
    pub fn sharded(shards: usize) -> ShardedEngineBuilder {
        ShardedEngineBuilder {
            config: EngineConfig::new(shards),
            ckpt: None,
            metrics: None,
        }
    }

    /// Build a [`KeyedEngine`]: independent `(tenant, key)` streams
    /// hash-routed over `shards` worker-owned registries.
    pub fn keyed(shards: usize) -> KeyedEngineBuilder {
        KeyedEngineBuilder {
            config: KeyedEngineConfig::new(shards),
            metrics: None,
        }
    }
}

/// Builder state for a [`ShardedEngine`]; make one with
/// [`EngineBuilder::sharded`].
pub struct ShardedEngineBuilder {
    config: EngineConfig,
    ckpt: Option<CheckpointConfig>,
    metrics: Option<(MetricsRegistry, String)>,
}

impl ShardedEngineBuilder {
    /// Wrap an already-assembled [`EngineConfig`] (for callers that
    /// build configs programmatically, e.g. from CLI flags).
    pub fn from_config(config: EngineConfig) -> Self {
        Self {
            config,
            ckpt: None,
            metrics: None,
        }
    }

    /// Values per routed batch (min 1; default
    /// [`DEFAULT_BATCH_SIZE`](crate::engine::DEFAULT_BATCH_SIZE)).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size.max(1);
        self
    }

    /// Per-shard handoff-ring capacity in batches (min 1, rounded up to
    /// a power of two; default
    /// [`DEFAULT_QUEUE_CAPACITY`](crate::engine::DEFAULT_QUEUE_CAPACITY)).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Values a shard worker inserts between two wait-free snapshot
    /// publications (min 1; default
    /// [`DEFAULT_EPOCH_INTERVAL`](crate::concurrent::DEFAULT_EPOCH_INTERVAL)).
    /// Smaller = fresher [`query`](ShardedEngine::query) views, more
    /// serialization work per shard; see OPERATIONS.md.
    #[must_use]
    pub fn epoch_interval(mut self, values: u64) -> Self {
        self.config.epoch_interval = values.max(1);
        self
    }

    /// Kill `shard`'s worker after `after_batches` processed batches
    /// (deterministic crash for recovery tests).
    #[must_use]
    pub fn fault_injection(mut self, shard: usize, after_batches: u64) -> Self {
        self.config.fault = Some(FaultInjection {
            shard,
            after_batches,
        });
        self
    }

    /// Enable periodic per-shard checkpoints in `ckpt.dir` (and make
    /// [`recover`](Self::recover) available).
    #[must_use]
    pub fn checkpoints(mut self, ckpt: CheckpointConfig) -> Self {
        self.ckpt = Some(ckpt);
        self
    }

    /// Register engine metrics under `prefix` in `registry` (see
    /// [`EngineMetrics`] for the metric names). The registry handle is
    /// cheap to clone; the builder keeps its own.
    #[must_use]
    pub fn metrics(mut self, registry: &MetricsRegistry, prefix: &str) -> Self {
        self.metrics = Some((registry.clone(), prefix.to_string()));
        self
    }

    fn resolve_metrics(&self) -> Option<EngineMetrics> {
        self.metrics
            .as_ref()
            .map(|(registry, prefix)| EngineMetrics::register(registry, prefix, self.config.shards))
    }

    /// Spawn the engine. `factory` mints one sketch per shard, called in
    /// shard order — seed per-shard randomness from a captured counter
    /// if the sketch needs it.
    pub fn spawn<S>(self, factory: impl FnMut() -> S) -> Result<ShardedEngine<S>, EngineError>
    where
        S: MergeableSketch + SketchSerialize + Clone + Send + 'static,
    {
        let metrics = self.resolve_metrics();
        ShardedEngine::build(self.config, factory, metrics, self.ckpt, false)
    }

    /// Rebuild the engine from the checkpoints in the directory given to
    /// [`checkpoints`](Self::checkpoints), then let the caller replay
    /// the input stream from the start (the engine skips everything each
    /// shard already holds — see
    /// [`ShardedEngine::recover`](crate::engine::ShardedEngine) docs for
    /// the bit-identical replay contract). Fails with
    /// [`EngineError::CheckpointingDisabled`] when no checkpoint config
    /// was set.
    pub fn recover<S>(self, factory: impl FnMut() -> S) -> Result<ShardedEngine<S>, EngineError>
    where
        S: MergeableSketch + SketchSerialize + Clone + Send + 'static,
    {
        let metrics = self.resolve_metrics();
        ShardedEngine::build(self.config, factory, metrics, self.ckpt, true)
    }
}

/// Builder state for a [`KeyedEngine`]; make one with
/// [`EngineBuilder::keyed`].
pub struct KeyedEngineBuilder {
    config: KeyedEngineConfig,
    metrics: Option<(MetricsRegistry, String)>,
}

impl KeyedEngineBuilder {
    /// Wrap an already-assembled [`KeyedEngineConfig`] (the server
    /// binary's startup path: CLI flags → config → builder).
    pub fn from_config(config: KeyedEngineConfig) -> Self {
        Self {
            config,
            metrics: None,
        }
    }

    /// Per-shard handoff-ring capacity in ingest batches (min 1, rounded
    /// up to a power of two; default
    /// [`DEFAULT_KEYED_QUEUE_CAPACITY`](crate::keyed_engine::DEFAULT_KEYED_QUEUE_CAPACITY)).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Values a shard worker inserts between two wait-free snapshot
    /// publications (min 1; default
    /// [`DEFAULT_EPOCH_INTERVAL`](crate::concurrent::DEFAULT_EPOCH_INTERVAL)).
    #[must_use]
    pub fn epoch_interval(mut self, values: u64) -> Self {
        self.config.epoch_interval = values.max(1);
        self
    }

    /// Set `tenant`'s ingest quota (replacing an earlier entry).
    #[must_use]
    pub fn tenant_quota(mut self, tenant: &str, quota: TenantQuota) -> Self {
        self.config.quotas.retain(|(t, _)| t != tenant);
        self.config.quotas.push((tenant.to_string(), quota));
        self
    }

    /// Apply `quota` to every tenant without an explicit entry.
    #[must_use]
    pub fn default_quota(mut self, quota: TenantQuota) -> Self {
        self.config.default_quota = Some(quota);
        self
    }

    /// Enable periodic registry checkpoints in `ckpt.dir` (and make
    /// [`KeyedEngine::checkpoint_now`] / [`recover`](Self::recover)
    /// available).
    #[must_use]
    pub fn checkpoints(mut self, ckpt: CheckpointConfig) -> Self {
        self.config.checkpoint = Some(ckpt);
        self
    }

    /// Enable per-key hierarchical rollups (see [`RollupOptions`]).
    #[must_use]
    pub fn rollup(mut self, rollup: RollupOptions) -> Self {
        self.config.rollup = Some(rollup);
        self
    }

    /// Register keyed-engine metrics under `prefix` in `registry` (see
    /// [`KeyedEngineMetrics`](crate::metrics::KeyedEngineMetrics)).
    #[must_use]
    pub fn metrics(mut self, registry: &MetricsRegistry, prefix: &str) -> Self {
        self.metrics = Some((registry.clone(), prefix.to_string()));
        self
    }

    /// Spawn the engine. `factory` mints one sketch per new
    /// `(tenant, key)` pair; every call must produce the same initial
    /// state (the [`SketchFactory`] contract — this is what keeps
    /// recovery bit-identical). Checkpointing is enabled iff
    /// [`checkpoints`](Self::checkpoints) was set.
    pub fn spawn<S, F>(self, factory: F) -> Result<KeyedEngine<S>, KeyedEngineError>
    where
        S: MergeableSketch + SketchSerialize + Clone + Send + 'static,
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        let metrics = self
            .metrics
            .as_ref()
            .map(|(registry, prefix)| (registry, prefix.as_str()));
        KeyedEngine::build(self.config, factory, metrics, false)
    }

    /// Rebuild the engine from the registry checkpoints in the directory
    /// given to [`checkpoints`](Self::checkpoints); state is restored as
    /// of the last checkpoint (there is no stream to replay). Fails with
    /// [`KeyedEngineError::CheckpointingDisabled`] when no checkpoint
    /// config was set.
    pub fn recover<S, F>(self, factory: F) -> Result<KeyedEngine<S>, KeyedEngineError>
    where
        S: MergeableSketch + SketchSerialize + Clone + Send + 'static,
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        let metrics = self
            .metrics
            .as_ref()
            .map(|(registry, prefix)| (registry, prefix.as_str()));
        KeyedEngine::build(self.config, factory, metrics, true)
    }
}

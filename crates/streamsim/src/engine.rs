//! Multi-threaded sharded ingestion: the real-concurrency successor to
//! the single-threaded round-robin simulation in [`crate::parallel`].
//!
//! The paper's §2.4 observes that every evaluated sketch merges "without
//! any change to the error guarantees"; Quancurrent (arXiv:2208.09265)
//! turns the same property into a concurrent sketch that scales
//! near-linearly with threads by giving each thread local state and
//! merging on query. [`ShardedEngine`] is that architecture over *any*
//! [`MergeableSketch`], rebuilt on the lock-free substrate in
//! [`crate::concurrent`]:
//!
//! ```text
//!                ┌── worker 0: handoff ring ─▶ shard sketch 0 ─▶ epoch snapshot 0 ─┐
//! producer ──▶ router (CAS-claims a ring slot  ...                                 ├─▶ SnapshotHandle
//!                └── worker N-1 ────────────▶ shard sketch N-1 ─▶ snapshot N-1 ────┘   (zero-copy query)
//! ```
//!
//! * The **router** runs on the caller's thread. It packs inserted
//!   values into batches (default [`DEFAULT_BATCH_SIZE`]) and ships
//!   each full batch round-robin ([`insert`](ShardedEngine::insert)) or
//!   to the key's hash-pinned home shard
//!   ([`insert_keyed`](ShardedEngine::insert_keyed)); both policies
//!   live in [`crate::routing`].
//! * Each **shard worker** *owns* its sketch outright — no lock guards
//!   it — and drains a [`HandoffRing`] of CAS-claimed batches. **No
//!   mutex is acquired anywhere on the ingest path.**
//! * **Backpressure** is a counted spin/yield/nap loop: when a shard's
//!   ring is full the producer's wait lands in the
//!   `backpressure_wait_ns` histogram and its failed claim attempts in
//!   the `handoff_retries` counter of [`EngineMetrics`] — a full ring
//!   is a *signal*, not an error.
//! * **Queries are wait-free**: each worker periodically serializes its
//!   sketch into an [`EpochCell`] (every
//!   [`epoch_interval`](EngineConfig::epoch_interval) values, after a
//!   drain, and at shutdown), and [`query`](ShardedEngine::query) just
//!   loads the latest [`ShardSnapshot`] pointers — three atomic ops per
//!   shard, never cloning live state, never blocking ingest. The
//!   returned [`SnapshotHandle`] answers quantile/count/bounds
//!   zero-copy from the serialized bytes via
//!   [`SketchView`](qsketch_core::flatwire::SketchView).
//!
//! # Determinism contract (per shard)
//!
//! Each shard's sketch state is a deterministic, bit-reproducible
//! function of the batch sequence its ring delivers. `ShardedEngine`
//! has a single router thread and per-shard FIFO rings, so whole-engine
//! determinism (and bit-identical recovery replay) follows — the
//! routing rotation, batch boundaries, and per-shard arrival order are
//! all reproducible. Multi-producer engines ([`crate::keyed_engine`])
//! keep only the per-shard contract; see ARCHITECTURE.md.
//!
//! # Example
//!
//! ```
//! use qsketch_core::QuantileSketch;
//! use qsketch_ddsketch::DdSketch;
//! use qsketch_streamsim::builder::EngineBuilder;
//!
//! let mut engine = EngineBuilder::sharded(2)
//!     .spawn(|| DdSketch::unbounded(0.01))
//!     .unwrap();
//! for i in 1..=10_000 {
//!     engine.insert(i as f64);
//! }
//! // Wait-free point-in-time query while ingestion could still be
//! // running (here: drain first so counts are exact):
//! engine.drain();
//! let snap = engine.query();
//! assert_eq!(snap.count().unwrap(), 10_000);
//!
//! // Tear down: join the workers and keep the final merged sketch.
//! let merged = engine.finish().unwrap();
//! let median = merged.query(0.5).unwrap();
//! assert!((median - 5_000.0).abs() / 10_000.0 <= 0.01);
//! ```

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qsketch_core::codec::{DecodeError, SketchSerialize};
use qsketch_core::pool::{BufferPool, Pooled};
use qsketch_core::sketch::{merge_tree, MergeError, MergeableSketch, SketchError};

use crate::checkpoint::{self, CheckpointConfig, ShardCheckpoint};
use crate::concurrent::{
    DeadOnPanic, EpochCell, EpochRequest, HandoffRing, PopState, ShardSnapshot, SnapshotHandle,
    DEFAULT_EPOCH_INTERVAL,
};
use crate::metrics::EngineMetrics;
use crate::routing::{shard_for, Router, RoutingPolicy};

/// Default values per batch: large enough that the per-batch handoff
/// (one CAS plus two fences) is amortised to well under a nanosecond
/// per value, small enough that a batch is a few cache lines of payload.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default handoff-ring capacity per shard, in batches. With the
/// default batch size this is ≈ 16 K values of slack per shard before
/// the producer backs off.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Deterministic fault injection: kill one shard worker mid-stream.
///
/// The named worker processes exactly `after_batches` batches, then
/// marks its ring dead and exits — the crash the checkpoint/recovery
/// path exists for, made reproducible for tests. A dead shard's ring
/// drops further batches instead of blocking the producer; the lost
/// values are exactly what recovery replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// Index of the shard whose worker dies.
    pub shard: usize,
    /// Batches the worker fully processes before dying.
    pub after_batches: u64,
}

/// Configuration for a [`ShardedEngine`]. Construct through
/// [`EngineBuilder`](crate::builder::EngineBuilder).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard worker threads (and shard sketches).
    pub shards: usize,
    /// Values per routed batch.
    pub batch_size: usize,
    /// Bounded capacity of each shard's handoff ring, in batches
    /// (rounded up to a power of two); the producer backs off when the
    /// destination ring is full.
    pub queue_capacity: usize,
    /// Values a shard worker inserts between two epoch snapshot
    /// publications (wait-free queries lag live state by at most this
    /// plus ring depth).
    pub epoch_interval: u64,
    /// Kill one shard worker after a set number of batches (tests only).
    pub fault: Option<FaultInjection>,
}

impl EngineConfig {
    /// Config with `shards` workers and the default batch size, ring
    /// capacity, and epoch interval.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            batch_size: DEFAULT_BATCH_SIZE,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            epoch_interval: DEFAULT_EPOCH_INTERVAL,
            fault: None,
        }
    }

}

/// Error constructing, querying, or recovering a [`ShardedEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The configuration asked for zero shards.
    NoShards,
    /// Folding the shard snapshots failed (incompatible sketch
    /// parameters; impossible when all shards come from one factory).
    Merge(MergeError),
    /// A checkpoint file failed to decode during recovery, or a
    /// published snapshot failed to answer a query.
    Sketch(SketchError),
    /// A checkpoint file could not be read during recovery.
    Io(String),
    /// A checkpoint was taken under a different topology (shard count /
    /// batch size) than the recovering engine's.
    TopologyMismatch(String),
    /// Recovery was requested without a checkpoint configuration.
    CheckpointingDisabled,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoShards => write!(f, "engine needs at least one shard"),
            EngineError::Merge(e) => write!(f, "shard merge failed: {e}"),
            EngineError::Sketch(e) => write!(f, "checkpoint decode failed: {e}"),
            EngineError::Io(e) => write!(f, "checkpoint io failed: {e}"),
            EngineError::TopologyMismatch(e) => write!(f, "checkpoint topology mismatch: {e}"),
            EngineError::CheckpointingDisabled => {
                write!(f, "recovery requires a checkpoint configuration")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MergeError> for EngineError {
    fn from(e: MergeError) -> Self {
        EngineError::Merge(e)
    }
}

impl From<SketchError> for EngineError {
    fn from(e: SketchError) -> Self {
        EngineError::Sketch(e)
    }
}

impl From<DecodeError> for EngineError {
    fn from(e: DecodeError) -> Self {
        EngineError::Sketch(SketchError::Decode(e))
    }
}

/// How the engine checkpoints, resolved at spawn time.
struct CheckpointPlan<S> {
    config: CheckpointConfig,
    num_shards: usize,
    batch_size: usize,
    encode: fn(&S) -> Vec<u8>,
}

/// One shard: its handoff ring, the worker's epoch snapshot cell and
/// publish-request mailbox, the slot the worker parks its final sketch
/// in at shutdown, and the last checkpoint-write error (if any —
/// checkpointing is best-effort, ingestion never stops for a full
/// disk). The sketch itself lives *inside* the worker thread; nothing
/// here locks it.
struct Shard<S> {
    ring: Arc<HandoffRing<Pooled<Vec<f64>>>>,
    cell: Arc<EpochCell<ShardSnapshot>>,
    epoch_req: Arc<EpochRequest>,
    final_sketch: Arc<Mutex<Option<S>>>,
    worker: Option<JoinHandle<()>>,
    ckpt_error: Arc<Mutex<Option<String>>>,
}

/// Initial state of one shard at spawn: its sketch and how many values
/// it has already absorbed (non-zero only on recovery).
struct ShardInit<S> {
    sketch: S,
    values_done: u64,
}

/// A multi-threaded sharded ingestion engine over any mergeable sketch.
///
/// See the [module docs](self) for the architecture. Construct through
/// [`EngineBuilder`](crate::builder::EngineBuilder). The engine is the
/// single producer: [`insert`](Self::insert) routes values;
/// [`query`](Self::query) returns a wait-free [`SnapshotHandle`];
/// [`finish`](Self::finish) tears the engine down and returns the final
/// merged sketch. Dropping the engine without `finish` also joins the
/// workers (after processing everything already routed, discarding any
/// unflushed partial batch).
pub struct ShardedEngine<S> {
    shards: Vec<Shard<S>>,
    /// Recycled batch buffers: shipping a batch swaps in a buffer from
    /// this pool, and the shard worker's drop returns the shipped one —
    /// the steady-state routing path never allocates.
    batch_pool: BufferPool<Vec<f64>>,
    /// Values accepted but not yet shipped as a batch (unkeyed path).
    pending: Pooled<Vec<f64>>,
    /// Per-shard pending batches for the keyed path
    /// ([`insert_keyed`](Self::insert_keyed)): hash routing fixes each
    /// value's shard at insert time, so the batches accumulate per
    /// destination instead of per rotation slot.
    keyed_pending: Vec<Pooled<Vec<f64>>>,
    /// Routing policy for unkeyed batches (round-robin rotation).
    router: Router,
    batch_size: usize,
    metrics: Option<EngineMetrics>,
    /// Values routed (shipped or pending).
    routed: u64,
    /// Per-shard values still to skip during recovery replay: a shard
    /// restored from a checkpoint already holds its first `skip[i]`
    /// values, so the router drops exactly that many before shipping.
    skip: Vec<u64>,
}

impl<S: MergeableSketch + SketchSerialize + Clone + Send + 'static> ShardedEngine<S> {
    /// The one real constructor —
    /// [`EngineBuilder`](crate::builder::EngineBuilder) funnels here.
    ///
    /// On recovery, each shard restored from a checkpoint already holds
    /// its first `values_done` values, and the router skips exactly that
    /// many values destined for it during the caller's replay — the
    /// recovered engine's final state is bit-identical to an
    /// uninterrupted run over the same input.
    pub(crate) fn build(
        config: EngineConfig,
        mut factory: impl FnMut() -> S,
        metrics: Option<EngineMetrics>,
        ckpt: Option<CheckpointConfig>,
        recover: bool,
    ) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::NoShards);
        }
        let batch_size = config.batch_size.max(1);
        let inits = if recover {
            let ckpt = ckpt.as_ref().ok_or(EngineError::CheckpointingDisabled)?;
            let mut inits = Vec::with_capacity(config.shards);
            for i in 0..config.shards {
                let fresh = factory();
                let init = match checkpoint::read_shard(ckpt, i)
                    .map_err(|e| EngineError::Io(e.to_string()))?
                {
                    Some(decoded) => {
                        let envelope = decoded?;
                        if envelope.num_shards != config.shards
                            || envelope.batch_size != batch_size
                        {
                            return Err(EngineError::TopologyMismatch(format!(
                                "checkpoint for shard {i} was taken with {} shards × batch {}, \
                                 recovering with {} × {}",
                                envelope.num_shards,
                                envelope.batch_size,
                                config.shards,
                                batch_size,
                            )));
                        }
                        ShardInit {
                            sketch: envelope.sketch::<S>()?,
                            values_done: envelope.values_done,
                        }
                    }
                    None => ShardInit {
                        sketch: fresh,
                        values_done: 0,
                    },
                };
                inits.push(init);
            }
            inits
        } else {
            (0..config.shards)
                .map(|_| ShardInit {
                    sketch: factory(),
                    values_done: 0,
                })
                .collect()
        };
        let plan = match ckpt {
            Some(ckpt) => {
                std::fs::create_dir_all(&ckpt.dir).map_err(|e| EngineError::Io(e.to_string()))?;
                Some(Arc::new(CheckpointPlan {
                    num_shards: config.shards,
                    batch_size,
                    encode: S::encode,
                    config: ckpt,
                }))
            }
            None => None,
        };
        Self::spawn_impl(config, inits, metrics, plan)
    }

    fn spawn_impl(
        config: EngineConfig,
        inits: Vec<ShardInit<S>>,
        metrics: Option<EngineMetrics>,
        plan: Option<Arc<CheckpointPlan<S>>>,
    ) -> Result<Self, EngineError> {
        debug_assert_eq!(inits.len(), config.shards);
        let batch_size = config.batch_size.max(1);
        let capacity = config.queue_capacity.max(1);
        let epoch_interval = config.epoch_interval.max(1);
        let skip: Vec<u64> = inits.iter().map(|init| init.values_done).collect();
        let shards = inits
            .into_iter()
            .enumerate()
            .map(|(i, init)| {
                let ring = Arc::new(HandoffRing::<Pooled<Vec<f64>>>::new(capacity));
                // Publish the starting state (empty or recovered) before
                // the worker even runs, so queries always find a value.
                let cell = Arc::new(EpochCell::new(Arc::new(ShardSnapshot {
                    shard: i,
                    epoch: 0,
                    values_done: init.values_done,
                    bytes: init.sketch.encode(),
                })));
                let epoch_req = Arc::new(EpochRequest::new());
                let final_sketch = Arc::new(Mutex::new(None));
                let ckpt_error = Arc::new(Mutex::new(None));
                let w_ring = Arc::clone(&ring);
                let w_cell = Arc::clone(&cell);
                let w_req = Arc::clone(&epoch_req);
                let w_final = Arc::clone(&final_sketch);
                let w_error = Arc::clone(&ckpt_error);
                let w_metrics = metrics.clone();
                let w_plan = plan.clone();
                let fault = config.fault.filter(|f| f.shard == i);
                let start_values = init.values_done;
                let mut sketch = init.sketch;
                let worker = std::thread::Builder::new()
                    .name(format!("qsketch-shard-{i}"))
                    .spawn(move || {
                        let _dead_on_panic = DeadOnPanic(Arc::clone(&w_ring));
                        let mut values_done = start_values;
                        let mut last_ckpt = start_values;
                        let mut last_pub = start_values;
                        let mut batches_done = 0u64;
                        let publish = |sketch: &S, values_done: u64| {
                            let epoch = w_cell.publish(Arc::new(ShardSnapshot {
                                shard: i,
                                epoch: w_cell.epoch() + 1,
                                values_done,
                                bytes: sketch.encode(),
                            }));
                            if let Some(m) = &w_metrics {
                                m.epochs_published.inc();
                            }
                            epoch
                        };
                        loop {
                            // Service publish requests first: `drain`
                            // waits on an ack, and the ring may stay
                            // busy for a long time under load.
                            if let Some(ticket) = w_req.pending() {
                                publish(&sketch, values_done);
                                last_pub = values_done;
                                w_req.ack(ticket);
                            }
                            match w_ring.pop_wait() {
                                PopState::Item(batch, depth) => {
                                    // Bulk kernel: bit-identical to the
                                    // scalar loop, so recovery replay and
                                    // the per-shard determinism contract
                                    // are unaffected.
                                    let n = batch.len() as u64;
                                    sketch.insert_batch(&batch);
                                    values_done += n;
                                    if let Some(plan) = &w_plan {
                                        if values_done - last_ckpt >= plan.config.interval_values
                                        {
                                            let payload = (plan.encode)(&sketch);
                                            let bytes = ShardCheckpoint {
                                                shard: i,
                                                num_shards: plan.num_shards,
                                                batch_size: plan.batch_size,
                                                values_done,
                                                payload,
                                            }
                                            .encode();
                                            last_ckpt = values_done;
                                            let start = Instant::now();
                                            let result = checkpoint::write_atomic(
                                                &plan.config.shard_path(i),
                                                &bytes,
                                            );
                                            if let Err(e) = result {
                                                *w_error
                                                    .lock()
                                                    .expect("ckpt error poisoned") =
                                                    Some(e.to_string());
                                            } else if let Some(m) = &w_metrics {
                                                m.checkpoints.inc();
                                                m.checkpoint_ns
                                                    .record(start.elapsed().as_nanos() as u64);
                                                m.checkpoint_bytes.record(bytes.len() as u64);
                                            }
                                        }
                                    }
                                    if let Some(m) = &w_metrics {
                                        m.shard_events.record_many(i, n);
                                        m.queue_depth[i].set(depth as u64);
                                    }
                                    batches_done += 1;
                                    if values_done - last_pub >= epoch_interval {
                                        publish(&sketch, values_done);
                                        last_pub = values_done;
                                    }
                                    // Recycle the buffer before
                                    // acknowledging: a producer unblocked
                                    // by `mark_done` finds it in the pool.
                                    drop(batch);
                                    // Die *before* marking the fatal batch
                                    // done: if the kill lands on the
                                    // shard's last queued batch, `drain`
                                    // could otherwise observe done == sent
                                    // and return before the dead flag is
                                    // set, making `failed_shards` racy.
                                    if let Some(f) = fault {
                                        if batches_done >= f.after_batches {
                                            // Leave the crash state
                                            // queryable and inspectable.
                                            publish(&sketch, values_done);
                                            *w_final
                                                .lock()
                                                .expect("final sketch poisoned") = Some(sketch);
                                            w_ring.mark_dead();
                                            w_ring.mark_done(n);
                                            return;
                                        }
                                    }
                                    w_ring.mark_done(n);
                                }
                                PopState::Idle => {}
                                PopState::Closed => {
                                    if values_done > last_pub || w_cell.epoch() == 0 {
                                        publish(&sketch, values_done);
                                    }
                                    if let Some(ticket) = w_req.pending() {
                                        w_req.ack(ticket);
                                    }
                                    *w_final.lock().expect("final sketch poisoned") = Some(sketch);
                                    return;
                                }
                            }
                        }
                    })
                    .expect("spawn shard worker");
                Shard {
                    ring,
                    cell,
                    epoch_req,
                    final_sketch,
                    worker: Some(worker),
                    ckpt_error,
                }
            })
            .collect();
        let num_shards = config.shards;
        // Enough idle buffers for every ring slot plus the router's
        // working set; beyond that, returned buffers are dropped.
        let batch_pool: BufferPool<Vec<f64>> =
            BufferPool::new((num_shards * capacity + num_shards + 8).min(8192));
        let mut pending = batch_pool.get();
        pending.reserve(batch_size);
        let keyed_pending = (0..num_shards).map(|_| batch_pool.get()).collect();
        Ok(Self {
            shards,
            batch_pool,
            pending,
            keyed_pending,
            router: Router::new(RoutingPolicy::RoundRobin, num_shards),
            batch_size,
            metrics,
            routed: 0,
            skip,
        })
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Values accepted so far (shipped to a shard or pending in the
    /// router's current batch).
    pub fn events_routed(&self) -> u64 {
        self.routed
    }

    /// Route one value. Ships a batch every `batch_size` values; backs
    /// off (spin/yield/nap, counted) only when the receiving shard's
    /// ring is full.
    #[inline]
    pub fn insert(&mut self, value: f64) {
        self.pending.push(value);
        self.routed += 1;
        if self.pending.len() >= self.batch_size {
            self.ship_pending();
        }
    }

    /// Route every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.insert(v);
        }
    }

    /// Route one value by **key hash** instead of round-robin: every
    /// value of a key lands on the shard
    /// [`routing::shard_for`](crate::routing::shard_for) picks, so one
    /// shard's sketch summarises each key's whole substream. Batches
    /// accumulate per destination shard and ship at `batch_size`, same
    /// backpressure as [`insert`](Self::insert).
    ///
    /// Hash with [`routing::hash_pair`](crate::routing::hash_pair) (or
    /// any stable 64-bit hash). Keyed and unkeyed inserts may be mixed;
    /// they share [`events_routed`](Self::events_routed) and drain
    /// together. Hash routing is deterministic per key, so the recovery
    /// replay contract holds for this path too.
    #[inline]
    pub fn insert_keyed(&mut self, key_hash: u64, value: f64) {
        let shard = shard_for(key_hash, self.shards.len());
        self.keyed_pending[shard].push(value);
        self.routed += 1;
        if self.keyed_pending[shard].len() >= self.batch_size {
            let batch = std::mem::replace(&mut self.keyed_pending[shard], self.batch_pool.get());
            self.ship_to(shard, batch);
        }
    }

    /// Ship every partial batch (round-robin and keyed) immediately.
    pub fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.ship_pending();
        }
        for shard in 0..self.keyed_pending.len() {
            if !self.keyed_pending[shard].is_empty() {
                let batch =
                    std::mem::replace(&mut self.keyed_pending[shard], self.batch_pool.get());
                self.ship_to(shard, batch);
            }
        }
    }

    fn ship_pending(&mut self) {
        let batch = std::mem::replace(&mut self.pending, self.batch_pool.get());
        let shard = self.router.route(None);
        self.ship_to(shard, batch);
    }

    fn ship_to(&mut self, shard: usize, mut batch: Pooled<Vec<f64>>) {
        // Recovery replay: this shard's restored sketch already holds the
        // stream prefix routed to it — drop whole batches (and trim the
        // one straddling batch) until the skip budget is spent. The
        // rotation (or key hash) above still advances identically, so the
        // replayed routing reproduces the original run batch-for-batch.
        let skip = &mut self.skip[shard];
        if *skip > 0 {
            let n = batch.len() as u64;
            if *skip >= n {
                *skip -= n;
                return;
            }
            batch.drain(..*skip as usize);
            *skip = 0;
        }
        let n = batch.len() as u64;
        let report = self.shards[shard].ring.push(batch, n);
        if report.dropped {
            return;
        }
        if let Some(m) = &self.metrics {
            m.events.add(n);
            m.batches.inc();
            m.queue_depth[shard].set(report.depth as u64);
            if report.retries > 0 {
                m.handoff_retries.add(report.retries);
            }
            if report.waited_ns > 0 {
                m.backpressure_wait_ns.record(report.waited_ns);
            }
        }
    }

    /// Indices of shards whose worker has died (fault injection). Empty
    /// in a healthy engine.
    pub fn failed_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ring.is_dead())
            .map(|(i, _)| i)
            .collect()
    }

    /// Last checkpoint-write error per shard (`None` = healthy).
    /// Checkpointing is best-effort: a failed write never stops
    /// ingestion, it surfaces here instead.
    pub fn checkpoint_errors(&self) -> Vec<Option<String>> {
        self.shards
            .iter()
            .map(|s| s.ckpt_error.lock().expect("ckpt error poisoned").clone())
            .collect()
    }

    /// Flush, block until every shard has fully processed everything
    /// routed so far, then have every worker publish a fresh epoch
    /// snapshot. Afterwards [`query`](Self::query) is exact: shard
    /// counts sum to [`events_routed`](Self::events_routed).
    pub fn drain(&mut self) {
        self.flush();
        for shard in &self.shards {
            shard.ring.wait_drained();
        }
        self.sync_snapshots();
    }

    /// Ask every live worker to publish its current state and wait for
    /// the acknowledgements (a dead shard keeps its last snapshot).
    fn sync_snapshots(&self) {
        let tickets: Vec<u64> = self
            .shards
            .iter()
            .map(|s| {
                let t = s.epoch_req.request();
                if let Some(worker) = &s.worker {
                    worker.thread().unpark();
                }
                t
            })
            .collect();
        for (shard, ticket) in self.shards.iter().zip(tickets) {
            shard.epoch_req.wait(ticket, || shard.ring.is_dead());
        }
    }

    /// Wait-free point-in-time query: load every shard's latest
    /// published [`ShardSnapshot`] (three atomic ops per shard — no
    /// clone, no lock, never blocks ingest) and wrap them in a
    /// [`SnapshotHandle`]. The view lags live state by at most
    /// [`epoch_interval`](EngineConfig::epoch_interval) values per
    /// shard plus ring depth; call [`drain`](Self::drain) first for an
    /// exact view, or use [`query_fresh`](Self::query_fresh).
    pub fn query(&self) -> SnapshotHandle<S> {
        let parts: Vec<Arc<ShardSnapshot>> = self
            .shards
            .iter()
            .map(|s| {
                let part = s.cell.load();
                if let Some(m) = &self.metrics {
                    let lag = s.ring.sent_values().saturating_sub(part.values_done);
                    m.epoch_lag_values.record(lag);
                }
                part
            })
            .collect();
        SnapshotHandle::from_parts(parts)
    }

    /// [`query`](Self::query) with read-your-writes freshness: drains
    /// first (so the handle covers every value inserted before the
    /// call), then queries.
    pub fn query_fresh(&mut self) -> SnapshotHandle<S> {
        self.drain();
        self.query()
    }

    /// Materialise every shard's current sketch from its published
    /// snapshot. Requests a fresh publication first, so the result
    /// reflects everything the workers have inserted (call
    /// [`drain`](Self::drain) first for an exact-count view). The
    /// decode cost is the price of materialisation — prefer
    /// [`query`](Self::query) for answering quantiles.
    pub fn snapshot_shards(&self) -> Vec<S> {
        self.sync_snapshots();
        self.shards
            .iter()
            .map(|s| {
                let part = s.cell.load();
                S::decode(&part.bytes).expect("engine-published snapshot must decode")
            })
            .collect()
    }

    /// Drain, stop the workers, and return the shard sketches.
    pub fn finish_shards(mut self) -> Vec<S> {
        self.shutdown();
        let shards = std::mem::take(&mut self.shards);
        shards
            .into_iter()
            .map(|s| {
                s.final_sketch
                    .lock()
                    .expect("final sketch poisoned")
                    .take()
                    .expect("joined worker always parks its final sketch")
            })
            .collect()
    }

    /// Drain, stop the workers, and return the final merged sketch.
    pub fn finish(self) -> Result<S, EngineError> {
        let metrics = self.metrics.clone();
        let shards = self.finish_shards();
        let start = Instant::now();
        let merged = merge_tree(shards)?;
        if let Some(m) = &metrics {
            m.merge_ns.record(start.elapsed().as_nanos() as u64);
        }
        merged.ok_or(EngineError::NoShards)
    }

    /// Flush, close every ring, and join the workers (idempotent).
    fn shutdown(&mut self) {
        self.flush();
        for shard in &self.shards {
            shard.ring.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl<S> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        // `finish_shards` empties `self.shards`; otherwise make sure the
        // workers exit. Values still pending in the router are discarded
        // (an explicit `flush`/`drain`/`finish` is the durable path) —
        // but everything already shipped is still processed before the
        // workers see the close.
        for shard in &self.shards {
            shard.ring.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use qsketch_core::metrics::MetricsRegistry;
    use qsketch_core::QuantileSketch;
    use qsketch_ddsketch::DdSketch;

    #[test]
    fn engine_matches_single_sketch_count_and_guarantee() {
        let n = 50_000u64;
        let mut engine = EngineBuilder::sharded(4)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=n {
            engine.insert(i as f64);
        }
        assert_eq!(engine.events_routed(), n);
        let merged = engine.finish().unwrap();
        assert_eq!(merged.count(), n);
        for q in [0.25, 0.5, 0.99] {
            let truth = (q * n as f64).ceil();
            let est = merged.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
    }

    #[test]
    fn drain_settles_all_rings_and_query_is_exact() {
        let mut engine = EngineBuilder::sharded(3)
            .batch_size(16)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=1_000 {
            engine.insert(i as f64);
        }
        engine.drain();
        let snap = engine.query();
        assert_eq!(snap.count().unwrap(), 1_000);
        let shards = engine.snapshot_shards();
        let total: u64 = shards.iter().map(|s| s.count()).sum();
        assert_eq!(total, 1_000);
        // Round-robin batches of 16 over 3 shards: the split is balanced
        // to within one batch.
        for s in &shards {
            assert!(s.count() >= 320, "shard count {}", s.count());
        }
    }

    #[test]
    fn snapshot_handle_is_point_in_time_and_never_blocks() {
        let mut engine = EngineBuilder::sharded(2)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=10_000 {
            engine.insert(i as f64);
        }
        engine.drain();
        let snap = engine.query();
        assert_eq!(snap.count().unwrap(), 10_000);
        let (lo, hi) = snap.bounds().unwrap().unwrap();
        assert_eq!((lo, hi), (1.0, 10_000.0));
        // Ingestion continues after the snapshot; the handle is isolated.
        for i in 10_001..=20_000 {
            engine.insert(i as f64);
        }
        assert_eq!(snap.count().unwrap(), 10_000);
        let merged = snap.merged().unwrap().unwrap();
        assert_eq!(merged.count(), 10_000);
        assert_eq!(engine.finish().unwrap().count(), 20_000);
    }

    #[test]
    fn wait_free_query_lags_at_most_one_epoch() {
        let mut engine = EngineBuilder::sharded(1)
            .batch_size(10)
            .epoch_interval(100)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=1_000 {
            engine.insert(i as f64);
        }
        // Wait for the ring to settle without requesting a publication:
        // the wait-free view must still have advanced on its own.
        engine.flush();
        for s in &engine.shards {
            s.ring.wait_drained();
        }
        let snap = engine.query();
        let seen = snap.count().unwrap();
        assert!(seen >= 900, "wait-free view too stale: {seen}");
        assert!(snap.max_epoch() >= 9, "epoch {}", snap.max_epoch());
        // And the fresh path is exact.
        assert_eq!(engine.query_fresh().count().unwrap(), 1_000);
        engine.finish().unwrap();
    }

    #[test]
    fn instrumented_engine_records_counters_and_depths() {
        let registry = MetricsRegistry::new();
        let mut engine = EngineBuilder::sharded(2)
            .batch_size(64)
            .metrics(&registry, "engine")
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=1_000 {
            engine.insert(i as f64);
        }
        let merged = engine.finish().unwrap();
        assert_eq!(merged.count(), 1_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.events"), Some(1_000));
        // 15 full batches of 64 + 1 flushed partial batch of 40.
        assert_eq!(snap.counter("engine.batches"), Some(16));
        let shard0 = snap.counter("engine.partition.0.events").unwrap();
        let shard1 = snap.counter("engine.partition.1.events").unwrap();
        assert_eq!(shard0 + shard1, 1_000);
        assert!(shard0 > 0 && shard1 > 0);
        assert!(snap.gauge("engine.shard.0.queue_depth").is_some());
        assert!(snap.counter("engine.epochs_published").unwrap() >= 2);
        assert!(snap.histogram("engine.merge_ns").unwrap().count >= 1);
    }

    #[test]
    fn keyed_inserts_pin_each_key_to_one_shard() {
        use crate::routing::{hash_pair, shard_for};
        let mut engine = EngineBuilder::sharded(4)
            .batch_size(8)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        // Two keys whose hashes land on different shards; values are
        // disjoint ranges so the shard contents identify the key.
        let keys = ["alpha", "beta", "gamma", "delta"];
        for (k, key) in keys.iter().enumerate() {
            let h = hash_pair("tenant", key);
            for i in 0..500 {
                engine.insert_keyed(h, (k * 1_000 + i) as f64 + 1.0);
            }
        }
        assert_eq!(engine.events_routed(), 2_000);
        engine.drain();
        let shards = engine.snapshot_shards();
        let total: u64 = shards.iter().map(|s| s.count()).sum();
        assert_eq!(total, 2_000);
        // Every key's full substream sits on its hash-chosen home shard.
        for key in keys {
            let home = shard_for(hash_pair("tenant", key), 4);
            assert!(shards[home].count() >= 500, "key {key} not pinned");
        }
        assert_eq!(engine.finish().unwrap().count(), 2_000);
    }

    #[test]
    fn zero_shards_is_an_error_not_a_panic() {
        let result = EngineBuilder::sharded(0).spawn(DdSketch::paper_configuration);
        assert_eq!(result.err(), Some(EngineError::NoShards));
        assert!(EngineError::NoShards.to_string().contains("at least one"));
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let mut engine = EngineBuilder::sharded(2)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=100 {
            engine.insert(i as f64);
        }
        drop(engine); // must not hang or leak the workers
    }

    #[test]
    fn tiny_ring_capacity_still_completes() {
        // Capacity 1 batch of 8 values: constant backpressure, no
        // deadlock, nothing lost.
        let mut engine = EngineBuilder::sharded(2)
            .batch_size(8)
            .queue_capacity(1)
            .spawn(|| DdSketch::unbounded(0.01))
            .unwrap();
        for i in 1..=10_000 {
            engine.insert(i as f64);
        }
        assert_eq!(engine.finish().unwrap().count(), 10_000);
    }

    // --- checkpoint / recovery -------------------------------------------

    use qsketch_kll::KllSketch;

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qsketch-engine-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A deterministic but non-trivial input stream.
    fn stream(n: u64) -> impl Iterator<Item = f64> {
        (0..n).map(|i| {
            let x = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64;
            x / (1u64 << 53) as f64 + 1e-9
        })
    }

    fn kll_factory() -> impl FnMut() -> KllSketch {
        let mut shard = 0u64;
        move || {
            shard += 1;
            KllSketch::with_seed(200, 0xC0FFEE ^ shard)
        }
    }

    #[test]
    fn checkpoints_are_written_at_the_interval() {
        let dir = ckpt_dir("written");
        let registry = MetricsRegistry::new();
        let ckpt = CheckpointConfig::new(&dir, 500);
        let mut engine = EngineBuilder::sharded(2)
            .batch_size(64)
            .checkpoints(ckpt.clone())
            .metrics(&registry, "engine")
            .spawn(kll_factory())
            .unwrap();
        engine.extend(stream(4_000));
        engine.drain();
        // 2_000 values per shard at interval 500: each shard crossed the
        // threshold at least 3 times and its file exists.
        for i in 0..2 {
            assert!(ckpt.shard_path(i).exists(), "missing shard-{i}.ckpt");
            let back = checkpoint::read_shard(&ckpt, i).unwrap().unwrap().unwrap();
            assert_eq!(back.shard, i);
            assert_eq!(back.num_shards, 2);
            assert_eq!(back.batch_size, 64);
            assert!(back.values_done >= 1_500, "values_done {}", back.values_done);
            // The payload decodes back into a live sketch.
            let s: KllSketch = back.sketch().unwrap();
            assert_eq!(s.count(), back.values_done);
        }
        assert!(engine.checkpoint_errors().iter().all(Option::is_none));
        drop(engine);
        let snap = registry.snapshot();
        assert!(snap.counter("engine.checkpoints").unwrap() >= 6);
        assert!(snap.histogram("engine.checkpoint_ns").unwrap().count >= 6);
        assert!(snap.histogram("engine.checkpoint_bytes").unwrap().max > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_injection_kills_one_shard_without_deadlock() {
        let dir = ckpt_dir("fault");
        let mut engine = EngineBuilder::sharded(2)
            .batch_size(32)
            .fault_injection(1, 3)
            .checkpoints(CheckpointConfig::new(&dir, 100))
            .spawn(kll_factory())
            .unwrap();
        // Shard 1 dies after 3 batches (96 values); pushes to the dead
        // ring are dropped, so ingestion and drain must still terminate.
        engine.extend(stream(10_000));
        engine.drain();
        assert_eq!(engine.failed_shards(), vec![1]);
        let shards = engine.finish_shards();
        // The dead shard processed exactly its 3 batches before dying.
        assert_eq!(shards[1].count(), 96);
        assert!(shards[0].count() > 96);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_after_fault_is_bit_identical_to_uninterrupted_run() {
        let n = 30_000u64;

        // Reference: uninterrupted run over the same input.
        let mut reference = EngineBuilder::sharded(3)
            .batch_size(64)
            .spawn(kll_factory())
            .unwrap();
        reference.extend(stream(n));
        let reference = reference.finish().unwrap();

        // Crashing run: shard 1 dies mid-stream; its checkpoint survives.
        let dir = ckpt_dir("recover");
        let ckpt = CheckpointConfig::new(&dir, 1_000);
        let mut crashed = EngineBuilder::sharded(3)
            .batch_size(64)
            .fault_injection(1, 40)
            .checkpoints(ckpt.clone())
            .spawn(kll_factory())
            .unwrap();
        crashed.extend(stream(n));
        crashed.drain();
        assert_eq!(crashed.failed_shards(), vec![1]);
        drop(crashed);

        // Recover with the same config + factory, replay the whole input.
        let mut recovered = EngineBuilder::sharded(3)
            .batch_size(64)
            .checkpoints(ckpt)
            .recover(kll_factory())
            .unwrap();
        recovered.extend(stream(n));
        let recovered = recovered.finish().unwrap();

        assert_eq!(recovered.count(), n);
        assert_eq!(recovered.count(), reference.count());
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(
                recovered.query(q).unwrap().to_bits(),
                reference.query(q).unwrap().to_bits(),
                "q={q}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_rejects_topology_mismatch() {
        let dir = ckpt_dir("topology");
        let ckpt = CheckpointConfig::new(&dir, 100);
        let mut engine = EngineBuilder::sharded(2)
            .batch_size(64)
            .checkpoints(ckpt.clone())
            .spawn(kll_factory())
            .unwrap();
        engine.extend(stream(2_000));
        engine.drain();
        drop(engine);
        // Different shard count.
        let err = EngineBuilder::sharded(3)
            .batch_size(64)
            .checkpoints(ckpt.clone())
            .recover(kll_factory())
            .err()
            .expect("3-shard recovery must fail");
        assert!(matches!(err, EngineError::TopologyMismatch(_)), "{err:?}");
        // Different batch size.
        let err = EngineBuilder::sharded(2)
            .batch_size(32)
            .checkpoints(ckpt.clone())
            .recover(kll_factory())
            .err()
            .expect("batch-32 recovery must fail");
        assert!(matches!(err, EngineError::TopologyMismatch(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_surfaces_corrupt_checkpoints_as_sketch_errors() {
        let dir = ckpt_dir("corrupt");
        let ckpt = CheckpointConfig::new(&dir, 100);
        let mut engine = EngineBuilder::sharded(2)
            .batch_size(64)
            .checkpoints(ckpt.clone())
            .spawn(kll_factory())
            .unwrap();
        engine.extend(stream(2_000));
        engine.drain();
        drop(engine);
        // Truncate shard 0's file mid-payload.
        let path = ckpt.shard_path(0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = EngineBuilder::sharded(2)
            .batch_size(64)
            .checkpoints(ckpt.clone())
            .recover(kll_factory())
            .err()
            .expect("corrupt checkpoint must fail recovery");
        assert!(matches!(err, EngineError::Sketch(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_with_missing_checkpoints_starts_shards_fresh() {
        let dir = ckpt_dir("fresh");
        let ckpt = CheckpointConfig::new(&dir, 1_000);
        std::fs::create_dir_all(&dir).unwrap();
        // No checkpoint files at all: recovery degenerates to a clean
        // spawn and a full replay reproduces a plain run.
        let mut reference = EngineBuilder::sharded(2)
            .batch_size(64)
            .spawn(kll_factory())
            .unwrap();
        reference.extend(stream(5_000));
        let reference = reference.finish().unwrap();

        let mut recovered = EngineBuilder::sharded(2)
            .batch_size(64)
            .checkpoints(ckpt)
            .recover(kll_factory())
            .unwrap();
        recovered.extend(stream(5_000));
        let recovered = recovered.finish().unwrap();
        assert_eq!(recovered.count(), 5_000);
        for q in [0.25, 0.5, 0.99] {
            assert_eq!(
                recovered.query(q).unwrap().to_bits(),
                reference.query(q).unwrap().to_bits(),
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Multi-threaded sharded ingestion: the real-concurrency successor to
//! the single-threaded round-robin simulation in [`crate::parallel`].
//!
//! The paper's §2.4 observes that every evaluated sketch merges "without
//! any change to the error guarantees"; Quancurrent (arXiv:2208.09265)
//! turns the same property into a concurrent sketch that scales
//! near-linearly with threads by giving each thread local state and
//! merging on query. [`ShardedEngine`] is that architecture over *any*
//! [`MergeableSketch`]:
//!
//! ```text
//!                 ┌────────────── worker 0: SPSC queue ──▶ shard sketch 0 ─┐
//!  producer ──▶ router (batches of `batch_size` values,   ...             ├─▶ binary merge
//!                 └────────────── worker N-1 ──────────▶ shard sketch N-1 ─┘   tree (query)
//! ```
//!
//! * The **router** runs on the caller's thread. It packs inserted values
//!   into batches (default [`DEFAULT_BATCH_SIZE`]) to amortise channel
//!   overhead, and ships each full batch to the next shard round-robin.
//! * Each **shard worker** owns one sketch and drains a bounded SPSC
//!   channel (a `std`-only mutex+condvar ring with explicit capacity
//!   accounting — the build environment has no crossbeam).
//! * **Backpressure** is blocking: when a shard's queue is at capacity
//!   the producer waits on the queue's condvar, and the wait is recorded
//!   in the `backpressure_wait_ns` histogram of [`EngineMetrics`] — a
//!   full queue is a *signal*, not an error.
//! * **Queries** snapshot every shard (clone behind the shard lock) and
//!   fold the snapshots through [`qsketch_core::merge_tree`], so readers
//!   never stop the ingest path for longer than one clone.
//!
//! # Example
//!
//! ```
//! use qsketch_core::QuantileSketch;
//! use qsketch_ddsketch::DdSketch;
//! use qsketch_streamsim::engine::{EngineConfig, ShardedEngine};
//!
//! let mut engine = ShardedEngine::spawn(EngineConfig::new(2), || DdSketch::unbounded(0.01));
//! for i in 1..=10_000 {
//!     engine.insert(i as f64);
//! }
//! // Point-in-time query while ingestion could still be running:
//! engine.drain(); // here: settle everything so counts are exact
//! let live = engine.snapshot_merged().unwrap().unwrap();
//! assert_eq!(live.count(), 10_000);
//!
//! // Tear down: join the workers and keep the final merged sketch.
//! let merged = engine.finish().unwrap();
//! let median = merged.query(0.5).unwrap();
//! assert!((median - 5_000.0).abs() / 10_000.0 <= 0.01);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qsketch_core::sketch::{merge_tree, MergeError, MergeableSketch};

use crate::metrics::EngineMetrics;

/// Default values per batch: large enough that the per-batch channel
/// rendezvous (one mutex lock) is amortised to well under a nanosecond
/// per value, small enough that a batch is a few cache lines of payload.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default bounded-queue capacity per shard, in batches. With the default
/// batch size this is ≈ 16 K values of slack per shard before the
/// producer blocks.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Configuration for a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard worker threads (and shard sketches).
    pub shards: usize,
    /// Values per routed batch.
    pub batch_size: usize,
    /// Bounded capacity of each shard's queue, in batches; the producer
    /// blocks (backpressure) when the next shard's queue is full.
    pub queue_capacity: usize,
}

impl EngineConfig {
    /// Config with `shards` workers and the default batch size and queue
    /// capacity.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            batch_size: DEFAULT_BATCH_SIZE,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }

    /// Override the number of values per routed batch (min 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Override the per-shard queue capacity in batches (min 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }
}

/// Error constructing or querying a [`ShardedEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The configuration asked for zero shards.
    NoShards,
    /// Folding the shard snapshots failed (incompatible sketch
    /// parameters; impossible when all shards come from one factory).
    Merge(MergeError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoShards => write!(f, "engine needs at least one shard"),
            EngineError::Merge(e) => write!(f, "shard merge failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MergeError> for EngineError {
    fn from(e: MergeError) -> Self {
        EngineError::Merge(e)
    }
}

/// Shared state of one shard's bounded SPSC channel.
struct QueueState<T> {
    buf: VecDeque<T>,
    closed: bool,
    /// Batches the router has pushed.
    sent: u64,
    /// Batches the worker has fully processed (popped *and* inserted).
    done: u64,
}

/// A bounded SPSC channel: mutex+condvar ring with explicit capacity
/// accounting. `push` blocks when full (that blocking *is* the engine's
/// backpressure); `pop` blocks when empty; `wait_drained` blocks until
/// every pushed batch has been fully processed.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signalled by the worker when it pops (space freed).
    not_full: Condvar,
    /// Signalled by the router on push and on close.
    not_empty: Condvar,
    /// Signalled by the worker when a batch finishes processing.
    progress: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
                sent: 0,
                done: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            progress: Condvar::new(),
            capacity,
        }
    }

    /// Push a batch, blocking while the queue is at capacity. Returns the
    /// nanoseconds spent blocked (0 for an immediate push) and the queue
    /// depth after the push.
    fn push(&self, item: T) -> (u64, usize) {
        let mut state = self.state.lock().expect("queue poisoned");
        let mut waited_ns = 0u64;
        while state.buf.len() >= self.capacity {
            let start = Instant::now();
            state = self.not_full.wait(state).expect("queue poisoned");
            waited_ns += start.elapsed().as_nanos() as u64;
        }
        state.buf.push_back(item);
        state.sent += 1;
        let depth = state.buf.len();
        drop(state);
        self.not_empty.notify_one();
        (waited_ns, depth)
    }

    /// Pop the next batch, blocking while empty. `None` once the queue is
    /// closed and fully drained. Also returns the post-pop depth.
    fn pop(&self) -> Option<(T, usize)> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.buf.pop_front() {
                let depth = state.buf.len();
                drop(state);
                self.not_full.notify_one();
                return Some((item, depth));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Worker-side acknowledgement that one popped batch is fully
    /// inserted into the shard sketch.
    fn mark_done(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.done += 1;
        drop(state);
        self.progress.notify_all();
    }

    /// Block until every pushed batch has been processed end-to-end.
    fn wait_drained(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.done < state.sent {
            state = self.progress.wait(state).expect("queue poisoned");
        }
    }

    /// Close the queue: the worker drains what is buffered and exits.
    fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }
}

/// One shard: its channel, its sketch (shared with the worker thread),
/// and the worker's join handle.
struct Shard<S> {
    queue: Arc<BoundedQueue<Vec<f64>>>,
    sketch: Arc<Mutex<S>>,
    worker: Option<JoinHandle<()>>,
}

/// A multi-threaded sharded ingestion engine over any mergeable sketch.
///
/// See the [module docs](self) for the architecture. The engine is the
/// single producer: [`insert`](Self::insert) routes values; queries
/// ([`snapshot_merged`](Self::snapshot_merged)) fold per-shard snapshots
/// through a binary merge tree; [`finish`](Self::finish) tears the
/// engine down and returns the final merged sketch. Dropping the engine
/// without `finish` also joins the workers (after processing everything
/// already routed, discarding any unflushed partial batch).
pub struct ShardedEngine<S> {
    shards: Vec<Shard<S>>,
    /// Values accepted but not yet shipped as a batch.
    pending: Vec<f64>,
    /// Next shard in the round-robin rotation.
    next: usize,
    batch_size: usize,
    metrics: Option<EngineMetrics>,
    /// Values routed (shipped or pending).
    routed: u64,
}

impl<S: MergeableSketch + Clone + Send + 'static> ShardedEngine<S> {
    /// Spawn `config.shards` worker threads, each owning one sketch from
    /// `factory` (called once per shard, in shard order — seed per-shard
    /// randomness from a captured counter if the sketch needs it).
    ///
    /// # Panics
    /// If `config.shards == 0`; use [`try_spawn`](Self::try_spawn) for a
    /// `Result`.
    pub fn spawn(config: EngineConfig, factory: impl FnMut() -> S) -> Self {
        Self::try_spawn(config, factory).expect("engine needs at least one shard")
    }

    /// [`spawn`](Self::spawn), returning an error instead of panicking on
    /// a zero-shard config.
    pub fn try_spawn(
        config: EngineConfig,
        factory: impl FnMut() -> S,
    ) -> Result<Self, EngineError> {
        Self::spawn_impl(config, factory, None)
    }

    /// Spawn with observability: engine metrics registered under `prefix`
    /// in `registry` (see [`EngineMetrics`] for the metric names).
    pub fn spawn_instrumented(
        config: EngineConfig,
        factory: impl FnMut() -> S,
        registry: &qsketch_core::metrics::MetricsRegistry,
        prefix: &str,
    ) -> Result<Self, EngineError> {
        let metrics = EngineMetrics::register(registry, prefix, config.shards);
        Self::spawn_impl(config, factory, Some(metrics))
    }

    fn spawn_impl(
        config: EngineConfig,
        mut factory: impl FnMut() -> S,
        metrics: Option<EngineMetrics>,
    ) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::NoShards);
        }
        let batch_size = config.batch_size.max(1);
        let capacity = config.queue_capacity.max(1);
        let shards = (0..config.shards)
            .map(|i| {
                let queue = Arc::new(BoundedQueue::<Vec<f64>>::new(capacity));
                let sketch = Arc::new(Mutex::new(factory()));
                let worker_queue = Arc::clone(&queue);
                let worker_sketch = Arc::clone(&sketch);
                let worker_metrics = metrics.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("qsketch-shard-{i}"))
                    .spawn(move || {
                        while let Some((batch, depth)) = worker_queue.pop() {
                            {
                                let mut sketch =
                                    worker_sketch.lock().expect("shard sketch poisoned");
                                for &v in &batch {
                                    sketch.insert(v);
                                }
                            }
                            if let Some(m) = &worker_metrics {
                                m.shard_events.record_many(i, batch.len() as u64);
                                m.queue_depth[i].set(depth as u64);
                            }
                            worker_queue.mark_done();
                        }
                    })
                    .expect("spawn shard worker");
                Shard {
                    queue,
                    sketch,
                    worker: Some(worker),
                }
            })
            .collect();
        Ok(Self {
            shards,
            pending: Vec::with_capacity(batch_size),
            next: 0,
            batch_size,
            metrics,
            routed: 0,
        })
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Values accepted so far (shipped to a shard or pending in the
    /// router's current batch).
    pub fn events_routed(&self) -> u64 {
        self.routed
    }

    /// Route one value. Ships a batch every `batch_size` values; blocks
    /// only when the receiving shard's queue is full (backpressure).
    #[inline]
    pub fn insert(&mut self, value: f64) {
        self.pending.push(value);
        self.routed += 1;
        if self.pending.len() >= self.batch_size {
            self.ship_pending();
        }
    }

    /// Route every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.insert(v);
        }
    }

    /// Ship the router's partial batch (if any) immediately.
    pub fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.ship_pending();
        }
    }

    fn ship_pending(&mut self) {
        let batch = std::mem::replace(&mut self.pending, Vec::with_capacity(self.batch_size));
        let n = batch.len() as u64;
        let shard = self.next;
        self.next = (self.next + 1) % self.shards.len();
        let (waited_ns, depth) = self.shards[shard].queue.push(batch);
        if let Some(m) = &self.metrics {
            m.events.add(n);
            m.batches.inc();
            m.queue_depth[shard].set(depth as u64);
            if waited_ns > 0 {
                m.backpressure_wait_ns.record(waited_ns);
            }
        }
    }

    /// Flush, then block until every shard has fully processed everything
    /// routed so far. Afterwards shard counts sum to
    /// [`events_routed`](Self::events_routed) exactly.
    pub fn drain(&mut self) {
        self.flush();
        for shard in &self.shards {
            shard.queue.wait_drained();
        }
    }

    /// Clone every shard sketch behind its lock — a point-in-time view
    /// that includes everything the workers have inserted (call
    /// [`drain`](Self::drain) first for an exact-count view).
    pub fn snapshot_shards(&self) -> Vec<S> {
        self.shards
            .iter()
            .map(|s| s.sketch.lock().expect("shard sketch poisoned").clone())
            .collect()
    }

    /// Snapshot every shard and fold the snapshots through a binary merge
    /// tree. `Ok(None)` is impossible in practice (the engine always has
    /// ≥ 1 shard) but kept for signature symmetry with
    /// [`qsketch_core::merge_tree`]. Records the fold latency in the
    /// engine's `merge_ns` histogram when instrumented.
    pub fn snapshot_merged(&self) -> Result<Option<S>, EngineError> {
        let snapshots = self.snapshot_shards();
        let start = Instant::now();
        let merged = merge_tree(snapshots)?;
        if let Some(m) = &self.metrics {
            m.merge_ns.record(start.elapsed().as_nanos() as u64);
        }
        Ok(merged)
    }

    /// Drain, stop the workers, and return the shard sketches.
    pub fn finish_shards(mut self) -> Vec<S> {
        self.shutdown();
        let shards = std::mem::take(&mut self.shards);
        shards
            .into_iter()
            .map(|s| match Arc::try_unwrap(s.sketch) {
                Ok(m) => m.into_inner().expect("shard sketch poisoned"),
                // Unreachable after join, but don't panic over it:
                Err(arc) => arc.lock().expect("shard sketch poisoned").clone(),
            })
            .collect()
    }

    /// Drain, stop the workers, and return the final merged sketch.
    pub fn finish(self) -> Result<S, EngineError> {
        let metrics = self.metrics.clone();
        let shards = self.finish_shards();
        let start = Instant::now();
        let merged = merge_tree(shards)?;
        if let Some(m) = &metrics {
            m.merge_ns.record(start.elapsed().as_nanos() as u64);
        }
        merged.ok_or(EngineError::NoShards)
    }

    /// Flush, close every queue, and join the workers (idempotent).
    fn shutdown(&mut self) {
        self.flush();
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl<S> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        // `finish_shards` empties `self.shards`; otherwise make sure the
        // workers exit. Values still pending in the router are discarded
        // (an explicit `flush`/`drain`/`finish` is the durable path) —
        // but everything already shipped is still processed before the
        // workers see the close.
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::metrics::MetricsRegistry;
    use qsketch_core::QuantileSketch;
    use qsketch_ddsketch::DdSketch;

    #[test]
    fn engine_matches_single_sketch_count_and_guarantee() {
        let n = 50_000u64;
        let mut engine = ShardedEngine::spawn(EngineConfig::new(4), || DdSketch::unbounded(0.01));
        for i in 1..=n {
            engine.insert(i as f64);
        }
        assert_eq!(engine.events_routed(), n);
        let merged = engine.finish().unwrap();
        assert_eq!(merged.count(), n);
        for q in [0.25, 0.5, 0.99] {
            let truth = (q * n as f64).ceil();
            let est = merged.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
    }

    #[test]
    fn drain_settles_all_queues() {
        let mut engine = ShardedEngine::spawn(
            EngineConfig::new(3).with_batch_size(16),
            || DdSketch::unbounded(0.01),
        );
        for i in 1..=1_000 {
            engine.insert(i as f64);
        }
        engine.drain();
        let shards = engine.snapshot_shards();
        let total: u64 = shards.iter().map(|s| s.count()).sum();
        assert_eq!(total, 1_000);
        // Round-robin batches of 16 over 3 shards: the split is balanced
        // to within one batch.
        for s in &shards {
            assert!(s.count() >= 320, "shard count {}", s.count());
        }
    }

    #[test]
    fn snapshot_merged_is_point_in_time() {
        let mut engine = ShardedEngine::spawn(EngineConfig::new(2), || DdSketch::unbounded(0.01));
        for i in 1..=10_000 {
            engine.insert(i as f64);
        }
        engine.drain();
        let snap = engine.snapshot_merged().unwrap().unwrap();
        assert_eq!(snap.count(), 10_000);
        // Ingestion continues after the snapshot; the snapshot is isolated.
        for i in 10_001..=20_000 {
            engine.insert(i as f64);
        }
        assert_eq!(snap.count(), 10_000);
        assert_eq!(engine.finish().unwrap().count(), 20_000);
    }

    #[test]
    fn instrumented_engine_records_counters_and_depths() {
        let registry = MetricsRegistry::new();
        let mut engine = ShardedEngine::spawn_instrumented(
            EngineConfig::new(2).with_batch_size(64),
            || DdSketch::unbounded(0.01),
            &registry,
            "engine",
        )
        .unwrap();
        for i in 1..=1_000 {
            engine.insert(i as f64);
        }
        let merged = engine.finish().unwrap();
        assert_eq!(merged.count(), 1_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.events"), Some(1_000));
        // 15 full batches of 64 + 1 flushed partial batch of 40.
        assert_eq!(snap.counter("engine.batches"), Some(16));
        let shard0 = snap.counter("engine.partition.0.events").unwrap();
        let shard1 = snap.counter("engine.partition.1.events").unwrap();
        assert_eq!(shard0 + shard1, 1_000);
        assert!(shard0 > 0 && shard1 > 0);
        assert!(snap.gauge("engine.shard.0.queue_depth").is_some());
        assert!(snap.histogram("engine.merge_ns").unwrap().count >= 1);
    }

    #[test]
    fn zero_shards_is_an_error_not_a_panic() {
        let result = ShardedEngine::try_spawn(EngineConfig::new(0), DdSketch::paper_configuration);
        assert_eq!(result.err(), Some(EngineError::NoShards));
        assert!(EngineError::NoShards.to_string().contains("at least one"));
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let mut engine = ShardedEngine::spawn(EngineConfig::new(2), || DdSketch::unbounded(0.01));
        for i in 1..=100 {
            engine.insert(i as f64);
        }
        drop(engine); // must not hang or leak the workers
    }

    #[test]
    fn tiny_queue_capacity_still_completes() {
        // Capacity 1 batch of 8 values: constant backpressure, no
        // deadlock, nothing lost.
        let mut engine = ShardedEngine::spawn(
            EngineConfig::new(2).with_batch_size(8).with_queue_capacity(1),
            || DdSketch::unbounded(0.01),
        );
        for i in 1..=10_000 {
            engine.insert(i as f64);
        }
        assert_eq!(engine.finish().unwrap().count(), 10_000);
    }
}

//! Hierarchical time-series rollup store: closed windows cascade into
//! coarser tiers, range queries merge O(log n) stored sketches.
//!
//! The paper stops at single tumbling windows; a production quantile
//! service answers "p99 over the last 5 minutes / hour / day" from
//! pre-aggregated **rollups**. [`RollupStore`] is that layer:
//!
//! * **Tiers.** A configurable ladder of [`TierSpec`]s — e.g. 1 s → 1 m
//!   → 1 h widths — each holding one sketch per *slot* (an aligned
//!   `[start, start+width)` time range). Closed windows enter the finest
//!   tier via [`RollupStore::ingest_window`].
//! * **Cascade.** When time advances past a coarse slot boundary, the
//!   finer tier's slots covering that range are folded through
//!   [`merge_tree`](qsketch_core::sketch::merge_tree) (in time order, so
//!   the result is deterministic) and the merged sketch becomes the
//!   coarse tier's slot. Mergeability (§2.4) is what makes this lossless
//!   in count and bounded in error — the *growth* of that error down the
//!   cascade is exactly what `ext_rollup_cascade` measures (Fig. 8's
//!   α-deterioration, as a rollup-depth column).
//! * **Range queries.** [`RollupStore::range_query`] decomposes an
//!   arbitrary `[t0, t1)` greedily, coarsest-fit-first, so a query
//!   merges at most `O(Σ ratioᵢ) = O(log n)` stored sketches; the
//!   per-query merge count is returned (and asserted in tests), not just
//!   claimed.
//! * **Retention.** Each tier keeps its newest `keep` slots; older slots
//!   age out (file deleted, memory freed) — but never before they have
//!   cascaded into the next tier, so retention can not drop data the
//!   coarse tiers still need.
//! * **Spill + recovery.** With a spill directory configured, every slot
//!   is written through to its own file using the checkpoint module's
//!   atomic tmp+fsync+rename ([`write_atomic`]) and a versioned envelope
//!   ([`ROLLUP_SLOT_MAGIC`]). [`RollupStore::recover`] rescans the
//!   directory after a crash (kill -9 included), re-runs any cascade the
//!   crash interrupted (deterministic, hence bit-identical to an
//!   uninterrupted run), and re-applies retention. Only the newest
//!   [`RollupConfig::hot_slots`] slots per tier stay decoded in memory;
//!   older slots are demoted to disk and decoded on demand.
//!
//! The durability unit is the **closed window**: a window still being
//! filled upstream is not yet in the store and is lost on a crash, the
//! same contract the keyed engine's registry checkpoints already make.
//!
//! ```
//! use qsketch_streamsim::rollup::{RollupConfig, RollupStore, TierSpec};
//! use qsketch_uddsketch::UddSketch;
//!
//! // Three tiers: 1-unit slots roll into 4-unit, then 16-unit slots.
//! let config = RollupConfig::new(vec![
//!     TierSpec { width: 1, keep: 8 },
//!     TierSpec { width: 4, keep: 8 },
//!     TierSpec { width: 16, keep: 8 },
//! ]);
//! let mut store: RollupStore<UddSketch> = RollupStore::new(config).unwrap();
//! for slot in 0..32u64 {
//!     let mut w = UddSketch::new(0.01, 256);
//!     for i in 0..100 {
//!         w.insert(1.0 + (slot * 100 + i) as f64);
//!     }
//!     store.ingest_window(slot, w).unwrap();
//! }
//! let ans = store.range_query(0, 32).unwrap();
//! assert_eq!(ans.sketch.unwrap().count(), 3_200);
//! assert_eq!(ans.merged_slots, 2); // two 16-wide slots, not 32 fine ones
//! # use qsketch_core::QuantileSketch;
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
use qsketch_core::flatwire::SketchView;
use qsketch_core::sketch::{
    merge_tree_counted, MergeError, MergeableSketch, QuantileSketch, QueryError, SketchError,
};

use crate::checkpoint::write_atomic;
use crate::metrics::RollupMetrics;

/// Magic byte of a spilled rollup-slot file's envelope.
pub const ROLLUP_SLOT_MAGIC: u8 = 0xB5;

/// Current rollup-slot envelope version.
pub const ROLLUP_SLOT_VERSION: u8 = 1;

/// Upper bound on a spilled slot's inner sketch payload (matches the
/// checkpoint module's payload bound).
pub const MAX_SLOT_PAYLOAD: u64 = 64 << 20;

/// One level of the rollup ladder: slot width (in the store's abstract
/// time units) and how many slots the tier retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Slot width in time units. Must be a multiple (≥ 2×) of the
    /// previous tier's width.
    pub width: u64,
    /// How many slots this tier retains before aging the oldest out.
    pub keep: usize,
}

impl TierSpec {
    /// Retention span of the tier in time units (`width × keep`).
    pub fn span(&self) -> u64 {
        self.width * self.keep as u64
    }
}

/// Configuration of a [`RollupStore`].
#[derive(Debug, Clone)]
pub struct RollupConfig {
    /// The tier ladder, finest first. See [`RollupStore::new`] for the
    /// invariants enforced.
    pub tiers: Vec<TierSpec>,
    /// Directory slots are written through to (one file per slot). When
    /// `None` the store is memory-only and not recoverable.
    pub spill_dir: Option<PathBuf>,
    /// How many of the newest slots per tier stay decoded in memory when
    /// spilling is enabled; older slots are read back from disk on
    /// demand. Ignored (everything stays hot) without a spill dir.
    pub hot_slots: usize,
}

impl RollupConfig {
    /// A memory-only store over `tiers` keeping the newest 4 slots per
    /// tier hot once spilling is enabled.
    pub fn new(tiers: Vec<TierSpec>) -> Self {
        Self {
            tiers,
            spill_dir: None,
            hot_slots: 4,
        }
    }

    /// Enable write-through spill to `dir` (created on first write).
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Set how many newest slots per tier stay decoded in memory.
    #[must_use]
    pub fn with_hot_slots(mut self, hot: usize) -> Self {
        self.hot_slots = hot;
        self
    }
}

/// Errors a [`RollupStore`] can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum RollupError {
    /// The tier configuration violates an invariant.
    Config(String),
    /// A window arrived at or before the ingest frontier (ingest must be
    /// in time order).
    OutOfOrder {
        /// Slot start of the rejected window.
        start: u64,
        /// Exclusive end of everything already ingested.
        frontier: u64,
    },
    /// A slot start was not aligned to its tier's width.
    Misaligned {
        /// The offending slot start.
        start: u64,
        /// The width it must be a multiple of.
        width: u64,
    },
    /// A sketch merge failed (incompatible parameters).
    Merge(MergeError),
    /// Reading or writing a spill file failed.
    Io(io::Error),
    /// A spill file failed to decode (corrupt, truncated, or foreign).
    Decode {
        /// The file that failed.
        file: PathBuf,
        /// Why it failed.
        error: DecodeError,
    },
    /// A slot the in-memory index names is missing from disk.
    MissingSlot {
        /// Tier index.
        tier: usize,
        /// Slot start.
        start: u64,
    },
    /// A quantile evaluated against a stored slot was invalid (NaN or
    /// outside `(0, 1]`) or the slot was empty.
    Query(QueryError),
}

impl fmt::Display for RollupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollupError::Config(why) => write!(f, "invalid rollup config: {why}"),
            RollupError::OutOfOrder { start, frontier } => write!(
                f,
                "window at {start} is behind the ingest frontier {frontier}"
            ),
            RollupError::Misaligned { start, width } => {
                write!(f, "slot start {start} is not aligned to width {width}")
            }
            RollupError::Merge(e) => write!(f, "cascade merge failed: {e}"),
            RollupError::Io(e) => write!(f, "rollup spill I/O failed: {e}"),
            RollupError::Decode { file, error } => {
                write!(f, "rollup slot {} failed to decode: {error}", file.display())
            }
            RollupError::MissingSlot { tier, start } => {
                write!(f, "slot t{tier}-{start} is indexed but not loadable")
            }
            RollupError::Query(e) => write!(f, "range quantile failed: {e}"),
        }
    }
}

impl std::error::Error for RollupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RollupError::Merge(e) => Some(e),
            RollupError::Io(e) => Some(e),
            RollupError::Decode { error, .. } => Some(error),
            RollupError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for RollupError {
    fn from(e: QueryError) -> Self {
        RollupError::Query(e)
    }
}

impl From<MergeError> for RollupError {
    fn from(e: MergeError) -> Self {
        RollupError::Merge(e)
    }
}

impl From<io::Error> for RollupError {
    fn from(e: io::Error) -> Self {
        RollupError::Io(e)
    }
}

/// Answer to a [`RollupStore::range_query`].
#[derive(Debug, Clone)]
pub struct RangeAnswer<S> {
    /// The merged sketch over every fully covered slot, `None` when the
    /// range covers no stored slot.
    pub sketch: Option<S>,
    /// How many stored sketches the query merged (the O(log n) bound).
    pub merged_slots: usize,
    /// How many pairwise `merge` calls the fold performed
    /// (`merged_slots − 1` when non-empty).
    pub merge_ops: usize,
    /// The exact `(tier, slot_start)` decomposition, in time order.
    pub parts: Vec<(usize, u64)>,
}

enum SlotState<S> {
    /// Decoded and resident.
    Hot(S),
    /// On disk only; decoded on demand.
    Spilled,
}

struct Tier<S> {
    spec: TierSpec,
    slots: BTreeMap<u64, SlotState<S>>,
}

/// The hierarchical rollup store. See the [module docs](self) for the
/// full contract.
pub struct RollupStore<S> {
    tiers: Vec<Tier<S>>,
    spill_dir: Option<PathBuf>,
    hot_slots: usize,
    /// Exclusive end of everything ingested; meaningful once `started`.
    frontier: u64,
    started: bool,
    /// `next_cascade[i]` = start of the next coarse slot tier `i`
    /// produces into tier `i+1`.
    next_cascade: Vec<u64>,
    metrics: Option<RollupMetrics>,
    /// Fault injection: remaining successful spill writes before an
    /// injected failure (test hook, mirrors the engine's
    /// `FaultInjection`).
    fail_spill_after: Option<u64>,
}

fn align_down(t: u64, w: u64) -> u64 {
    t - t % w
}

fn align_up(t: u64, w: u64) -> u64 {
    t.div_ceil(w) * w
}

impl<S> RollupStore<S>
where
    S: QuantileSketch + MergeableSketch + SketchSerialize + Clone,
{
    /// Build an empty store. Validates the ladder:
    ///
    /// * at least one tier, every width ≥ 1, every `keep` ≥ 1;
    /// * each width a multiple of the previous, with ratio ≥ 2;
    /// * retention spans non-decreasing up the ladder
    ///   (`widthᵢ₊₁ × keepᵢ₊₁ ≥ widthᵢ × keepᵢ`) — coarser tiers look
    ///   further back, which is both the point of a rollup store and
    ///   what keeps crash recovery's cascade re-run exact.
    pub fn new(config: RollupConfig) -> Result<Self, RollupError> {
        let RollupConfig {
            tiers,
            spill_dir,
            hot_slots,
        } = config;
        if tiers.is_empty() {
            return Err(RollupError::Config("at least one tier required".into()));
        }
        for (i, t) in tiers.iter().enumerate() {
            if t.width == 0 {
                return Err(RollupError::Config(format!("tier {i} width must be ≥ 1")));
            }
            if t.keep == 0 {
                return Err(RollupError::Config(format!("tier {i} keep must be ≥ 1")));
            }
            if i > 0 {
                let prev = &tiers[i - 1];
                if t.width % prev.width != 0 || t.width / prev.width < 2 {
                    return Err(RollupError::Config(format!(
                        "tier {i} width {} must be a ≥2× multiple of tier {} width {}",
                        t.width,
                        i - 1,
                        prev.width
                    )));
                }
                if t.span() < prev.span() {
                    return Err(RollupError::Config(format!(
                        "tier {i} retention span {} shorter than tier {}'s {}",
                        t.span(),
                        i - 1,
                        prev.span()
                    )));
                }
            }
        }
        let n = tiers.len();
        Ok(Self {
            tiers: tiers
                .into_iter()
                .map(|spec| Tier {
                    spec,
                    slots: BTreeMap::new(),
                })
                .collect(),
            spill_dir,
            hot_slots,
            frontier: 0,
            started: false,
            next_cascade: vec![0; n.saturating_sub(1)],
            metrics: None,
            fail_spill_after: None,
        })
    }

    /// Attach metric handles; the store updates them from then on. With
    /// many stores sharing one handle set (the keyed engine's per-key
    /// stores) the counters aggregate and the per-tier gauges show the
    /// most recent updater.
    pub fn attach_metrics(&mut self, metrics: RollupMetrics) {
        self.metrics = Some(metrics);
    }

    /// Fault injection for crash tests: after `writes` more successful
    /// spill writes, every further write fails with an injected
    /// [`io::Error`] — simulating a crash mid-cascade without killing
    /// the test process.
    pub fn fail_spill_after(&mut self, writes: u64) {
        self.fail_spill_after = Some(writes);
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// The spec of tier `i`.
    pub fn tier_spec(&self, i: usize) -> TierSpec {
        self.tiers[i].spec
    }

    /// Slot starts currently stored in tier `i`, in time order.
    pub fn slot_starts(&self, i: usize) -> Vec<u64> {
        self.tiers[i].slots.keys().copied().collect()
    }

    /// Exclusive end of everything ingested so far (0 for a fresh store).
    pub fn frontier(&self) -> u64 {
        if self.started {
            self.frontier
        } else {
            0
        }
    }

    /// Load (clone or decode) the sketch stored for `(tier, start)`.
    pub fn slot(&self, tier: usize, start: u64) -> Result<S, RollupError> {
        match self.tiers[tier].slots.get(&start) {
            Some(SlotState::Hot(s)) => Ok(s.clone()),
            Some(SlotState::Spilled) => {
                let dir = self
                    .spill_dir
                    .as_ref()
                    .ok_or(RollupError::MissingSlot { tier, start })?;
                let path = slot_path(dir, tier, start);
                let bytes = fs::read(&path).map_err(|e| {
                    if e.kind() == io::ErrorKind::NotFound {
                        RollupError::MissingSlot { tier, start }
                    } else {
                        RollupError::Io(e)
                    }
                })?;
                let (t, s, payload) =
                    decode_slot_envelope(&bytes, self.tiers.len(), |t| self.tiers[t].spec.width)
                        .map_err(|error| RollupError::Decode {
                            file: path.clone(),
                            error,
                        })?;
                if t != tier || s != start {
                    return Err(RollupError::Decode {
                        file: path,
                        error: DecodeError::Corrupt(format!(
                            "envelope names t{t}-{s}, file names t{tier}-{start}"
                        )),
                    });
                }
                S::decode(&payload).map_err(|error| RollupError::Decode { file: path, error })
            }
            None => Err(RollupError::MissingSlot { tier, start }),
        }
    }

    /// Ingest one closed window into the finest tier. `start` must be
    /// aligned to the finest width and at or past the frontier (gaps are
    /// fine; going backwards is not). Triggers any cascades and
    /// retention the new frontier implies.
    pub fn ingest_window(&mut self, start: u64, sketch: S) -> Result<(), RollupError> {
        let w0 = self.tiers[0].spec.width;
        if !start.is_multiple_of(w0) {
            return Err(RollupError::Misaligned { start, width: w0 });
        }
        if self.started && start < self.frontier {
            return Err(RollupError::OutOfOrder {
                start,
                frontier: self.frontier,
            });
        }
        if !self.started {
            for i in 0..self.next_cascade.len() {
                self.next_cascade[i] = align_down(start, self.tiers[i + 1].spec.width);
            }
            self.started = true;
        }
        self.write_slot(0, start, &sketch)?;
        self.store_slot(0, start, sketch);
        self.frontier = start + w0;
        if let Some(m) = &self.metrics {
            m.windows_ingested.inc();
        }
        self.advance_cascades()?;
        self.apply_retention();
        self.update_gauges();
        Ok(())
    }

    /// Answer `[t0, t1)` by merging every stored slot fully contained in
    /// the range, preferring the coarsest fitting slot at each step.
    /// Partial slot overlap at the edges is excluded — the answer covers
    /// the aligned interior of the range, which [`RangeAnswer::parts`]
    /// spells out exactly.
    pub fn range_query(&self, t0: u64, t1: u64) -> Result<RangeAnswer<S>, RollupError> {
        let parts = self.range_parts(t0, t1);
        let mut sketches = Vec::with_capacity(parts.len());
        for &(tier, start) in &parts {
            sketches.push(self.slot(tier, start)?);
        }
        let merged_slots = sketches.len();
        let folded = merge_tree_counted(sketches)?;
        let (sketch, merge_ops) = match folded {
            Some((s, ops)) => (Some(s), ops),
            None => (None, 0),
        };
        if let Some(m) = &self.metrics {
            m.range_queries.inc();
            m.range_merged_slots.record(merged_slots as u64);
        }
        Ok(RangeAnswer {
            sketch,
            merged_slots,
            merge_ops,
            parts,
        })
    }

    /// The exact `(tier, slot_start)` decomposition of `[t0, t1)`:
    /// coarsest fitting slot at each step, partial edge overlap excluded,
    /// gaps skipped. This is the shared planner behind both
    /// [`range_query`](Self::range_query) and
    /// [`range_query_quantiles`](Self::range_query_quantiles).
    fn range_parts(&self, t0: u64, t1: u64) -> Vec<(usize, u64)> {
        if t1 <= t0 {
            return Vec::new();
        }
        let w0 = self.tiers[0].spec.width;
        let mut parts = Vec::new();
        let mut t = align_up(t0, w0);
        while t + w0 <= t1 {
            let mut advanced = false;
            for i in (0..self.tiers.len()).rev() {
                let w = self.tiers[i].spec.width;
                if t.is_multiple_of(w) && t + w <= t1 && self.tiers[i].slots.contains_key(&t) {
                    parts.push((i, t));
                    t += w;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                t += w0; // gap: nothing stored covers this fine slot
            }
        }
        parts
    }

    /// Read a spilled slot's raw file bytes and return the inner sketch
    /// payload's byte range, validating only the envelope — the sketch
    /// itself stays undecoded.
    fn slot_file_payload(&self, tier: usize, start: u64) -> Result<Vec<u8>, RollupError> {
        let dir = self
            .spill_dir
            .as_ref()
            .ok_or(RollupError::MissingSlot { tier, start })?;
        let path = slot_path(dir, tier, start);
        let bytes = fs::read(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                RollupError::MissingSlot { tier, start }
            } else {
                RollupError::Io(e)
            }
        })?;
        let (t, s, payload) =
            decode_slot_envelope(&bytes, self.tiers.len(), |t| self.tiers[t].spec.width)
                .map_err(|error| RollupError::Decode {
                    file: path.clone(),
                    error,
                })?;
        if t != tier || s != start {
            return Err(RollupError::Decode {
                file: path,
                error: DecodeError::Corrupt(format!(
                    "envelope names t{t}-{s}, file names t{tier}-{start}"
                )),
            });
        }
        Ok(payload)
    }

    /// Rebuild a store from its spill directory after a crash. Re-runs
    /// any cascade the crash interrupted (deterministic merge order over
    /// the same durable children ⇒ bit-identical slots) and re-applies
    /// retention. A missing directory yields an empty store.
    pub fn recover(config: RollupConfig) -> Result<Self, RollupError> {
        if config.spill_dir.is_none() {
            return Err(RollupError::Config(
                "recover requires a spill directory".into(),
            ));
        }
        let mut store = Self::new(config)?;
        let dir = store.spill_dir.clone().expect("checked above");
        if !dir.exists() {
            return Ok(store);
        }
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("slot") {
                continue; // stray tmp files from an interrupted write
            }
            let bytes = fs::read(&path)?;
            let (tier, start, _payload) =
                decode_slot_envelope(&bytes, store.tiers.len(), |t| store.tiers[t].spec.width)
                    .map_err(|error| RollupError::Decode {
                        file: path.clone(),
                        error,
                    })?;
            if path.file_name() != slot_path(&dir, tier, start).file_name() {
                return Err(RollupError::Decode {
                    file: path,
                    error: DecodeError::Corrupt(format!(
                        "file name does not match envelope t{tier}-{start}"
                    )),
                });
            }
            store.tiers[tier].slots.insert(start, SlotState::Spilled);
        }
        if store.tiers.iter().all(|t| t.slots.is_empty()) {
            return Ok(store);
        }
        store.started = true;
        store.frontier = store
            .tiers
            .iter()
            .filter_map(|t| t.slots.keys().next_back().map(|&s| s + t.spec.width))
            .max()
            .expect("some tier is non-empty");
        let earliest = store
            .tiers
            .iter()
            .filter_map(|t| t.slots.keys().next().copied())
            .min()
            .expect("some tier is non-empty");
        for i in 0..store.next_cascade.len() {
            let cw = store.tiers[i + 1].spec.width;
            // Resume exactly after the last durably produced coarse slot;
            // with none produced yet, start from the earliest data.
            store.next_cascade[i] = match store.tiers[i + 1].slots.keys().next_back() {
                Some(&last) => last + cw,
                None => align_down(earliest, cw),
            };
        }
        store.advance_cascades()?;
        store.apply_retention();
        store.update_gauges();
        Ok(store)
    }

    fn advance_cascades(&mut self) -> Result<(), RollupError> {
        for i in 0..self.tiers.len() - 1 {
            let cw = self.tiers[i + 1].spec.width;
            while self.next_cascade[i] + cw <= self.frontier {
                let c = self.next_cascade[i];
                let child_starts: Vec<u64> =
                    self.tiers[i].slots.range(c..c + cw).map(|(&k, _)| k).collect();
                if !child_starts.is_empty() {
                    let mut children = Vec::with_capacity(child_starts.len());
                    for s in child_starts {
                        children.push(self.slot(i, s)?);
                    }
                    let (merged, _) =
                        merge_tree_counted(children)?.expect("non-empty child set");
                    self.write_slot(i + 1, c, &merged)?;
                    self.store_slot(i + 1, c, merged);
                    if let Some(m) = &self.metrics {
                        m.cascades.inc();
                    }
                }
                self.next_cascade[i] = c + cw;
            }
        }
        Ok(())
    }

    fn apply_retention(&mut self) {
        for i in 0..self.tiers.len() {
            let keep = self.tiers[i].spec.keep;
            let width = self.tiers[i].spec.width;
            while self.tiers[i].slots.len() > keep {
                let &oldest = self.tiers[i].slots.keys().next().expect("len > keep > 0");
                // Never age out a slot the next tier has not absorbed yet.
                if i + 1 < self.tiers.len() && oldest + width > self.next_cascade[i] {
                    break;
                }
                self.tiers[i].slots.remove(&oldest);
                if let Some(dir) = &self.spill_dir {
                    match fs::remove_file(slot_path(dir, i, oldest)) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        // Retention is best-effort on the filesystem; a
                        // leftover file is re-aged at next recovery.
                        Err(_) => {}
                    }
                }
                if let Some(m) = &self.metrics {
                    m.aged_out.inc();
                }
            }
        }
    }

    fn store_slot(&mut self, tier: usize, start: u64, sketch: S) {
        self.tiers[tier].slots.insert(start, SlotState::Hot(sketch));
        if self.spill_dir.is_none() {
            return; // nothing to demote to — keep everything resident
        }
        let hot: Vec<u64> = self.tiers[tier]
            .slots
            .iter()
            .filter(|(_, s)| matches!(s, SlotState::Hot(_)))
            .map(|(&k, _)| k)
            .collect();
        if hot.len() > self.hot_slots {
            for &k in &hot[..hot.len() - self.hot_slots] {
                self.tiers[tier].slots.insert(k, SlotState::Spilled);
            }
        }
    }

    fn write_slot(&mut self, tier: usize, start: u64, sketch: &S) -> Result<(), RollupError> {
        let Some(dir) = self.spill_dir.clone() else {
            return Ok(());
        };
        if let Some(n) = self.fail_spill_after {
            if n == 0 {
                return Err(RollupError::Io(io::Error::other(
                    "injected rollup spill failure",
                )));
            }
            self.fail_spill_after = Some(n - 1);
        }
        fs::create_dir_all(&dir)?;
        let mut w = Writer::with_header(ROLLUP_SLOT_MAGIC, ROLLUP_SLOT_VERSION);
        w.varint(tier as u64);
        w.u64(start);
        w.u64(self.tiers[tier].spec.width);
        w.bytes(&sketch.encode());
        let bytes = w.finish();
        write_atomic(&slot_path(&dir, tier, start), &bytes)?;
        if let Some(m) = &self.metrics {
            m.spills.inc();
            m.spill_bytes.record(bytes.len() as u64);
        }
        Ok(())
    }

    fn update_gauges(&self) {
        if let Some(m) = &self.metrics {
            for (i, g) in m.tier_slots.iter().enumerate() {
                if let Some(t) = self.tiers.get(i) {
                    g.set(t.slots.len() as u64);
                }
            }
        }
    }
}

/// Answer to a [`RollupStore::range_query_quantiles`]: quantile values
/// without handing back a sketch, so warm (spilled) single-slot ranges
/// can be served straight from the slot file's bytes.
#[derive(Debug, Clone)]
pub struct RangeQuantiles {
    /// One estimate per requested quantile, empty when the range covers
    /// no stored slot.
    pub values: Vec<f64>,
    /// Total values in the covered slots.
    pub count: u64,
    /// How many stored sketches the answer drew on.
    pub merged_slots: usize,
    /// The exact `(tier, slot_start)` decomposition, in time order.
    pub parts: Vec<(usize, u64)>,
    /// `true` when the answer was evaluated directly over serialized
    /// slot bytes ([`SketchView`]) with no sketch rehydration.
    pub served_from_bytes: bool,
}

impl<S> RollupStore<S>
where
    S: QuantileSketch + MergeableSketch + SketchSerialize + SketchView + Clone,
{
    /// Answer `[t0, t1)` with quantile estimates only, avoiding slot
    /// rehydration where possible. The range decomposes exactly as
    /// [`range_query`](Self::range_query) does; when it lands on a
    /// **single** slot that is spilled (warm), the quantiles are
    /// evaluated straight over the slot file's serialized payload via
    /// [`SketchView::quantile_from_bytes`] — no sketch is decoded. A
    /// single hot slot is queried in place (no clone). Multi-slot ranges
    /// fall back to the decode-and-merge path, since merging requires
    /// live sketches.
    pub fn range_query_quantiles(
        &self,
        t0: u64,
        t1: u64,
        qs: &[f64],
    ) -> Result<RangeQuantiles, RollupError> {
        let parts = self.range_parts(t0, t1);
        let answer = match parts.as_slice() {
            [] => RangeQuantiles {
                values: Vec::new(),
                count: 0,
                merged_slots: 0,
                parts,
                served_from_bytes: false,
            },
            &[(tier, start)] => match self.tiers[tier].slots.get(&start) {
                Some(SlotState::Hot(s)) => RangeQuantiles {
                    values: s.query_many(qs).map_err(sketch_to_rollup_error)?,
                    count: s.count(),
                    merged_slots: 1,
                    parts,
                    served_from_bytes: false,
                },
                Some(SlotState::Spilled) => {
                    let payload = self.slot_file_payload(tier, start)?;
                    let corrupt = |error: DecodeError| RollupError::Decode {
                        file: self
                            .spill_dir
                            .as_ref()
                            .map(|d| slot_path(d, tier, start))
                            .unwrap_or_default(),
                        error,
                    };
                    let mut values = Vec::with_capacity(qs.len());
                    for &q in qs {
                        values.push(S::quantile_from_bytes(&payload, q).map_err(
                            |e| match e {
                                SketchError::Decode(d) => corrupt(d),
                                other => sketch_to_rollup_error(other),
                            },
                        )?);
                    }
                    let count = S::count_from_bytes(&payload).map_err(corrupt)?;
                    if let Some(m) = &self.metrics {
                        m.range_view_serves.inc();
                    }
                    RangeQuantiles {
                        values,
                        count,
                        merged_slots: 1,
                        parts,
                        served_from_bytes: true,
                    }
                }
                None => return Err(RollupError::MissingSlot { tier, start }),
            },
            _ => {
                // `range_query` records its own metrics, so return here
                // rather than double-counting below.
                let answer = self.range_query(t0, t1)?;
                let sketch = answer.sketch.expect("non-empty parts merge to a sketch");
                return Ok(RangeQuantiles {
                    values: sketch.query_many(qs).map_err(sketch_to_rollup_error)?,
                    count: sketch.count(),
                    merged_slots: answer.merged_slots,
                    parts: answer.parts,
                    served_from_bytes: false,
                });
            }
        };
        if let Some(m) = &self.metrics {
            m.range_queries.inc();
            m.range_merged_slots.record(answer.merged_slots as u64);
        }
        Ok(answer)
    }
}

/// Map a [`SketchError`] out of a view/query call onto [`RollupError`].
/// Decode failures are handled at the call sites (they carry the file
/// path); anything else unexpected degrades to a query error.
fn sketch_to_rollup_error(e: impl Into<SketchError>) -> RollupError {
    match e.into() {
        SketchError::Query(q) => RollupError::Query(q),
        SketchError::Merge(m) => RollupError::Merge(m),
        _ => RollupError::Query(QueryError::EstimationFailed(
            "view query failed to decode slot bytes".into(),
        )),
    }
}

/// Path of the spill file for `(tier, start)` under `dir`. Zero-padded
/// so lexicographic listing equals time order.
pub fn slot_path(dir: &Path, tier: usize, start: u64) -> PathBuf {
    dir.join(format!("t{tier}-{start:020}.slot"))
}

/// Decode a spilled slot's envelope: `(tier, slot_start, payload)`.
/// `width_of` supplies the expected width per tier so a file from a
/// differently-laddered store fails loudly.
fn decode_slot_envelope(
    bytes: &[u8],
    num_tiers: usize,
    width_of: impl Fn(usize) -> u64,
) -> Result<(usize, u64, Vec<u8>), DecodeError> {
    let mut r = Reader::with_header(bytes, ROLLUP_SLOT_MAGIC, ROLLUP_SLOT_VERSION)?;
    let tier = r.varint()? as usize;
    if tier >= num_tiers {
        return Err(DecodeError::Corrupt(format!(
            "tier {tier} out of range (store has {num_tiers})"
        )));
    }
    let start = r.u64()?;
    let width = r.u64()?;
    if width != width_of(tier) {
        return Err(DecodeError::Corrupt(format!(
            "tier {tier} width {width} does not match configured {}",
            width_of(tier)
        )));
    }
    if width == 0 || start % width != 0 {
        return Err(DecodeError::Corrupt(format!(
            "slot start {start} misaligned to width {width}"
        )));
    }
    let payload = r.byte_vec(MAX_SLOT_PAYLOAD)?;
    r.expect_exhausted()?;
    Ok((tier, start, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::sketch::{check_quantile, QueryError};

    /// Keep-all test sketch with a trivial wire format: exact answers,
    /// deterministic bytes, order-sensitive enough to catch merge-order
    /// bugs via its stored insertion sequence.
    #[derive(Debug, Clone, Default, PartialEq)]
    struct KeepAll(Vec<f64>);

    impl QuantileSketch for KeepAll {
        fn insert(&mut self, v: f64) {
            self.0.push(v);
        }
        fn query(&self, q: f64) -> Result<f64, QueryError> {
            check_quantile(q)?;
            let mut s = self.0.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
            s.get(rank - 1).copied().ok_or(QueryError::Empty)
        }
        fn count(&self) -> u64 {
            self.0.len() as u64
        }
        fn memory_footprint(&self) -> usize {
            self.0.len() * 8
        }
        fn name(&self) -> &'static str {
            "keep-all"
        }
    }

    impl MergeableSketch for KeepAll {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            self.0.extend_from_slice(&other.0);
            Ok(())
        }
    }

    impl SketchSerialize for KeepAll {
        fn encode(&self) -> Vec<u8> {
            let mut w = Writer::with_header(0x7E, 1);
            w.f64_slice(&self.0);
            w.finish()
        }
        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, 0x7E, 1)?;
            let values = r.f64_vec(1 << 24)?;
            r.expect_exhausted()?;
            Ok(Self(values))
        }
    }

    fn window(slot: u64, per: u64) -> KeepAll {
        let mut s = KeepAll::default();
        for i in 0..per {
            s.insert((slot * per + i) as f64 + 1.0);
        }
        s
    }

    fn ladder(keep: usize) -> Vec<TierSpec> {
        vec![
            TierSpec { width: 1, keep },
            TierSpec { width: 4, keep },
            TierSpec { width: 16, keep },
        ]
    }

    #[test]
    fn config_validation() {
        assert!(RollupStore::<KeepAll>::new(RollupConfig::new(vec![])).is_err());
        // width not a multiple
        assert!(RollupStore::<KeepAll>::new(RollupConfig::new(vec![
            TierSpec { width: 2, keep: 8 },
            TierSpec { width: 3, keep: 8 },
        ]))
        .is_err());
        // ratio 1
        assert!(RollupStore::<KeepAll>::new(RollupConfig::new(vec![
            TierSpec { width: 2, keep: 8 },
            TierSpec { width: 2, keep: 8 },
        ]))
        .is_err());
        // shrinking retention span
        assert!(RollupStore::<KeepAll>::new(RollupConfig::new(vec![
            TierSpec { width: 1, keep: 100 },
            TierSpec { width: 4, keep: 2 },
        ]))
        .is_err());
        assert!(RollupStore::<KeepAll>::new(RollupConfig::new(ladder(8))).is_ok());
    }

    #[test]
    fn in_order_ingest_enforced() {
        let mut s = RollupStore::<KeepAll>::new(RollupConfig::new(ladder(64))).unwrap();
        s.ingest_window(3, window(3, 10)).unwrap();
        assert!(matches!(
            s.ingest_window(2, window(2, 10)),
            Err(RollupError::OutOfOrder { .. })
        ));
        // Gaps are fine.
        s.ingest_window(7, window(7, 10)).unwrap();
        assert_eq!(s.frontier(), 8);
    }

    #[test]
    fn cascade_builds_coarse_tiers() {
        let mut s = RollupStore::<KeepAll>::new(RollupConfig::new(ladder(64))).unwrap();
        for slot in 0..32 {
            s.ingest_window(slot, window(slot, 10)).unwrap();
        }
        assert_eq!(s.slot_starts(0).len(), 32);
        assert_eq!(s.slot_starts(1), vec![0, 4, 8, 12, 16, 20, 24, 28]);
        assert_eq!(s.slot_starts(2), vec![0, 16]);
        // A coarse slot holds exactly its children's data.
        let coarse = s.slot(2, 16).unwrap();
        assert_eq!(coarse.count(), 160);
        assert_eq!(coarse.query(1.0).unwrap(), 320.0);
    }

    #[test]
    fn range_query_prefers_coarse_and_counts_merges() {
        let mut s = RollupStore::<KeepAll>::new(RollupConfig::new(ladder(64))).unwrap();
        for slot in 0..32 {
            s.ingest_window(slot, window(slot, 10)).unwrap();
        }
        let full = s.range_query(0, 32).unwrap();
        assert_eq!(full.parts, vec![(2, 0), (2, 16)]);
        assert_eq!(full.merged_slots, 2);
        assert_eq!(full.merge_ops, 1);
        assert_eq!(full.sketch.unwrap().count(), 320);

        let inner = s.range_query(1, 31).unwrap();
        assert_eq!(
            inner.parts,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 8),
                (1, 12),
                (1, 16),
                (1, 20),
                (1, 24),
                (0, 28),
                (0, 29),
                (0, 30),
            ]
        );
        assert_eq!(inner.sketch.unwrap().count(), 300);

        // Empty and degenerate ranges.
        assert_eq!(s.range_query(5, 5).unwrap().merged_slots, 0);
        assert!(s.range_query(1000, 2000).unwrap().sketch.is_none());
    }

    #[test]
    fn range_query_merge_count_is_logarithmic_for_all_subranges() {
        let tiers = vec![
            TierSpec { width: 1, keep: 64 },
            TierSpec { width: 4, keep: 64 },
            TierSpec { width: 16, keep: 64 },
            TierSpec { width: 64, keep: 64 },
        ];
        let mut s = RollupStore::<KeepAll>::new(RollupConfig::new(tiers.clone())).unwrap();
        let n = 64u64;
        for slot in 0..n {
            s.ingest_window(slot, window(slot, 3)).unwrap();
        }
        // Greedy coarsest-fit uses < ratio slots of each tier per range
        // edge, plus the top tier's count over the whole span.
        let ratio_sum: u64 = (1..tiers.len())
            .map(|i| tiers[i].width / tiers[i - 1].width - 1)
            .sum();
        let bound = (2 * ratio_sum + n / tiers.last().unwrap().width) as usize;
        for t0 in 0..n {
            for t1 in t0..=n {
                let ans = s.range_query(t0, t1).unwrap();
                assert!(
                    ans.merged_slots <= bound,
                    "[{t0}, {t1}) merged {} slots, bound {bound}",
                    ans.merged_slots
                );
                // Coverage is exact: every fine slot in [t0, t1) once.
                let expect = (t1 - t0) * 3;
                let got = ans.sketch.map_or(0, |sk| sk.count());
                assert_eq!(got, expect, "[{t0}, {t1}) covered wrong count");
            }
        }
    }

    #[test]
    fn retention_ages_fine_slots_out_but_coarse_tiers_answer() {
        let tiers = vec![
            TierSpec { width: 1, keep: 4 },
            TierSpec { width: 4, keep: 100 },
        ];
        let mut s = RollupStore::<KeepAll>::new(RollupConfig::new(tiers)).unwrap();
        for slot in 0..16 {
            s.ingest_window(slot, window(slot, 5)).unwrap();
        }
        assert_eq!(s.slot_starts(0), vec![12, 13, 14, 15]);
        assert_eq!(s.slot_starts(1), vec![0, 4, 8, 12]);
        // The aged range is served by tier 1.
        let ans = s.range_query(0, 12).unwrap();
        assert_eq!(ans.parts, vec![(1, 0), (1, 4), (1, 8)]);
        assert_eq!(ans.sketch.unwrap().count(), 60);
        // A range only fine slots could cover, now aged, reports a gap.
        assert_eq!(s.range_query(1, 3).unwrap().merged_slots, 0);
    }

    #[test]
    fn spill_demotes_cold_slots_and_reloads_identically() {
        let dir = std::env::temp_dir().join(format!("rollup-spill-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = RollupConfig::new(ladder(64))
            .with_spill_dir(&dir)
            .with_hot_slots(1);
        let mut spilled = RollupStore::<KeepAll>::new(config).unwrap();
        let mut resident = RollupStore::<KeepAll>::new(RollupConfig::new(ladder(64))).unwrap();
        for slot in 0..32 {
            spilled.ingest_window(slot, window(slot, 7)).unwrap();
            resident.ingest_window(slot, window(slot, 7)).unwrap();
        }
        for (t0, t1) in [(0, 32), (3, 29), (1, 2), (8, 24)] {
            let a = spilled.range_query(t0, t1).unwrap();
            let b = resident.range_query(t0, t1).unwrap();
            assert_eq!(a.parts, b.parts);
            let (a, b) = (a.sketch.unwrap(), b.sketch.unwrap());
            assert_eq!(a, b, "disk-backed answer differs for [{t0}, {t1})");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_rebuilds_bit_identical_store() {
        let dir = std::env::temp_dir().join(format!("rollup-recover-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = RollupConfig::new(ladder(8)).with_spill_dir(&dir);
        let mut before = RollupStore::<KeepAll>::new(config.clone()).unwrap();
        for slot in 0..37 {
            before.ingest_window(slot, window(slot, 11)).unwrap();
        }
        let after = RollupStore::<KeepAll>::recover(config).unwrap();
        assert_eq!(after.frontier(), before.frontier());
        for i in 0..3 {
            assert_eq!(after.slot_starts(i), before.slot_starts(i), "tier {i}");
        }
        for (t0, t1) in [(0, 37), (5, 31), (20, 37)] {
            let a = before.range_query(t0, t1).unwrap().sketch;
            let b = after.range_query(t0, t1).unwrap().sketch;
            assert_eq!(a, b, "[{t0}, {t1})");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_replays_interrupted_cascade() {
        let dir = std::env::temp_dir().join(format!("rollup-midcrash-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = RollupConfig::new(ladder(8)).with_spill_dir(&dir);
        let mut s = RollupStore::<KeepAll>::new(config.clone()).unwrap();
        // Ingesting slot 15 performs three writes: the fine slot (#19),
        // the tier-1 slot [12,16) (#20), and the tier-2 slot [0,16)
        // (#21). Allowing exactly 20 writes crashes *between* the two
        // cascade writes — the interrupted-cascade case.
        s.fail_spill_after(20);
        let mut crashed_at = None;
        for slot in 0..24 {
            if let Err(e) = s.ingest_window(slot, window(slot, 5)) {
                assert!(matches!(e, RollupError::Io(_)));
                crashed_at = Some(slot);
                break;
            }
        }
        let crashed_at = crashed_at.expect("injected failure fired");
        assert_eq!(crashed_at, 15);
        drop(s);
        let recovered = RollupStore::<KeepAll>::recover(config.clone()).unwrap();
        // Reference: an uninterrupted run over the windows that became
        // durable (the crashed window's fine write itself succeeded; the
        // tier-2 cascade write did not and must be replayed).
        let refdir = dir.with_extension("ref");
        let _ = fs::remove_dir_all(&refdir);
        let refcfg = RollupConfig::new(ladder(8)).with_spill_dir(&refdir);
        let mut reference = RollupStore::<KeepAll>::new(refcfg).unwrap();
        for slot in 0..=crashed_at {
            reference.ingest_window(slot, window(slot, 5)).unwrap();
        }
        for i in 0..3 {
            assert_eq!(
                recovered.slot_starts(i),
                reference.slot_starts(i),
                "tier {i} after mid-cascade crash"
            );
        }
        let end = crashed_at + 1;
        let a = recovered.range_query(0, end).unwrap().sketch.unwrap();
        let b = reference.range_query(0, end).unwrap().sketch.unwrap();
        assert_eq!(a, b);
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&refdir);
    }

    #[test]
    fn corrupt_slot_file_fails_recovery_loudly() {
        let dir = std::env::temp_dir().join(format!("rollup-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = RollupConfig::new(ladder(8)).with_spill_dir(&dir);
        let mut s = RollupStore::<KeepAll>::new(config.clone()).unwrap();
        for slot in 0..4 {
            s.ingest_window(slot, window(slot, 5)).unwrap();
        }
        drop(s);
        let victim = slot_path(&dir, 0, 2);
        fs::write(&victim, b"garbage").unwrap();
        assert!(matches!(
            RollupStore::<KeepAll>::recover(config),
            Err(RollupError::Decode { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_track_ingest_cascade_and_queries() {
        use qsketch_core::metrics::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let metrics = RollupMetrics::register(&registry, "rollup", 3);
        let mut s = RollupStore::<KeepAll>::new(RollupConfig::new(ladder(64))).unwrap();
        s.attach_metrics(metrics);
        for slot in 0..16 {
            s.ingest_window(slot, window(slot, 5)).unwrap();
        }
        let _ = s.range_query(0, 16).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rollup.windows_ingested"), Some(16));
        assert_eq!(snap.counter("rollup.cascades"), Some(5)); // 4×t1 + 1×t2
        assert_eq!(snap.counter("rollup.range_queries"), Some(1));
        assert_eq!(snap.gauge("rollup.tier.0.slots"), Some(16));
        assert_eq!(snap.gauge("rollup.tier.1.slots"), Some(4));
        assert_eq!(snap.gauge("rollup.tier.2.slots"), Some(1));
    }

    #[test]
    fn range_quantiles_serve_single_spilled_slot_from_bytes() {
        use qsketch_core::metrics::MetricsRegistry;
        use qsketch_kll::KllSketch;
        let dir = std::env::temp_dir().join(format!("rollup-view-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = RollupConfig::new(ladder(64))
            .with_spill_dir(&dir)
            .with_hot_slots(1);
        let mut store = RollupStore::<KllSketch>::new(config).unwrap();
        let registry = MetricsRegistry::new();
        store.attach_metrics(RollupMetrics::register(&registry, "rollup", 3));
        for slot in 0..16 {
            let mut s = KllSketch::with_seed(200, slot);
            for i in 0..400 {
                s.insert((slot * 1_000 + i) as f64);
            }
            store.ingest_window(slot, s).unwrap();
        }

        // A single old fine slot is warm (spilled): served from bytes,
        // bit-identical to decoding the slot and querying it.
        let qs = [0.05, 0.5, 0.95];
        let view = store.range_query_quantiles(2, 3, &qs).unwrap();
        assert!(view.served_from_bytes);
        assert_eq!(view.merged_slots, 1);
        let reference = store.range_query(2, 3).unwrap().sketch.unwrap();
        assert_eq!(view.count, reference.count());
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(
                view.values[i].to_bits(),
                reference.query(q).unwrap().to_bits(),
                "q={q}"
            );
        }

        // Multi-slot ranges must merge, so they fall back to decoding —
        // but the answers still agree with the merge path bit-for-bit.
        let multi = store.range_query_quantiles(0, 16, &qs).unwrap();
        assert!(!multi.served_from_bytes);
        let merged = store.range_query(0, 16).unwrap().sketch.unwrap();
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(multi.values[i].to_bits(), merged.query(q).unwrap().to_bits());
        }

        // An empty range answers empty, not an error.
        let empty = store.range_query_quantiles(40, 50, &qs).unwrap();
        assert!(empty.values.is_empty());
        assert_eq!(empty.count, 0);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("rollup.range_view_serves"), Some(1));
        // 3 quantile queries + the 2 reference range_query calls above.
        assert_eq!(snap.counter("rollup.range_queries"), Some(5));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! A deterministic, single-process stream-processing simulator standing in
//! for Apache Flink in the paper's accuracy experiments (§4.2, §4.6).
//!
//! The paper runs its accuracy experiments as Flink jobs: a source emits
//! 50 000 events/s, a network-delay model separates *generated time* from
//! *ingestion time*, and 20 s event-time **tumbling windows** aggregate a
//! quantile sketch per window; late events (arriving after their window
//! fired) are dropped (§2.5–2.6). Everything the measured quantity — the
//! per-window relative error — depends on is windowing *semantics*, not
//! cluster plumbing, so this crate implements those semantics exactly and
//! deterministically:
//!
//! * [`event::Event`] — value + generated/ingestion timestamps (µs),
//! * [`delay::NetworkDelay`] — none, fixed, or exponential (the §4.6 model:
//!   exponential with 150 ms mean),
//! * [`source`] — seeded event generation at a configurable rate,
//! * [`window`] — event-time tumbling windows with a
//!   max-event-time watermark and zero allowed lateness: exactly Flink's
//!   ascending-timestamp watermarking, under which an event is *late* iff
//!   a same-window-or-later event already closed its window,
//! * [`harness`] — the full §4.2 experiment loop: N windows per run, first
//!   window discarded, per-quantile relative error against an exact
//!   in-window oracle, averaged over independent runs with 95 % CIs,
//! * [`metrics`] — pipeline observability built on
//!   `qsketch_core::metrics`: watermark lag, late-drop counters, per-window
//!   emit latency, per-partition event counts; attached via
//!   [`TumblingWindows::with_metrics`] or recorded wholesale by
//!   [`harness::run_accuracy_instrumented`],
//! * [`engine`] — beyond the paper: a true multi-threaded sharded
//!   ingestion engine (batching router → bounded per-shard queues →
//!   worker threads → binary merge tree on query) with blocking
//!   backpressure, for testing how far the mergeability property of §2.4
//!   actually parallelises on real threads,
//! * [`checkpoint`] — periodic per-shard checkpoints (atomic file
//!   replace of each sketch's wire payload) and the deterministic
//!   replay-skip recovery the engine builds on them, with fault
//!   injection to prove a killed shard worker loses nothing durable,
//! * [`routing`] — the key→shard vocabulary shared by both engines:
//!   stable FNV-1a hashing, multiply-shift range reduction, and the
//!   round-robin / hashed [`Router`] policies,
//! * [`keyed_engine`] — the serving-side engine: hash-routed
//!   per-`(tenant, key)` sketch registries, per-tenant token-bucket
//!   quotas that reject instead of block, snapshot/merged queries, and
//!   whole-registry checkpoints — what `qsketch-server` fronts over TCP,
//! * [`rollup`] — the hierarchical time-series rollup store: closed
//!   windows cascade into coarser tiers via `merge_tree`, arbitrary
//!   `[t0, t1)` range queries merge O(log n) stored sketches, retention
//!   ages tiers out, and warm tiers spill to disk in the checkpoint
//!   format (atomic replace, versioned envelope, kill-9 recoverable).
//!
//! # Example
//!
//! ```
//! use qsketch_streamsim::delay::NetworkDelay;
//! use qsketch_streamsim::source::EventSource;
//! use qsketch_streamsim::window::TumblingWindows;
//!
//! // 1000 events/s, 1 s windows, no delay.
//! let events = EventSource::new(Box::new(Counter(0.0)), 1000, NetworkDelay::None, 1)
//!     .take_events(3_000);
//! let mut windows = TumblingWindows::new(1_000_000, Vec::new);
//! for e in events {
//!     windows.observe(e); // Vec<f64> implements WindowState
//! }
//! let fired = windows.close();
//! assert_eq!(fired.results.len(), 3);
//! assert_eq!(fired.results[0].items.len(), 1000);
//!
//! struct Counter(f64);
//! impl qsketch_datagen::ValueStream for Counter {
//!     fn next_value(&mut self) -> f64 { self.0 += 1.0; self.0 }
//! }
//! ```

pub mod builder;
pub mod checkpoint;
pub mod concurrent;
pub mod delay;
pub mod engine;
pub mod event;
pub mod harness;
pub mod keyed;
pub mod keyed_engine;
pub mod metrics;
pub mod parallel;
pub mod rollup;
pub mod routing;
pub mod session;
pub mod sliding;
pub mod source;
pub mod window;

pub use builder::EngineBuilder;
pub use checkpoint::CheckpointConfig;
pub use concurrent::{
    EpochCell, HandoffRing, PopState, PushReport, ShardSnapshot, SnapshotHandle,
    DEFAULT_EPOCH_INTERVAL,
};
pub use delay::NetworkDelay;
pub use engine::{EngineConfig, EngineError, FaultInjection, ShardedEngine};
pub use event::Event;
pub use harness::{AccuracyConfig, RunSummary, WindowAccuracy};
pub use keyed::{KeyedEvent, KeyedTumblingWindows};
pub use keyed_engine::{
    KeyedEngine, KeyedEngineConfig, KeyedEngineError, KeyedEngineStats, RollupOptions,
    TenantQuota,
};
pub use metrics::{
    EngineMetrics, KeyedEngineMetrics, PartitionMetrics, PipelineMetrics, RollupMetrics,
};
pub use rollup::{RangeAnswer, RollupConfig, RollupError, RollupStore, TierSpec};
pub use routing::{hash_bytes, hash_pair, shard_for, Router, RoutingPolicy};
pub use parallel::PartitionedWindow;
pub use session::SessionWindows;
pub use sliding::SlidingWindows;
pub use source::EventSource;
pub use window::{FiredWindows, TumblingWindows, WindowResult};

/// The paper's event rate (§4.2): 50 000 events per second.
pub const PAPER_EVENTS_PER_SEC: u64 = 50_000;

/// The paper's window length (§4.2): 20 s, ≈ 1 M events per window.
pub const PAPER_WINDOW_SECS: u64 = 20;

/// The paper's per-run window count (§4.2): 220 s ≈ 11 windows, the first
/// discarded, 10 averaged.
pub const PAPER_WINDOWS_PER_RUN: usize = 11;

/// The paper's independent-run count (§4.2).
pub const PAPER_NUM_RUNS: usize = 10;

/// The §4.6 network-delay mean (150 ms).
pub const PAPER_MEAN_DELAY_MS: f64 = 150.0;

//! Keyed tumbling windows: per-key quantile aggregation, the group-by
//! form every production Flink job of the paper's motivating applications
//! takes (per-endpoint response times, per-region fares, …).
//!
//! Semantics compose the §2.5 building blocks: events carry a key, each
//! `(key, window)` pair owns one aggregate state, the watermark is global
//! (event time does not depend on the key), and late events are dropped
//! per window exactly as in [`crate::window::TumblingWindows`].
//!
//! # Example
//!
//! Two endpoints sharing one 1 s tumbling window, one state each:
//!
//! ```
//! use qsketch_streamsim::event::Event;
//! use qsketch_streamsim::keyed::{KeyedEvent, KeyedTumblingWindows};
//!
//! let mut op = KeyedTumblingWindows::new(1_000_000, Vec::new);
//! for i in 0..2_000u64 {
//!     let key = if i % 2 == 0 { "/checkout" } else { "/search" };
//!     // /checkout is 10x slower than /search.
//!     let latency = if i % 2 == 0 { 100.0 } else { 10.0 };
//!     op.observe(KeyedEvent {
//!         key,
//!         event: Event::new(latency, i * 1_000, 0),
//!     });
//! }
//! let fired = op.close();
//! assert_eq!(fired.results.len(), 4); // 2 windows x 2 keys
//! for r in &fired.results {
//!     let expect = if r.key == "/checkout" { 100.0 } else { 10.0 };
//!     assert_eq!(r.count, 500);
//!     assert!(r.items.iter().all(|&v| v == expect));
//! }
//! ```

use std::collections::{BTreeMap, HashMap};

use crate::event::Event;
use crate::window::WindowState;

/// An event paired with its grouping key.
#[derive(Debug, Clone)]
pub struct KeyedEvent<K> {
    /// Grouping key.
    pub key: K,
    /// The underlying event.
    pub event: Event,
}

/// One fired `(key, window)` result.
#[derive(Debug)]
pub struct KeyedWindowResult<K, S> {
    /// Grouping key.
    pub key: K,
    /// Window start (µs, inclusive).
    pub start_us: u64,
    /// Window end (µs, exclusive).
    pub end_us: u64,
    /// Events aggregated for this key in this window.
    pub count: u64,
    /// Accumulated state.
    pub items: S,
}

/// Everything produced by a keyed windowed run.
#[derive(Debug)]
pub struct KeyedFired<K, S> {
    /// Fired per-key windows, ordered by window start (key order within a
    /// window is unspecified).
    pub results: Vec<KeyedWindowResult<K, S>>,
    /// Late events dropped (their window had fired for every key).
    pub dropped_late: u64,
    /// Total events observed.
    pub total: u64,
}

/// Event-time keyed tumbling-window operator.
pub struct KeyedTumblingWindows<K, S, F: FnMut() -> S> {
    window_us: u64,
    factory: F,
    /// Open windows: window index → per-key state.
    open: BTreeMap<u64, HashMap<K, (S, u64)>>,
    watermark_us: u64,
    fired_below: u64,
    results: Vec<KeyedWindowResult<K, S>>,
    dropped_late: u64,
    total: u64,
}

impl<K, S, F> KeyedTumblingWindows<K, S, F>
where
    K: std::hash::Hash + Eq + Clone,
    S: WindowState,
    F: FnMut() -> S,
{
    /// Create an operator; `factory` builds each `(key, window)` state.
    pub fn new(window_us: u64, factory: F) -> Self {
        assert!(window_us > 0);
        Self {
            window_us,
            factory,
            open: BTreeMap::new(),
            watermark_us: 0,
            fired_below: 0,
            results: Vec::new(),
            dropped_late: 0,
            total: 0,
        }
    }

    /// Number of distinct keys currently open in the oldest window.
    pub fn open_keys(&self) -> usize {
        self.open
            .first_key_value()
            .map(|(_, m)| m.len())
            .unwrap_or(0)
    }

    /// Feed one keyed event (ingestion order).
    pub fn observe(&mut self, keyed: KeyedEvent<K>) {
        self.total += 1;
        let idx = keyed.event.event_time_us / self.window_us;

        if keyed.event.event_time_us > self.watermark_us {
            self.watermark_us = keyed.event.event_time_us;
            let fire_below = self.watermark_us / self.window_us;
            while let Some((&widx, _)) = self.open.first_key_value() {
                if widx >= fire_below {
                    break;
                }
                let (widx, keys) = self.open.pop_first().expect("non-empty");
                for (key, (items, count)) in keys {
                    self.results.push(KeyedWindowResult {
                        key,
                        start_us: widx * self.window_us,
                        end_us: (widx + 1) * self.window_us,
                        count,
                        items,
                    });
                }
            }
            self.fired_below = self.fired_below.max(fire_below);
        }

        if idx < self.fired_below {
            self.dropped_late += 1;
            return;
        }

        let factory = &mut self.factory;
        let per_key = self.open.entry(idx).or_default();
        let (state, count) = per_key
            .entry(keyed.key)
            .or_insert_with(|| (factory(), 0));
        state.observe(keyed.event.value);
        *count += 1;
    }

    /// End of stream: fire everything.
    pub fn close(mut self) -> KeyedFired<K, S> {
        while let Some((widx, keys)) = self.open.pop_first() {
            for (key, (items, count)) in keys {
                self.results.push(KeyedWindowResult {
                    key,
                    start_us: widx * self.window_us,
                    end_us: (widx + 1) * self.window_us,
                    count,
                    items,
                });
            }
        }
        KeyedFired {
            results: self.results,
            dropped_late: self.dropped_late,
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kev(key: &'static str, value: f64, event_ms: u64) -> KeyedEvent<&'static str> {
        KeyedEvent {
            key,
            event: Event::new(value, event_ms * 1_000, 0),
        }
    }

    #[test]
    fn keys_are_windowed_independently() {
        let mut op = KeyedTumblingWindows::new(1_000_000, Vec::new);
        op.observe(kev("a", 1.0, 0));
        op.observe(kev("b", 100.0, 10));
        op.observe(kev("a", 2.0, 500));
        op.observe(kev("a", 3.0, 1500)); // fires window 0 for both keys
        let fired = op.close();
        assert_eq!(fired.results.len(), 3); // (a, w0), (b, w0), (a, w1)
        let a0 = fired
            .results
            .iter()
            .find(|r| r.key == "a" && r.start_us == 0)
            .unwrap();
        assert_eq!(a0.items, vec![1.0, 2.0]);
        let b0 = fired
            .results
            .iter()
            .find(|r| r.key == "b" && r.start_us == 0)
            .unwrap();
        assert_eq!(b0.items, vec![100.0]);
    }

    #[test]
    fn watermark_is_global_across_keys() {
        // An event on key "b" advances the watermark and fires key "a"'s
        // window too: lateness is a property of time, not of the key.
        let mut op = KeyedTumblingWindows::new(1_000_000, Vec::new);
        op.observe(kev("a", 1.0, 0));
        op.observe(kev("b", 2.0, 2_500));
        op.observe(kev("a", 3.0, 500)); // late: window 0 fired for all keys
        let fired = op.close();
        assert_eq!(fired.dropped_late, 1);
    }

    #[test]
    fn sketch_per_key_per_window() {
        use qsketch_core::QuantileSketch;
        use qsketch_ddsketch::DdSketch;

        struct S(DdSketch);
        impl WindowState for S {
            fn observe(&mut self, v: f64) {
                self.0.insert(v);
            }
        }
        let mut op = KeyedTumblingWindows::new(1_000_000, || S(DdSketch::unbounded(0.01)));
        for i in 0..3_000u64 {
            let key = if i % 3 == 0 { "checkout" } else { "search" };
            let latency = if key == "checkout" { 200.0 } else { 20.0 };
            op.observe(KeyedEvent {
                key,
                event: Event::new(latency + (i % 10) as f64, i * 1_000, 0),
            });
        }
        let fired = op.close();
        for r in &fired.results {
            let p50 = r.items.0.query(0.5).unwrap();
            match r.key {
                "checkout" => assert!((195.0..215.0).contains(&p50), "checkout p50 {p50}"),
                "search" => assert!((18.0..32.0).contains(&p50), "search p50 {p50}"),
                other => panic!("unexpected key {other}"),
            }
        }
    }

    #[test]
    fn empty_stream() {
        let op: KeyedTumblingWindows<&str, Vec<f64>, _> =
            KeyedTumblingWindows::new(1_000_000, Vec::new);
        let fired = op.close();
        assert!(fired.results.is_empty());
        assert_eq!(fired.total, 0);
    }
}

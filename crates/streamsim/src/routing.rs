//! Key→shard routing for the sharded engines.
//!
//! The original [`ShardedEngine`](crate::engine::ShardedEngine) routed
//! batches **round-robin**: perfect balance, but a value's shard depends
//! on its position in the stream, so per-key state cannot live on one
//! shard. Multi-tenant serving needs the opposite trade: route by a
//! **hash of the key**, so that every value of a `(tenant, metric-key)`
//! pair lands on the same shard and a point query touches exactly one
//! shard's registry — the property that makes per-key sharded serving
//! cheap (UDDSketch-style mergeability then covers cross-key queries).
//!
//! This module is the shared routing vocabulary of both policies:
//!
//! * [`hash_bytes`] / [`hash_pair`] — FNV-1a 64, a std-only, stable,
//!   seedless hash. Stability matters: the hash is part of the *recovery
//!   contract* (a registry checkpoint pins each key to the shard the
//!   hash chose, and `SipHash`'s per-process random keys would break
//!   that across restarts).
//! * [`shard_for`] — hash → shard index by multiply-shift mixing then
//!   range reduction, so low-entropy FNV outputs still spread.
//! * [`Router`] — the policy object: `RoundRobin` (stateful rotation)
//!   or `Hashed` (stateless, keyed).
//!
//! ```
//! use qsketch_streamsim::routing::{hash_pair, shard_for, Router, RoutingPolicy};
//!
//! // The same (tenant, key) always routes to the same shard…
//! let h = hash_pair("acme", "checkout.latency");
//! assert_eq!(shard_for(h, 8), shard_for(h, 8));
//!
//! // …while a round-robin router rotates regardless of the key.
//! let mut rr = Router::new(RoutingPolicy::RoundRobin, 3);
//! assert_eq!(
//!     [rr.route(None), rr.route(None), rr.route(None), rr.route(None)],
//!     [0, 1, 2, 0],
//! );
//! ```

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string. Stable across processes and builds —
/// safe to persist in checkpoints and to compare across a server restart.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a `(tenant, key)` pair as one identity. The `0xFF` separator
/// (never valid inside UTF-8 text) keeps the pair unambiguous:
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[inline]
pub fn hash_pair(tenant: &str, key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in tenant.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= 0xFF;
    h = h.wrapping_mul(FNV_PRIME);
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Map a 64-bit hash onto `0..shards`. A Fibonacci multiply-shift mix
/// runs first so that hashes differing only in high bits (FNV mixes
/// low-to-high) still spread over small shard counts.
///
/// # Panics
/// If `shards == 0`.
#[inline]
pub fn shard_for(hash: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard_for needs at least one shard");
    let mixed = hash.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) as usize) % shards
}

/// Which routing policy a router applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Rotate through the shards in order, ignoring keys. Perfect
    /// balance; a value's shard depends on stream position.
    RoundRobin,
    /// Route by key hash ([`shard_for`]). Every value of a key lands on
    /// one shard; balance depends on the key distribution.
    Hashed,
}

/// A routing decision maker over a fixed shard count.
///
/// `route(None)` is an unkeyed value: round-robin rotates, hashed
/// routers fall back to rotation too (an unkeyed value has no home
/// shard, and dropping it would be worse). `route(Some(hash))` is a
/// keyed value: hashed routers pin it, round-robin ignores the key.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    shards: usize,
    next: usize,
}

impl Router {
    /// A router over `shards` shards (must be ≥ 1).
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn new(policy: RoutingPolicy, shards: usize) -> Self {
        assert!(shards > 0, "router needs at least one shard");
        Self {
            policy,
            shards,
            next: 0,
        }
    }

    /// The policy this router applies.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Pick the shard for the next batch. See the type docs for the
    /// `None` / `Some(hash)` semantics.
    #[inline]
    pub fn route(&mut self, key_hash: Option<u64>) -> usize {
        match (self.policy, key_hash) {
            (RoutingPolicy::Hashed, Some(h)) => shard_for(h, self.shards),
            _ => {
                let shard = self.next;
                self.next = (self.next + 1) % self.shards;
                shard
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn pair_separator_disambiguates() {
        assert_ne!(hash_pair("ab", "c"), hash_pair("a", "bc"));
        assert_ne!(hash_pair("", "x"), hash_pair("x", ""));
        assert_eq!(hash_pair("t", "k"), hash_pair("t", "k"));
    }

    #[test]
    fn shard_for_is_stable_and_in_range() {
        for shards in 1..=16 {
            for i in 0..1_000u64 {
                let h = hash_bytes(&i.to_le_bytes());
                let s = shard_for(h, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(h, shards));
            }
        }
    }

    #[test]
    fn shard_for_spreads_realistic_keys() {
        // 1000 metric-style keys over 8 shards: no shard may be starved
        // or hold more than twice its fair share.
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for t in 0..10 {
            for k in 0..100 {
                let h = hash_pair(&format!("tenant-{t}"), &format!("api.endpoint.{k}.latency"));
                counts[shard_for(h, shards)] += 1;
            }
        }
        for &c in &counts {
            assert!(c > 0, "starved shard: {counts:?}");
            assert!(c < 2 * 1000 / shards, "hot shard: {counts:?}");
        }
    }

    #[test]
    fn round_robin_ignores_keys() {
        let mut r = Router::new(RoutingPolicy::RoundRobin, 2);
        assert_eq!(r.route(Some(123)), 0);
        assert_eq!(r.route(Some(123)), 1);
        assert_eq!(r.route(Some(123)), 0);
    }

    #[test]
    fn hashed_pins_keys_and_rotates_unkeyed() {
        let mut r = Router::new(RoutingPolicy::Hashed, 4);
        let h = hash_pair("t", "k");
        let home = r.route(Some(h));
        for _ in 0..10 {
            assert_eq!(r.route(Some(h)), home);
        }
        // Unkeyed values still go somewhere, rotating.
        let a = r.route(None);
        let b = r.route(None);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        Router::new(RoutingPolicy::Hashed, 0);
    }

    #[test]
    fn single_shard_topology_routes_everything_to_zero() {
        // shards == 1 is a legal (and common in tests) topology: every
        // hash, every policy, keyed or not, must land on shard 0.
        let mut hashed = Router::new(RoutingPolicy::Hashed, 1);
        let mut rr = Router::new(RoutingPolicy::RoundRobin, 1);
        for i in 0..100u64 {
            let h = hash_bytes(&i.to_le_bytes());
            assert_eq!(shard_for(h, 1), 0);
            assert_eq!(hashed.route(Some(h)), 0);
            assert_eq!(hashed.route(None), 0);
            assert_eq!(rr.route(Some(h)), 0);
            assert_eq!(rr.route(None), 0);
        }
        assert_eq!(shard_for(u64::MAX, 1), 0);
        assert_eq!(shard_for(0, 1), 0);
    }

    #[test]
    fn empty_keys_hash_stably_and_route_in_range() {
        // The empty byte string is the FNV offset basis by definition,
        // and empty tenants/keys are distinct identities, not errors.
        assert_eq!(hash_bytes(b""), FNV_OFFSET);
        assert_ne!(hash_pair("", ""), hash_bytes(b""));
        assert_ne!(hash_pair("", "k"), hash_pair("k", ""));
        assert_eq!(hash_pair("", ""), hash_pair("", ""));
        for shards in 1..=16 {
            assert!(shard_for(hash_bytes(b""), shards) < shards);
            assert!(shard_for(hash_pair("", ""), shards) < shards);
        }
    }

    #[test]
    fn shard_for_distribution_passes_chi_square_over_64_shards() {
        // 64 000 realistic (tenant, key) identities over 64 shards:
        // X² = Σ (observed − expected)² / expected with df = 63. The
        // 99.9 % critical value is ≈ 103.4; a uniform router stays well
        // under it, while a broken mix (e.g. dropping the multiply-shift
        // and reducing raw FNV, whose low bits correlate with short key
        // suffixes) blows past. Deterministic inputs, so no flakiness.
        let shards = 64usize;
        let mut counts = vec![0u64; shards];
        let mut n = 0u64;
        for t in 0..40 {
            for k in 0..1_600 {
                let h = hash_pair(&format!("tenant-{t}"), &format!("svc.{}.op.{k}.p99", t % 7));
                counts[shard_for(h, shards)] += 1;
                n += 1;
            }
        }
        let expected = n as f64 / shards as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 103.4,
            "chi-square {chi2:.1} over 64 shards (df=63) exceeds the 99.9% bound; counts {counts:?}"
        );
    }
}
